//! Hand-rolled binary model-file format.
//!
//! ML.Net "models are exported as compressed files containing several
//! directories, one per pipeline operator, where each directory stores
//! operator parameters in either binary or plain text files" (paper §2).
//! We reproduce the same layout: a [`ModelFileWriter`] emits a flat byte
//! image made of named *sections* (one per operator) each holding named
//! *entries* (parameter blobs). Per-section FNV-1a checksums are stored in
//! the header — they are exactly the "checksum of the serialized version of
//! the objects" the Object Store uses for parameter dedup (paper §4.1.3).
//!
//! The codec is deliberately hand-rolled rather than `serde`-derived so that
//! the *cold-start cost* of the black-box baseline (decode every parameter
//! blob, per container) is transparent, real work.

use crate::error::{DataError, Result};
use crate::hash::fnv1a;

/// Magic bytes identifying a model file.
pub const MAGIC: &[u8; 8] = b"PRTZL1\0\0";

/// Primitive little-endian emitters shared by the codec and the operators.
pub mod wire {
    /// Appends a single byte.
    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` bit pattern in little-endian order.
    pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32s(buf: &mut Vec<u8>, xs: &[f32]) {
        put_u32(buf, xs.len() as u32);
        for &x in xs {
            put_f32(buf, x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32s(buf: &mut Vec<u8>, xs: &[u32]) {
        put_u32(buf, xs.len() as u32);
        for &x in xs {
            put_u32(buf, x);
        }
    }
}

/// A bounds-checked little-endian reader over a byte image.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DataError::Codec(format!(
                "truncated input: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an `f32`.
    pub fn f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a length-prefixed UTF-8 string, borrowing the input bytes.
    ///
    /// The zero-copy variant of [`Self::str`]: wire-to-columnar ingest
    /// packs the borrowed bytes straight into a [`crate::ColumnBatch`]
    /// without an intermediate `String`.
    pub fn str_ref(&mut self) -> Result<&'a str> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|e| DataError::Codec(format!("invalid UTF-8 in string: {e}")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn f32s(&mut self) -> Result<Vec<f32>> {
        let len = self.u32()? as usize;
        self.check_claim(len, 4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn u32s(&mut self) -> Result<Vec<u32>> {
        let len = self.u32()? as usize;
        self.check_claim(len, 4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed raw byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    // Rejects length prefixes that claim more data than the input holds,
    // before `Vec::with_capacity` can be asked for absurd amounts.
    pub(crate) fn check_claim(&self, len: usize, elem: usize) -> Result<()> {
        if len.saturating_mul(elem) > self.remaining() {
            return Err(DataError::Codec(format!(
                "length prefix {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// One operator "directory" inside a model file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Operator-directory name, e.g. `"op3.WordNgram"`.
    pub name: String,
    /// FNV-1a checksum of the concatenated entry payloads.
    pub checksum: u64,
    /// Named parameter blobs.
    pub entries: Vec<(String, Vec<u8>)>,
}

impl Section {
    /// Looks up an entry payload by name.
    pub fn entry(&self, name: &str) -> Result<&[u8]> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| DataError::Codec(format!("missing entry `{name}` in `{}`", self.name)))
    }

    /// Total payload bytes across entries.
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().map(|(_, b)| b.len()).sum()
    }
}

/// Computes the dedup checksum of a serialized parameter payload.
pub fn section_checksum(entries: &[(String, Vec<u8>)]) -> u64 {
    let mut all = Vec::new();
    for (name, bytes) in entries {
        wire::put_str(&mut all, name);
        all.extend_from_slice(bytes);
    }
    fnv1a(&all)
}

/// Builder that serializes sections into a model-file byte image.
#[derive(Debug, Default)]
pub struct ModelFileWriter {
    sections: Vec<Section>,
}

impl ModelFileWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ModelFileWriter::default()
    }

    /// Adds a section with the given entries; the checksum is computed here.
    pub fn add_section(&mut self, name: impl Into<String>, entries: Vec<(String, Vec<u8>)>) {
        let checksum = section_checksum(&entries);
        self.sections.push(Section {
            name: name.into(),
            checksum,
            entries,
        });
    }

    /// Number of sections added so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True if no sections were added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Serializes all sections into a single byte image.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        wire::put_u32(&mut out, self.sections.len() as u32);
        for s in &self.sections {
            wire::put_str(&mut out, &s.name);
            wire::put_u64(&mut out, s.checksum);
            wire::put_u32(&mut out, s.entries.len() as u32);
            for (name, bytes) in &s.entries {
                wire::put_str(&mut out, name);
                wire::put_u64(&mut out, bytes.len() as u64);
                out.extend_from_slice(bytes);
            }
        }
        out
    }
}

/// Parses a model-file byte image into sections.
///
/// Verifies the magic and every section checksum; a corrupted file is
/// reported as [`DataError::Codec`] rather than yielding garbage parameters.
pub fn read_model_file(image: &[u8]) -> Result<Vec<Section>> {
    let mut cur = Cursor::new(image);
    let magic = cur.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(DataError::Codec("bad magic; not a model file".into()));
    }
    let n_sections = cur.u32()? as usize;
    let mut sections = Vec::with_capacity(n_sections.min(1024));
    for _ in 0..n_sections {
        let name = cur.str()?;
        let checksum = cur.u64()?;
        let n_entries = cur.u32()? as usize;
        let mut entries = Vec::with_capacity(n_entries.min(1024));
        for _ in 0..n_entries {
            let ename = cur.str()?;
            let payload = cur.bytes()?.to_vec();
            entries.push((ename, payload));
        }
        let expect = section_checksum(&entries);
        if expect != checksum {
            return Err(DataError::Codec(format!(
                "checksum mismatch in section `{name}`: stored {checksum:#x}, computed {expect:#x}"
            )));
        }
        sections.push(Section {
            name,
            checksum,
            entries,
        });
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> Vec<u8> {
        let mut w = ModelFileWriter::new();
        let mut weights = Vec::new();
        wire::put_f32s(&mut weights, &[0.5, -1.25, 3.0]);
        w.add_section(
            "op0.LinearModel",
            vec![("weights".into(), weights), ("bias".into(), vec![1, 2, 3])],
        );
        w.add_section("op1.Tokenizer", vec![("delims".into(), b" ,.".to_vec())]);
        w.finish()
    }

    #[test]
    fn round_trip() {
        let image = sample_image();
        let sections = read_model_file(&image).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].name, "op0.LinearModel");
        let mut cur = Cursor::new(sections[0].entry("weights").unwrap());
        assert_eq!(cur.f32s().unwrap(), vec![0.5, -1.25, 3.0]);
        assert_eq!(sections[1].entry("delims").unwrap(), b" ,.");
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut image = sample_image();
        // Flip a payload byte (past the header region).
        let n = image.len();
        image[n - 1] ^= 0xff;
        let err = read_model_file(&image).unwrap_err();
        assert!(matches!(err, DataError::Codec(m) if m.contains("checksum")));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut image = sample_image();
        image[0] = b'X';
        assert!(matches!(
            read_model_file(&image),
            Err(DataError::Codec(m)) if m.contains("magic")
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let image = sample_image();
        for cut in [0, 4, 9, image.len() / 2, image.len() - 1] {
            assert!(
                read_model_file(&image[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn identical_params_share_checksum() {
        let entries = vec![("w".to_string(), vec![1u8, 2, 3])];
        let a = section_checksum(&entries);
        let b = section_checksum(&entries.clone());
        assert_eq!(a, b);
        let c = section_checksum(&[("w".to_string(), vec![1u8, 2, 4])]);
        assert_ne!(a, c);
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A section count of u32::MAX over a tiny buffer must fail cleanly.
        let mut image = Vec::new();
        image.extend_from_slice(MAGIC);
        wire::put_u32(&mut image, u32::MAX);
        assert!(read_model_file(&image).is_err());

        // An f32s length prefix claiming more than the buffer holds.
        let mut blob = Vec::new();
        wire::put_u32(&mut blob, 1_000_000);
        blob.extend_from_slice(&[0u8; 8]);
        let mut cur = Cursor::new(&blob);
        assert!(cur.f32s().is_err());
    }

    #[test]
    fn empty_model_file_round_trips() {
        let image = ModelFileWriter::new().finish();
        assert_eq!(read_model_file(&image).unwrap(), vec![]);
    }

    #[test]
    fn section_payload_bytes() {
        let image = sample_image();
        let sections = read_model_file(&image).unwrap();
        assert_eq!(sections[1].payload_bytes(), 3);
        assert!(sections[0].payload_bytes() > 3);
    }
}
