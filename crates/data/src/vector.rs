//! The value type exchanged between operators.
//!
//! ML.Net operators "consume data vectors as input and produce one (or more)
//! vectors as output" (paper §2). [`Vector`] is our equivalent: a small enum
//! covering the column types of [`crate::schema::ColumnType`]. Vectors are
//! designed to be *reusable* — every variant can be cleared and refilled
//! without reallocating — because PRETZEL's vector pools hand the same
//! buffers to request after request (paper §4.2.1).

use crate::schema::ColumnType;

/// A token span `[start, end)` into a text buffer, in bytes.
///
/// Tokenizers produce spans rather than owned strings so that downstream
/// n-gram featurizers can slice the original text with zero copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character of the token.
    pub start: u32,
    /// Byte offset one past the last character of the token.
    pub end: u32,
}

impl Span {
    /// Creates a span, clamping `end >= start`.
    pub fn new(start: u32, end: u32) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True if the span is empty.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Slices `text` with this span.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds or splits a UTF-8 character —
    /// tokenizers only emit spans on character boundaries of the text they
    /// were given, so an out-of-bounds span is a pipeline wiring bug.
    pub fn slice<'t>(&self, text: &'t str) -> &'t str {
        &text[self.start as usize..self.end as usize]
    }
}

/// A runtime value: one column's worth of data for one record.
#[derive(Debug, Clone, PartialEq)]
pub enum Vector {
    /// Raw input text.
    Text(String),
    /// Token spans over a text value.
    Tokens(Vec<Span>),
    /// Dense `f32` vector.
    Dense(Vec<f32>),
    /// Sparse `f32` vector: parallel `indices`/`values`, logical size `dim`.
    ///
    /// Indices are sorted and unique; kernels rely on this for merge-style
    /// dot products.
    Sparse {
        /// Sorted, unique element indices.
        indices: Vec<u32>,
        /// Values parallel to `indices`.
        values: Vec<f32>,
        /// Logical dimensionality.
        dim: u32,
    },
    /// A scalar output (score, class id, regression value).
    Scalar(f32),
}

impl Vector {
    /// Creates an empty vector of the right variant for `ty`, with capacity
    /// reserved according to the column's dimensionality.
    pub fn with_type(ty: ColumnType) -> Self {
        Vector::with_capacity_hint(ty, 0)
    }

    /// Creates an empty vector of the right variant with storage
    /// pre-reserved for `hint` stored elements (text bytes, tokens, sparse
    /// nnz). Pool warming uses training statistics as the hint so that the
    /// first predictions never grow buffers (paper §4.1.1 "max vector
    /// size... to define the minimum size of vectors to fetch from the
    /// pool").
    pub fn with_capacity_hint(ty: ColumnType, hint: usize) -> Self {
        match ty {
            ColumnType::Text => Vector::Text(String::with_capacity(hint)),
            ColumnType::TokenList => Vector::Tokens(Vec::with_capacity(hint)),
            ColumnType::F32Dense { len } => Vector::Dense(vec![0.0; len]),
            ColumnType::F32Sparse { len } => Vector::Sparse {
                indices: Vec::with_capacity(hint),
                values: Vec::with_capacity(hint),
                dim: len as u32,
            },
            ColumnType::F32Scalar => Vector::Scalar(0.0),
        }
    }

    /// The column type this value inhabits.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Vector::Text(_) => ColumnType::Text,
            Vector::Tokens(_) => ColumnType::TokenList,
            Vector::Dense(v) => ColumnType::F32Dense { len: v.len() },
            Vector::Sparse { dim, .. } => ColumnType::F32Sparse { len: *dim as usize },
            Vector::Scalar(_) => ColumnType::F32Scalar,
        }
    }

    /// Clears contents while keeping allocated capacity, so pooled buffers
    /// can be reused without reallocation. Dense vectors are zeroed in place
    /// (their length encodes the dimensionality).
    pub fn reset(&mut self) {
        match self {
            Vector::Text(s) => s.clear(),
            Vector::Tokens(t) => t.clear(),
            Vector::Dense(v) => v.fill(0.0),
            Vector::Sparse {
                indices, values, ..
            } => {
                indices.clear();
                values.clear();
            }
            Vector::Scalar(x) => *x = 0.0,
        }
    }

    /// Heap bytes owned by this value (capacity, not length).
    ///
    /// Used by the memory experiments to attribute buffer cost.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Vector::Text(s) => s.capacity(),
            Vector::Tokens(t) => t.capacity() * std::mem::size_of::<Span>(),
            Vector::Dense(v) => v.capacity() * 4,
            Vector::Sparse {
                indices, values, ..
            } => indices.capacity() * 4 + values.capacity() * 4,
            Vector::Scalar(_) => 0,
        }
    }

    /// Borrows the dense payload, or `None` for other variants.
    pub fn as_dense(&self) -> Option<&[f32]> {
        match self {
            Vector::Dense(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the scalar payload, or `None` for other variants.
    pub fn as_scalar(&self) -> Option<f32> {
        match self {
            Vector::Scalar(x) => Some(*x),
            _ => None,
        }
    }

    /// Borrows the text payload, or `None` for other variants.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Vector::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the token spans, or `None` for other variants.
    pub fn as_tokens(&self) -> Option<&[Span]> {
        match self {
            Vector::Tokens(t) => Some(t),
            _ => None,
        }
    }

    /// Materializes this value as a dense `f32` vector of dimension `dim`.
    ///
    /// Dense values must already have length `dim`; sparse values are
    /// scattered; scalars broadcast into position 0. Returns `None` for text
    /// and token variants.
    pub fn to_dense(&self, dim: usize) -> Option<Vec<f32>> {
        match self {
            Vector::Dense(v) if v.len() == dim => Some(v.clone()),
            Vector::Sparse {
                indices,
                values,
                dim: d,
            } if *d as usize == dim => {
                let mut out = vec![0.0; dim];
                for (&i, &v) in indices.iter().zip(values) {
                    out[i as usize] = v;
                }
                Some(out)
            }
            Vector::Scalar(x) if dim >= 1 => {
                let mut out = vec![0.0; dim];
                out[0] = *x;
                Some(out)
            }
            _ => None,
        }
    }

    /// Pushes a `(index, value)` pair into a sparse vector, keeping indices
    /// sorted and unique by *summing* duplicate indices (the behaviour
    /// featurizers need when two n-grams hash to the same slot).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not `Sparse` or `index >= dim`; featurizer kernels
    /// construct their outputs, so a mismatch is an internal bug.
    pub fn sparse_accumulate(&mut self, index: u32, value: f32) {
        match self {
            Vector::Sparse {
                indices,
                values,
                dim,
            } => {
                assert!(index < *dim, "sparse index {index} out of dim {dim}");
                match indices.binary_search(&index) {
                    Ok(pos) => values[pos] += value,
                    Err(pos) => {
                        indices.insert(pos, index);
                        values.insert(pos, value);
                    }
                }
            }
            other => panic!("sparse_accumulate on non-sparse vector {other:?}"),
        }
    }

    /// Number of stored (non-implicit) elements.
    pub fn stored_len(&self) -> usize {
        match self {
            Vector::Text(s) => s.len(),
            Vector::Tokens(t) => t.len(),
            Vector::Dense(v) => v.len(),
            Vector::Sparse { indices, .. } => indices.len(),
            Vector::Scalar(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_slicing() {
        let s = "hello world";
        let sp = Span::new(6, 11);
        assert_eq!(sp.slice(s), "world");
        assert_eq!(sp.len(), 5);
        assert!(!sp.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }

    #[test]
    fn span_clamps_inverted_bounds() {
        let sp = Span::new(5, 2);
        assert_eq!(sp.len(), 0);
    }

    #[test]
    fn with_type_round_trips_column_type() {
        for ty in [
            ColumnType::Text,
            ColumnType::TokenList,
            ColumnType::F32Dense { len: 7 },
            ColumnType::F32Sparse { len: 9 },
            ColumnType::F32Scalar,
        ] {
            assert_eq!(Vector::with_type(ty).column_type(), ty);
        }
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut v = Vector::Text("some long review text".into());
        let cap = match &v {
            Vector::Text(s) => s.capacity(),
            _ => unreachable!(),
        };
        v.reset();
        match &v {
            Vector::Text(s) => {
                assert!(s.is_empty());
                assert_eq!(s.capacity(), cap);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reset_zeroes_dense_in_place() {
        let mut v = Vector::Dense(vec![1.0, 2.0, 3.0]);
        v.reset();
        assert_eq!(v.as_dense().unwrap(), &[0.0, 0.0, 0.0]);
        assert_eq!(v.stored_len(), 3);
    }

    #[test]
    fn sparse_accumulate_sorts_and_merges() {
        let mut v = Vector::with_type(ColumnType::F32Sparse { len: 10 });
        v.sparse_accumulate(5, 1.0);
        v.sparse_accumulate(2, 2.0);
        v.sparse_accumulate(5, 0.5);
        match &v {
            Vector::Sparse {
                indices, values, ..
            } => {
                assert_eq!(indices, &[2, 5]);
                assert_eq!(values, &[2.0, 1.5]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "out of dim")]
    fn sparse_accumulate_bounds_checked() {
        let mut v = Vector::with_type(ColumnType::F32Sparse { len: 4 });
        v.sparse_accumulate(4, 1.0);
    }

    #[test]
    fn to_dense_scatter() {
        let mut v = Vector::with_type(ColumnType::F32Sparse { len: 5 });
        v.sparse_accumulate(1, 2.0);
        v.sparse_accumulate(4, -1.0);
        assert_eq!(v.to_dense(5).unwrap(), vec![0.0, 2.0, 0.0, 0.0, -1.0]);
        // Dimension mismatch is refused rather than silently truncated.
        assert!(v.to_dense(4).is_none());
    }

    #[test]
    fn to_dense_from_scalar_and_dense() {
        assert_eq!(Vector::Scalar(3.0).to_dense(2).unwrap(), vec![3.0, 0.0]);
        assert_eq!(
            Vector::Dense(vec![1.0, 2.0]).to_dense(2).unwrap(),
            vec![1.0, 2.0]
        );
        assert!(Vector::Text("x".into()).to_dense(1).is_none());
    }

    #[test]
    fn heap_bytes_counts_capacity() {
        let v = Vector::Dense(Vec::with_capacity(16));
        assert_eq!(v.heap_bytes(), 64);
        assert_eq!(Vector::Scalar(1.0).heap_bytes(), 0);
    }
}
