//! Small non-cryptographic hash utilities.
//!
//! Three uses in the reproduction, mirroring the paper:
//!
//! 1. **Feature hashing** in n-gram featurizers (dictionary-miss fallback and
//!    the `HashingVectorizer` operator).
//! 2. **Parameter checksums**: the Object Store dedups operator parameters by
//!    "the checksum of the serialized version of the objects" (§4.1.3).
//! 3. **Input hashing** for sub-plan materialization: "hashing of the input
//!    is used to decide whether a result is already available" (§4.3).

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
///
/// Deterministic across runs and platforms, which matters because parameter
/// checksums are persisted inside model files and compared after reload.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Creates a hasher seeded with the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Feeds `bytes` into the hash state.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Feeds one byte: the hot-loop form of `write(&[b])`, used by the
    /// incremental n-gram window hashing where a position's length-`k` hash
    /// extends its length-`k−1` hash one byte at a time.
    #[inline(always)]
    pub fn push_byte(&mut self, b: u8) {
        self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Feeds a little-endian `u64` into the hash state.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds the bit pattern of an `f32` into the hash state.
    pub fn write_f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Returns the current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes a byte slice with FNV-1a in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Content hash of a text source record.
///
/// The canonical per-record identity used by the sub-plan materialization
/// cache and the FrontEnd result cache. Every ingest path (Record staging,
/// wire-to-columnar assembly, batch rows) must produce the same hash for
/// the same record bytes, so these helpers are the single definition.
pub fn content_hash_text(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// Content hash of a dense source record (bit patterns, in order).
pub fn content_hash_dense(xs: &[f32]) -> u64 {
    let mut h = Fnv1a::new();
    for &v in xs {
        h.write_f32(v);
    }
    h.finish()
}

/// Content hash of a sparse source record: dimensionality, then the sorted
/// indices, then the parallel values.
pub fn content_hash_sparse(indices: &[u32], values: &[f32], dim: u32) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&dim.to_le_bytes());
    for &i in indices {
        h.write(&i.to_le_bytes());
    }
    for &v in values {
        h.write_f32(v);
    }
    h.finish()
}

/// SplitMix64: fast avalanche finalizer used to derive independent seeds.
///
/// Workload synthesis derives per-pipeline / per-operator seeds from a master
/// seed with this, so that adding a pipeline never perturbs existing ones.
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A `std::hash::Hasher` that passes a pre-hashed `u64` key through
/// unchanged (after a SplitMix64 finalize to spread low bits into the
/// table-index range).
///
/// Hot probe tables keyed by values that are *already* good 64-bit hashes
/// (FNV-1a n-gram window hashes, parameter checksums) waste most of their
/// probe time re-hashing the key with SipHash under std's default hasher.
/// `HashMap<u64, _, PrehashedBuild>` skips that: one multiply-shift chain
/// instead of a full SipHash pass per lookup.
#[derive(Debug, Default, Clone, Copy)]
pub struct Prehashed {
    state: u64,
}

impl std::hash::Hasher for Prehashed {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys: FNV over the bytes. Correct, but the
        // intended use is `write_u64`.
        let mut h = Fnv1a::new();
        h.write_u64(self.state);
        h.write(bytes);
        self.state = h.finish();
    }

    fn write_u64(&mut self, v: u64) {
        // Mix rather than overwrite so composite keys (more than one
        // write_u64) still depend on every component; for the common
        // single-write case state is 0 and this reduces to splitmix64(v).
        self.state = splitmix64(self.state ^ v);
    }
}

/// `BuildHasher` for [`Prehashed`].
pub type PrehashedBuild = std::hash::BuildHasherDefault<Prehashed>;

/// Hashes a feature string into a bucket in `[0, buckets)`.
///
/// Used by n-gram featurizers when a token misses the trained dictionary and
/// by the `HashingVectorizer` operator.
///
/// # Panics
///
/// Panics if `buckets == 0` (a featurizer with zero buckets is a
/// construction-time bug, not a data-dependent condition).
pub fn feature_bucket(feature: &[u8], buckets: usize) -> usize {
    assert!(buckets > 0, "feature_bucket requires at least one bucket");
    (fnv1a(feature) % buckets as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference vectors for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn push_byte_equals_write() {
        let mut a = Fnv1a::new();
        for &b in b"foobar" {
            a.push_byte(b);
        }
        assert_eq!(a.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn write_u64_is_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn splitmix_decorrelates_adjacent_seeds() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        // Avalanche: at least a quarter of the bits flip between neighbours.
        assert!((a ^ b).count_ones() >= 16);
    }

    #[test]
    fn feature_bucket_in_range_and_deterministic() {
        for buckets in [1usize, 7, 1024] {
            for f in [&b"the"[..], b"quick", b"brown fox"] {
                let x = feature_bucket(f, buckets);
                assert!(x < buckets);
                assert_eq!(x, feature_bucket(f, buckets));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn feature_bucket_zero_buckets_panics() {
        let _ = feature_bucket(b"x", 0);
    }
}
