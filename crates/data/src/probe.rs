//! Flat open-addressing probe table for prehashed `u64` keys.
//!
//! The n-gram featurizers of the SA pipelines probe million-entry
//! dictionaries once per candidate window (paper Figure 1, Table 1), and
//! the dominant outcome is a **miss**: most windows of real text are not
//! dictionary entries. A general-purpose `HashMap` pays for that miss with
//! group-probing machinery sized for arbitrary keys; this table is
//! purpose-built for the one case the matching kernels have — keys that
//! are already good 64-bit hashes, a table built once and never mutated on
//! the serving path — and optimizes the miss:
//!
//! * **power-of-two, load ≤ 0.5** open addressing with linear probing, so
//!   the home-slot index is one multiply+shift away from the key and most
//!   misses land on an empty home slot;
//! * an **occupancy bitmap** (1 bit per slot, 128× denser than the slot
//!   array) in front: a miss whose home slot is empty — the majority at
//!   these loads — is rejected by one bit test in a structure small
//!   enough to stay cache-resident when the slots cannot;
//! * **interleaved `(hash, value)` slots**: the full 64-bit hash is both
//!   membership tag and confirmation and shares its cache line with the
//!   value, so a probe that survives the bitmap touches exactly one slot
//!   cache line, hit or miss;
//! * the slot index is a pure function of the key, which is what lets bulk
//!   kernels **software-prefetch** the next window's slot while probing the
//!   current one ([`FlatProbeTable::prefetch`]) — the memory-level
//!   parallelism a chained `HashMap::get` loop never exposes.
//!
//! [`flat_probe`] is the process-wide knob (default on) selecting this
//! table over the `HashMap` control path in the n-gram kernels; both paths
//! return identical hits for identical keys, so flipping it mid-run changes
//! throughput, never results.

use std::sync::atomic::{AtomicBool, Ordering};

/// Fibonacci-hashing multiplier (2^64 / φ).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Process-wide probe-path selector: flat table (default) vs `HashMap`.
static FLAT_PROBE: AtomicBool = AtomicBool::new(true);

/// Selects the probe path the n-gram matching kernels use: `true` (the
/// default) probes the flat table, `false` keeps the `HashMap` control
/// path. Both are bitwise-identical in results; the knob is the ablation
/// switch (`RuntimeConfig::flat_ngram_probe` at the runtime layer).
pub fn set_flat_probe(on: bool) {
    FLAT_PROBE.store(on, Ordering::Relaxed);
}

/// True if the flat probe table is the active matching path.
pub fn flat_probe() -> bool {
    FLAT_PROBE.load(Ordering::Relaxed)
}

/// Table bytes above which bulk probe loops bother issuing software
/// prefetch: a table this size no longer sits in L1/L2, so overlapping
/// the next window's load pays; below it the prefetch instruction is pure
/// overhead on a cache-resident structure.
const PREFETCH_BYTES: usize = 256 << 10;

/// A build-once, probe-many open-addressing table keyed by prehashed
/// `u64`s. First insert per key wins (the n-gram dictionary's stable-index
/// rule); there is no removal, so probe chains never cross tombstones.
///
/// Storage is an interleaved `(hash, value)` slot array behind the
/// occupancy bitmap: the full 64-bit hash is both the membership tag and
/// the confirmation, and it shares its cache line with the value — so a
/// probe that survives the bitmap touches exactly **one** slot cache line,
/// hit or miss. (A separate byte-tag lane was measured and rejected here:
/// under multi-model serving the table is cold more often than hot, and a
/// split tag lane turns every cold probe into two line fills. A 16-wide
/// SIMD tag group scan à la Swiss tables remains the follow-up that could
/// beat this layout for long chains.)
#[derive(Debug, Clone)]
pub struct FlatProbeTable {
    /// `capacity - 1`; capacity is a power of two ≥ 2.
    mask: usize,
    /// `64 - log2(capacity)`: Fibonacci hashing takes the top bits.
    shift: u32,
    /// Interleaved slots; a slot is occupied iff its bitmap bit is set.
    slots: Box<[Slot]>,
    /// Occupancy bitmap, one bit per slot: the prefilter (8× denser than
    /// even a byte-tag lane, so it stays cache-resident when the slot
    /// array cannot) and the empty-slot oracle for chain termination.
    bitmap: Box<[u64]>,
    /// Precomputed: table large enough that bulk probes should prefetch.
    prefetch_pays: bool,
    len: usize,
}

/// One slot: full key hash (membership + confirmation) and its value.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    hash: u64,
    val: u32,
}

impl FlatProbeTable {
    /// Creates a table sized for `entries` keys at load factor ≤ 0.5
    /// (power-of-two snapping keeps typical loads near 0.25–0.5). The low
    /// load is deliberate and measured: the bitmap prefilter's whole
    /// mechanism is rejecting empty-home misses with one bit test, and at
    /// ≤ 0.5 that covers most misses while chains stay short — a tighter
    /// 0.625 variant (hashbrown-parity footprint) cost the matching path
    /// its entire end-to-end win.
    pub fn with_capacity(entries: usize) -> Self {
        let capacity = entries.saturating_mul(2).next_power_of_two().max(2);
        let heap = capacity * std::mem::size_of::<Slot>() + capacity.div_ceil(64) * 8;
        FlatProbeTable {
            mask: capacity - 1,
            shift: 64 - capacity.trailing_zeros(),
            slots: vec![Slot::default(); capacity].into_boxed_slice(),
            bitmap: vec![0u64; capacity.div_ceil(64)].into_boxed_slice(),
            prefetch_pays: heap > PREFETCH_BYTES,
            len: 0,
        }
    }

    /// Builds a table from `(hash, value)` pairs, first pair per hash wins.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u32)>) -> Self {
        let iter = pairs.into_iter();
        let mut t = FlatProbeTable::with_capacity(iter.size_hint().0);
        for (h, v) in iter {
            t.insert_first(h, v);
        }
        t
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot count (power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn home(&self, hash: u64) -> usize {
        // Fibonacci hashing: FNV-1a avalanches its high bits well; one
        // multiply spreads any residual structure across the top `log2(cap)`
        // bits the index uses.
        (hash.wrapping_mul(GOLDEN) >> self.shift) as usize & self.mask
    }

    #[inline]
    fn occupied(&self, i: usize) -> bool {
        self.bitmap[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Inserts `(hash, val)` if `hash` is absent; returns `false` (keeping
    /// the resident value) when the key was already present. Grows by
    /// rebuilding when the 0.5 load bound would be exceeded — tables are
    /// built offline (dictionary construction), never on the serving path.
    pub fn insert_first(&mut self, hash: u64, val: u32) -> bool {
        if (self.len + 1) * 2 > self.capacity() {
            self.grow();
        }
        let mut i = self.home(hash);
        loop {
            if !self.occupied(i) {
                self.slots[i] = Slot { hash, val };
                self.bitmap[i >> 6] |= 1u64 << (i & 63);
                self.len += 1;
                return true;
            }
            if self.slots[i].hash == hash {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        // `capacity + 1` entries always snaps to the next power of two, so
        // every grow at least doubles (including the minimum-size table).
        let mut bigger = FlatProbeTable::with_capacity(self.capacity() + 1);
        for (i, s) in self.slots.iter().enumerate() {
            if self.occupied(i) {
                bigger.insert_first(s.hash, s.val);
            }
        }
        *self = bigger;
    }

    /// Probes `hash`, returning its value if present.
    #[inline]
    pub fn probe(&self, hash: u64) -> Option<u32> {
        let mut i = self.home(hash);
        // Prefilter: an empty home slot — the dominant miss at load
        // ≤ 0.5 — is rejected by one bit of the bitmap without touching
        // the slot array. The bitmap is 128× denser than the slots, so it
        // stays cache-resident when they cannot.
        if !self.occupied(i) {
            return None;
        }
        loop {
            if self.slots[i].hash == hash {
                return Some(self.slots[i].val);
            }
            i = (i + 1) & self.mask;
            if !self.occupied(i) {
                return None;
            }
        }
    }

    /// True when bulk probe loops should software-prefetch ahead: the
    /// table spills the fast cache levels, so overlapping the next
    /// window's load hides latency instead of wasting an instruction.
    #[inline]
    pub fn prefetch_pays(&self) -> bool {
        self.prefetch_pays
    }

    /// Prefetches the home slot of `hash` into L1 (tag and hash lanes).
    /// Bulk probe loops call this a few windows ahead so the dependent
    /// loads of [`FlatProbeTable::probe`] overlap across windows.
    #[inline]
    pub fn prefetch(&self, hash: u64) {
        let i = self.home(hash);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `i <= mask`, so the pointer is in-bounds of the slot
        // allocation; prefetch has no architectural effect beyond caches.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.slots.as_ptr().add(i).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: in-bounds pointer; PRFM is a hint with no side effects.
        unsafe {
            let slot_ptr = self.slots.as_ptr().add(i);
            std::arch::asm!(
                "prfm pldl1keep, [{s}]",
                s = in(reg) slot_ptr,
                options(nostack, preserves_flags),
            );
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let _ = i;
    }

    /// Heap bytes of the table (slot array + bitmap).
    pub fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>() + self.bitmap.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::splitmix64;

    #[test]
    fn empty_table_misses_everything() {
        let t = FlatProbeTable::with_capacity(0);
        assert!(t.is_empty());
        for h in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(t.probe(h), None);
        }
    }

    #[test]
    fn inserted_keys_are_found_and_first_wins() {
        let mut t = FlatProbeTable::with_capacity(4);
        assert!(t.insert_first(42, 7));
        assert!(!t.insert_first(42, 9), "duplicate hash keeps first value");
        assert_eq!(t.probe(42), Some(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = FlatProbeTable::with_capacity(1);
        for k in 0..1000u64 {
            t.insert_first(splitmix64(k), k as u32);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.capacity() >= 2000);
        for k in 0..1000u64 {
            assert_eq!(t.probe(splitmix64(k)), Some(k as u32), "key {k}");
        }
        for k in 1000..2000u64 {
            assert_eq!(t.probe(splitmix64(k)), None, "absent key {k}");
        }
    }

    #[test]
    fn adversarial_low_entropy_hashes_still_resolve() {
        // Sequential "hashes" (worst case for the tag byte and the home
        // index) must still round-trip: linear probing + full-hash confirm.
        let mut t = FlatProbeTable::with_capacity(64);
        for h in 0..64u64 {
            assert!(t.insert_first(h, (h * 3) as u32));
        }
        for h in 0..64u64 {
            assert_eq!(t.probe(h), Some((h * 3) as u32));
        }
        assert_eq!(t.probe(64), None);
    }

    #[test]
    fn matches_hashmap_reference_over_random_keys() {
        let mut t = FlatProbeTable::with_capacity(0);
        let mut reference = std::collections::HashMap::new();
        let mut h = 0x1234_5678u64;
        for k in 0..5000u32 {
            h = splitmix64(h ^ u64::from(k % 997)); // forced duplicates
            t.insert_first(h, k);
            reference.entry(h).or_insert(k);
        }
        for (&hash, &val) in &reference {
            assert_eq!(t.probe(hash), Some(val));
        }
        assert_eq!(t.len(), reference.len());
        let mut probe = 99u64;
        for _ in 0..5000 {
            probe = splitmix64(probe);
            assert_eq!(t.probe(probe), reference.get(&probe).copied());
        }
    }

    #[test]
    fn from_pairs_builds_first_wins() {
        let t = FlatProbeTable::from_pairs([(1, 10), (2, 20), (1, 30)]);
        assert_eq!(t.probe(1), Some(10));
        assert_eq!(t.probe(2), Some(20));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn heap_bytes_scale_with_capacity() {
        let small = FlatProbeTable::with_capacity(4);
        let big = FlatProbeTable::with_capacity(4096);
        assert!(big.heap_bytes() > small.heap_bytes() * 100);
    }

    #[test]
    fn prefetch_is_safe_on_any_key() {
        let t = FlatProbeTable::from_pairs([(7, 1)]);
        for h in [0u64, 7, u64::MAX] {
            t.prefetch(h); // must not fault
        }
    }

    #[test]
    fn knob_round_trips() {
        assert!(flat_probe(), "flat probing is the default");
        set_flat_probe(false);
        assert!(!flat_probe());
        set_flat_probe(true);
        assert!(flat_probe());
    }
}
