//! Flat open-addressing probe table for prehashed `u64` keys.
//!
//! The n-gram featurizers of the SA pipelines probe million-entry
//! dictionaries once per candidate window (paper Figure 1, Table 1), and
//! the dominant outcome is a **miss**: most windows of real text are not
//! dictionary entries. A general-purpose `HashMap` pays for that miss with
//! group-probing machinery sized for arbitrary keys; this table is
//! purpose-built for the one case the matching kernels have — keys that
//! are already good 64-bit hashes, a table built once and never mutated on
//! the serving path — and optimizes the miss:
//!
//! * **power-of-two, load ≤ 0.5** open addressing with linear probing, so
//!   the home-slot index is one multiply+shift away from the key and most
//!   misses land on an empty home slot;
//! * an **occupancy bitmap** (1 bit per slot, 128× denser than the slot
//!   array) in front: a miss whose home slot is empty — the majority at
//!   these loads — is rejected by one bit test in a structure small
//!   enough to stay cache-resident when the slots cannot;
//! * **interleaved `(hash, value)` slots**: the full 64-bit hash is both
//!   membership tag and confirmation and shares its cache line with the
//!   value, so a probe that survives the bitmap touches exactly one slot
//!   cache line, hit or miss;
//! * a **byte-tag lane scanned 16 slots at a time** for the chains the
//!   fast path cannot settle: once a probe survives the bitmap *and*
//!   mismatches two slots, it is in long-chain territory, where an SSE2
//!   `_mm_cmpeq_epi8`/`movemask` sweep over a whole 16-slot tag group
//!   per step beats walking slots one 16-byte line at a time. The tag
//!   lane is deliberately **not** consulted by the one-/two-slot fast
//!   path — an earlier always-on byte-tag design was measured and
//!   rejected because it turned every cold probe into two line fills;
//!   here the extra lane is only touched when a chain is already long,
//!   amortizing its line fill across 16 slots per step;
//! * the slot index is a pure function of the key, which is what lets bulk
//!   kernels **software-prefetch** the next window's slot while probing the
//!   current one ([`FlatProbeTable::prefetch`]) — the memory-level
//!   parallelism a chained `HashMap::get` loop never exposes. Whether a
//!   table is big enough for prefetch to pay is decided against the
//!   startup-calibrated cache threshold in [`crate::calibrate`], not a
//!   hard-coded constant.
//!
//! This table is the n-gram kernels' only probe structure; the `HashMap`
//! control path it was originally ablated against (and the process/thread
//! knob that selected between them) retired with the ablation era.

/// Fibonacci-hashing multiplier (2^64 / φ).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Slots per tag-group scan step (one SSE2 register of byte tags).
const GROUP: usize = 16;

/// A build-once, probe-many open-addressing table keyed by prehashed
/// `u64`s. First insert per key wins (the n-gram dictionary's stable-index
/// rule); there is no removal, so probe chains never cross tombstones.
///
/// Storage is an interleaved `(hash, value)` slot array behind the
/// occupancy bitmap, plus a byte-tag lane consulted only by the long-chain
/// group scan: the fast path (home slot, one overflow slot) touches
/// exactly **one** slot cache line per probe, hit or miss, exactly as
/// before the tag lane existed.
#[derive(Debug, Clone)]
pub struct FlatProbeTable {
    /// `capacity - 1`; capacity is a power of two ≥ 2.
    mask: usize,
    /// `64 - log2(capacity)`: Fibonacci hashing takes the top bits.
    shift: u32,
    /// Interleaved slots; a slot is occupied iff its bitmap bit is set.
    slots: Box<[Slot]>,
    /// Occupancy bitmap, one bit per slot: the prefilter (8× denser than
    /// even a byte-tag lane, so it stays cache-resident when the slot
    /// array cannot) and the empty-slot oracle for chain termination.
    bitmap: Box<[u64]>,
    /// One tag byte per slot (a secondary byte of the Fibonacci product),
    /// read **only** by the ≥ 2-step chain scan, 16 at a time.
    tags: Box<[u8]>,
    /// Precomputed: table large enough that bulk probes should prefetch.
    prefetch_pays: bool,
    len: usize,
}

/// One slot: full key hash (membership + confirmation) and its value.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    hash: u64,
    val: u32,
}

impl FlatProbeTable {
    /// Creates a table sized for `entries` keys at load factor ≤ 0.5
    /// (power-of-two snapping keeps typical loads near 0.25–0.5). The low
    /// load is deliberate and measured: the bitmap prefilter's whole
    /// mechanism is rejecting empty-home misses with one bit test, and at
    /// ≤ 0.5 that covers most misses while chains stay short — a tighter
    /// 0.625 variant (hashbrown-parity footprint) cost the matching path
    /// its entire end-to-end win.
    pub fn with_capacity(entries: usize) -> Self {
        Self::with_slot_count(entries.saturating_mul(2).next_power_of_two().max(2))
    }

    /// Allocates a table with exactly `capacity` slots (power of two ≥ 2).
    fn with_slot_count(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two() && capacity >= 2);
        let heap = capacity * (std::mem::size_of::<Slot>() + 1) + capacity.div_ceil(64) * 8;
        FlatProbeTable {
            mask: capacity - 1,
            shift: 64 - capacity.trailing_zeros(),
            slots: vec![Slot::default(); capacity].into_boxed_slice(),
            bitmap: vec![0u64; capacity.div_ceil(64)].into_boxed_slice(),
            tags: vec![0u8; capacity].into_boxed_slice(),
            prefetch_pays: heap > crate::calibrate::prefetch_threshold(),
            len: 0,
        }
    }

    /// Builds a table from `(hash, value)` pairs, first pair per hash wins.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u32)>) -> Self {
        let iter = pairs.into_iter();
        let mut t = FlatProbeTable::with_capacity(iter.size_hint().0);
        for (h, v) in iter {
            t.insert_first(h, v);
        }
        t
    }

    /// Builds a table at an explicit load factor (clamped to keep at least
    /// one empty slot, which probe termination relies on) instead of the
    /// serving-path ≤ 0.5 bound. Chains get long well before load 0.9 —
    /// this is how tests and microbenches exercise the group-scan path
    /// without million-entry fixtures.
    pub fn from_pairs_with_load(pairs: impl IntoIterator<Item = (u64, u32)>, load: f64) -> Self {
        let pairs: Vec<(u64, u32)> = pairs.into_iter().collect();
        let load = load.clamp(0.05, 0.95);
        let capacity = ((pairs.len() as f64 / load).ceil() as usize)
            .max(pairs.len() + 1)
            .next_power_of_two()
            .max(2);
        let mut t = FlatProbeTable::with_slot_count(capacity);
        for (h, v) in pairs {
            t.insert_no_grow(h, v);
        }
        t
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot count (power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn home(&self, hash: u64) -> usize {
        // Fibonacci hashing: FNV-1a avalanches its high bits well; one
        // multiply spreads any residual structure across the top `log2(cap)`
        // bits the index uses.
        (hash.wrapping_mul(GOLDEN) >> self.shift) as usize & self.mask
    }

    /// The group-scan tag: a byte of the same Fibonacci product the home
    /// index comes from, taken below the index bits so adversarial keys
    /// that collide on the home slot still usually differ in tag.
    #[inline]
    fn tag_of(hash: u64) -> u8 {
        (hash.wrapping_mul(GOLDEN) >> 8) as u8
    }

    #[inline]
    fn occupied(&self, i: usize) -> bool {
        self.bitmap[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Inserts `(hash, val)` if `hash` is absent; returns `false` (keeping
    /// the resident value) when the key was already present. Grows by
    /// rebuilding when the 0.5 load bound would be exceeded — tables are
    /// built offline (dictionary construction), never on the serving path.
    pub fn insert_first(&mut self, hash: u64, val: u32) -> bool {
        if (self.len + 1) * 2 > self.capacity() {
            self.grow();
        }
        self.insert_no_grow(hash, val)
    }

    /// The insert body, without the load-bound grow: also used by
    /// [`FlatProbeTable::from_pairs_with_load`] to build beyond load 0.5.
    fn insert_no_grow(&mut self, hash: u64, val: u32) -> bool {
        debug_assert!(self.len < self.capacity(), "no empty slot left");
        let mut i = self.home(hash);
        loop {
            if !self.occupied(i) {
                self.slots[i] = Slot { hash, val };
                self.tags[i] = Self::tag_of(hash);
                self.bitmap[i >> 6] |= 1u64 << (i & 63);
                self.len += 1;
                return true;
            }
            if self.slots[i].hash == hash {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        // `capacity + 1` entries always snaps to the next power of two, so
        // every grow at least doubles (including the minimum-size table).
        let mut bigger = FlatProbeTable::with_capacity(self.capacity() + 1);
        for (i, s) in self.slots.iter().enumerate() {
            if self.occupied(i) {
                bigger.insert_first(s.hash, s.val);
            }
        }
        *self = bigger;
    }

    /// Probes `hash`, returning its value if present.
    ///
    /// The fast path is unchanged from the tag-free design — bitmap
    /// prefilter, then at most two slot compares — so the overwhelmingly
    /// common short probes never touch the tag lane. Only a chain that
    /// survives both compares falls through to [`Self::probe_chain`].
    #[inline]
    pub fn probe(&self, hash: u64) -> Option<u32> {
        let i = self.home(hash);
        // Prefilter: an empty home slot — the dominant miss at load
        // ≤ 0.5 — is rejected by one bit of the bitmap without touching
        // the slot array. The bitmap is 128× denser than the slots, so it
        // stays cache-resident when they cannot.
        if !self.occupied(i) {
            return None;
        }
        if self.slots[i].hash == hash {
            return Some(self.slots[i].val);
        }
        let j = (i + 1) & self.mask;
        if !self.occupied(j) {
            return None;
        }
        if self.slots[j].hash == hash {
            return Some(self.slots[j].val);
        }
        self.probe_chain((j + 1) & self.mask, hash)
    }

    /// Continues a probe chain from slot `start` (the third slot of the
    /// chain; `start`'s occupancy has not been checked yet). Dispatches to
    /// the 16-wide tag-group scan when SIMD is enabled and the table has
    /// at least one full group; the scalar walk is the fallback and the
    /// bitwise-equivalence control.
    #[cold]
    fn probe_chain(&self, start: usize, hash: u64) -> Option<u32> {
        #[cfg(target_arch = "x86_64")]
        if self.capacity() >= GROUP && crate::simd::probe_simd() {
            // SAFETY: SSE2 is baseline on x86_64; capacity checked ≥ GROUP.
            return unsafe { self.probe_chain_sse2(start, hash) };
        }
        self.probe_chain_scalar(start, hash)
    }

    /// The scalar chain walk: one slot per step, terminated by the first
    /// empty slot. Exactly the pre-SIMD loop.
    fn probe_chain_scalar(&self, start: usize, hash: u64) -> Option<u32> {
        let mut i = start;
        loop {
            if !self.occupied(i) {
                return None;
            }
            if self.slots[i].hash == hash {
                return Some(self.slots[i].val);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The 16 occupancy bits covering the 16-aligned group at `group`.
    /// Capacity is a power of two ≥ 16 here, so an aligned group never
    /// straddles a bitmap word.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn occ16(&self, group: usize) -> u32 {
        ((self.bitmap[group >> 6] >> (group & 63)) & 0xffff) as u32
    }

    /// Swiss-table-style chain scan: per step, compare one 16-slot group's
    /// byte tags against the key's tag in one `_mm_cmpeq_epi8` and check
    /// the group's 16 occupancy bits, then confirm tag candidates (in
    /// ascending slot order, so first-wins duplicates resolve exactly like
    /// the scalar walk) against the full 64-bit hash. Candidates at or
    /// past the group's first empty slot are masked out — the scalar walk
    /// would have stopped there — which also terminates the scan.
    ///
    /// # Safety
    /// Requires SSE2 (baseline on x86_64) and `capacity() >= GROUP`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn probe_chain_sse2(&self, start: usize, hash: u64) -> Option<u32> {
        use std::arch::x86_64::*;
        let needle = _mm_set1_epi8(Self::tag_of(hash) as i8);
        let mut group = start & !(GROUP - 1);
        // Slots of the first group before `start` belong to earlier chain
        // positions the fast path already handled; mask them out.
        let mut window = (0xffffu32 << (start & (GROUP - 1))) & 0xffff;
        loop {
            let occ = self.occ16(group);
            let tags = _mm_loadu_si128(self.tags.as_ptr().add(group).cast());
            let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(tags, needle)) as u32;
            let empties = !occ & window;
            // The chain the scalar walk would traverse ends at the first
            // empty slot in the window; only candidates before it count.
            let in_chain = if empties != 0 {
                window & ((1u32 << empties.trailing_zeros()) - 1)
            } else {
                window
            };
            let mut cand = eq & occ & in_chain;
            while cand != 0 {
                let pos = group + cand.trailing_zeros() as usize;
                if self.slots[pos].hash == hash {
                    return Some(self.slots[pos].val);
                }
                cand &= cand - 1;
            }
            if empties != 0 {
                return None;
            }
            group = (group + GROUP) & self.mask;
            window = 0xffff;
        }
    }

    /// True when bulk probe loops should software-prefetch ahead: the
    /// table spills the fast cache levels — per the startup-calibrated
    /// threshold of [`crate::calibrate`] — so overlapping the next
    /// window's load hides latency instead of wasting an instruction.
    #[inline]
    pub fn prefetch_pays(&self) -> bool {
        self.prefetch_pays
    }

    /// Prefetches the home slot of `hash` into L1. Bulk probe loops call
    /// this a few windows ahead so the dependent loads of
    /// [`FlatProbeTable::probe`] overlap across windows. (The tag lane is
    /// not prefetched: only ≥ 2-step chains read it, and prefetching it
    /// for every window would recreate the two-line-fill cost the lazy
    /// tag design exists to avoid.)
    #[inline]
    pub fn prefetch(&self, hash: u64) {
        let i = self.home(hash);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `i <= mask`, so the pointer is in-bounds of the slot
        // allocation; prefetch has no architectural effect beyond caches.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.slots.as_ptr().add(i).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: in-bounds pointer; PRFM is a hint with no side effects.
        unsafe {
            let slot_ptr = self.slots.as_ptr().add(i);
            std::arch::asm!(
                "prfm pldl1keep, [{s}]",
                s = in(reg) slot_ptr,
                options(nostack, preserves_flags),
            );
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let _ = i;
    }

    /// Heap bytes of the table (slot array + bitmap + tag lane).
    pub fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>() + self.bitmap.len() * 8 + self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::splitmix64;

    #[test]
    fn empty_table_misses_everything() {
        let t = FlatProbeTable::with_capacity(0);
        assert!(t.is_empty());
        for h in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(t.probe(h), None);
        }
    }

    #[test]
    fn inserted_keys_are_found_and_first_wins() {
        let mut t = FlatProbeTable::with_capacity(4);
        assert!(t.insert_first(42, 7));
        assert!(!t.insert_first(42, 9), "duplicate hash keeps first value");
        assert_eq!(t.probe(42), Some(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = FlatProbeTable::with_capacity(1);
        for k in 0..1000u64 {
            t.insert_first(splitmix64(k), k as u32);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.capacity() >= 2000);
        for k in 0..1000u64 {
            assert_eq!(t.probe(splitmix64(k)), Some(k as u32), "key {k}");
        }
        for k in 1000..2000u64 {
            assert_eq!(t.probe(splitmix64(k)), None, "absent key {k}");
        }
    }

    #[test]
    fn adversarial_low_entropy_hashes_still_resolve() {
        // Sequential "hashes" (worst case for the tag byte and the home
        // index) must still round-trip: linear probing + full-hash confirm.
        let mut t = FlatProbeTable::with_capacity(64);
        for h in 0..64u64 {
            assert!(t.insert_first(h, (h * 3) as u32));
        }
        for h in 0..64u64 {
            assert_eq!(t.probe(h), Some((h * 3) as u32));
        }
        assert_eq!(t.probe(64), None);
    }

    #[test]
    fn matches_hashmap_reference_over_random_keys() {
        let mut t = FlatProbeTable::with_capacity(0);
        let mut reference = std::collections::HashMap::new();
        let mut h = 0x1234_5678u64;
        for k in 0..5000u32 {
            h = splitmix64(h ^ u64::from(k % 997)); // forced duplicates
            t.insert_first(h, k);
            reference.entry(h).or_insert(k);
        }
        for (&hash, &val) in &reference {
            assert_eq!(t.probe(hash), Some(val));
        }
        assert_eq!(t.len(), reference.len());
        let mut probe = 99u64;
        for _ in 0..5000 {
            probe = splitmix64(probe);
            assert_eq!(t.probe(probe), reference.get(&probe).copied());
        }
    }

    #[test]
    fn from_pairs_builds_first_wins() {
        let t = FlatProbeTable::from_pairs([(1, 10), (2, 20), (1, 30)]);
        assert_eq!(t.probe(1), Some(10));
        assert_eq!(t.probe(2), Some(20));
        assert_eq!(t.len(), 2);
    }

    /// Multiplicative inverse of [`GOLDEN`] mod 2^64 (odd → invertible),
    /// by Newton iteration. Lets tests construct keys with a chosen
    /// Fibonacci product — i.e. a chosen home slot.
    fn golden_inverse() -> u64 {
        let mut inv = GOLDEN;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(GOLDEN.wrapping_mul(inv)));
        }
        assert_eq!(GOLDEN.wrapping_mul(inv), 1);
        inv
    }

    /// A key whose Fibonacci product is exactly `product`: home slot =
    /// top bits of `product`, group-scan tag = `(product >> 8) as u8`.
    fn key_with_product(product: u64) -> u64 {
        product.wrapping_mul(golden_inverse())
    }

    #[test]
    fn same_home_chain_of_40_resolves_through_group_scan() {
        // 40 keys whose Fibonacci products all have zero top bits — every
        // one homes on slot 0 — with distinct tag bytes: the chain spans
        // 3 tag groups, so hits at every depth and the trailing miss all
        // exercise the SSE2 scan (and must agree with the scalar walk,
        // which `probe_chain` falls back to when SIMD is off — the
        // tests/simd.rs sweep runs both).
        let keys: Vec<u64> = (0..40u64)
            .map(|k| key_with_product((k << 8) | 0xa5))
            .collect();
        let mut t = FlatProbeTable::from_pairs_with_load(
            keys.iter().enumerate().map(|(v, &h)| (h, v as u32)),
            0.5,
        );
        for (v, &h) in keys.iter().enumerate() {
            assert_eq!(t.probe(h), Some(v as u32), "depth {v}");
        }
        // A missing key homed into the same chain whose tag *collides*
        // with the depth-5 key's (261 & 0xff == 5): full-hash confirm
        // must reject the candidate, then the first empty slot must
        // terminate the scan with None.
        let absent = key_with_product((261u64 << 8) | 0xa5);
        assert_eq!(t.probe(absent), None);
        // And extending the table later still finds everything.
        assert!(t.insert_first(absent, 777));
        assert_eq!(t.probe(absent), Some(777));
    }

    #[test]
    fn chain_wrapping_past_capacity_end_resolves() {
        // Home the chain on the last slot of the table so the group scan
        // wraps group addressing past the end: keys' products put home at
        // capacity-1, chain spills into slots 0, 1, 2, ...
        let t = {
            let keys: Vec<u64> = (0..24u64)
                .map(|k| key_with_product(((k + 1) << 8) | (u64::MAX << 57)))
                .collect();
            FlatProbeTable::from_pairs_with_load(
                keys.iter().enumerate().map(|(v, &h)| (h, v as u32)),
                0.3,
            )
        };
        let keys: Vec<u64> = (0..24u64)
            .map(|k| key_with_product(((k + 1) << 8) | (u64::MAX << 57)))
            .collect();
        for (v, &h) in keys.iter().enumerate() {
            assert_eq!(t.probe(h), Some(v as u32), "depth {v}");
        }
        assert_eq!(t.probe(key_with_product(u64::MAX << 57 | (70 << 8))), None);
    }

    #[test]
    fn high_load_table_matches_hashmap_reference() {
        // Load ~0.9: chains run long enough that essentially every miss
        // takes the group-scan path. Results must still match a HashMap.
        let mut reference = std::collections::HashMap::new();
        let mut h = 0xfeed_f00du64;
        let pairs: Vec<(u64, u32)> = (0..7000u32)
            .map(|k| {
                h = splitmix64(h);
                (h, k)
            })
            .collect();
        for &(hash, v) in &pairs {
            reference.entry(hash).or_insert(v);
        }
        let t = FlatProbeTable::from_pairs_with_load(pairs.iter().copied(), 0.9);
        assert!(
            t.len() * 10 >= t.capacity() * 8,
            "load factor too low to exercise long chains: {}/{}",
            t.len(),
            t.capacity()
        );
        for (&hash, &val) in &reference {
            assert_eq!(t.probe(hash), Some(val));
        }
        let mut probe = 3u64;
        for _ in 0..20_000 {
            probe = splitmix64(probe);
            assert_eq!(t.probe(probe), reference.get(&probe).copied());
        }
    }

    #[test]
    fn heap_bytes_scale_with_capacity() {
        let small = FlatProbeTable::with_capacity(4);
        let big = FlatProbeTable::with_capacity(4096);
        assert!(big.heap_bytes() > small.heap_bytes() * 100);
    }

    #[test]
    fn prefetch_is_safe_on_any_key() {
        let t = FlatProbeTable::from_pairs([(7, 1)]);
        for h in [0u64, 7, u64::MAX] {
            t.prefetch(h); // must not fault
        }
    }
}
