//! Data substrate for the PRETZEL reproduction.
//!
//! This crate provides the building blocks that both the white-box PRETZEL
//! runtime ([`pretzel-core`]) and the black-box baseline
//! ([`pretzel-baseline`]) are built on:
//!
//! * [`schema`] — column types and schemas flowing through pipeline DAGs,
//!   with propagation/validation helpers used by the Oven optimizer.
//! * [`vector`] — the [`vector::Vector`] value type exchanged between
//!   operators (dense/sparse float vectors, text, token spans).
//! * [`batch`] — [`batch::ColumnBatch`], the columnar chunk representation
//!   the batch engine executes over (dense row-major matrices, CSR sparse
//!   batches, packed text/token rows).
//! * [`ingest`] — [`ingest::BatchAssembler`], wire-to-columnar ingest:
//!   request decoding grows packed text, dense rows, or CSR triples
//!   straight into a pool-leased batch, with per-row content hashes.
//! * [`pool`] — pre-allocated, size-classed vector *and batch* pools used
//!   by PRETZEL to avoid allocation on the prediction path (paper §4.2.1).
//! * [`slot_alloc`] — [`slot_alloc::SlotStack`], the lock-free fixed-size
//!   slot allocator (pointer-width CAS + ABA tags, Blelloch & Wei) the
//!   sharded pool arenas build their hot lease/return path on.
//! * [`serde_bin`] — the hand-rolled, length-prefixed binary model-file
//!   format both engines load models from (the ML.Net "zip of directories"
//!   analogue), plus checksumming used by the Object Store for parameter
//!   dedup (paper §4.1.3).
//! * [`alloc_meter`] — a counting global allocator so experiments can report
//!   live heap bytes per configuration (paper §5.1).
//! * [`hash`] — small non-cryptographic hash utilities (feature hashing,
//!   parameter checksums, input hashing for sub-plan materialization).
//! * [`probe`] — [`probe::FlatProbeTable`], the bitmap-prefiltered
//!   one-line-per-probe open-addressing table behind the n-gram
//!   dictionary's matching path (with a 16-wide SIMD tag-group scan for
//!   long chains), and the flat-vs-`HashMap` probe knob (process default
//!   plus per-thread scoped override).
//! * [`simd`] — the explicit SIMD kernels of the dense data plane: 8-lane
//!   f32 dots/distances/affine maps with runtime AVX2 dispatch and a
//!   bitwise-identical lane-structured scalar fallback, behind the
//!   process-wide SIMD knob.
//! * [`calibrate`] — one-shot startup measurement (pointer-chase timing)
//!   of the cache threshold behind `FlatProbeTable::prefetch_pays`.
//!
//! [`pretzel-core`]: ../pretzel_core/index.html
//! [`pretzel-baseline`]: ../pretzel_baseline/index.html

pub mod alloc_meter;
pub mod batch;
pub mod calibrate;
pub mod error;
pub mod hash;
pub mod ingest;
pub mod pool;
pub mod probe;
pub mod schema;
pub mod serde_bin;
pub mod simd;
pub mod slot_alloc;
pub mod vector;

pub use batch::{ColRef, ColumnBatch};
pub use error::{DataError, Result};
pub use ingest::BatchAssembler;
pub use schema::{ColumnType, Schema};
pub use vector::Vector;
