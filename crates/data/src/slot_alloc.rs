//! Lock-free fixed-size slot allocation for pooled buffers.
//!
//! [`SlotStack`] is a bounded concurrent LIFO of owned values built on the
//! constant-time fixed-size allocation recipe of Blelloch & Wei
//! (arXiv:2008.04296), generalizing the Treiber discipline already proven
//! on connection state in `frontend/slab.rs`: every slot carries an atomic
//! free-list link, and the two list heads (free slots, occupied slots) each
//! pack `(aba_tag << 32) | (index + 1)` into a single `AtomicU64`, so both
//! `push` and `pop` are one pointer-width CAS loop each. The tag bump on
//! every successful head exchange makes the classic ABA reuse race
//! unobservable: a thread holding a stale head value always fails its CAS,
//! even if the same slot index cycled back to the top in between.
//!
//! This is the hot lease/return path of the sharded `VectorPool` arenas:
//! the owning executor pushes and pops its own arena with no lock, and a
//! *cross-core return* (a stolen chunk's buffers going home) is just a CAS
//! push into the owning arena's stack from another thread — the per-arena
//! return stack is unified with the free stack, which a bounded MPMC LIFO
//! supports natively.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Sentinel for "no next slot" in a list link (links store `index + 1`).
const NIL: u32 = 0;

struct Slot<T> {
    /// Intrusive list link: `next_index + 1`, or [`NIL`].
    next: AtomicU32,
    value: UnsafeCell<Option<T>>,
}

/// A fixed-capacity lock-free stack of owned values.
///
/// `push` moves a value in (failing with the value back when full); `pop`
/// moves one out. Any thread may do either — ownership of a slot's value
/// cell transfers through the head CAS that unlinks the slot, so the cell
/// is only ever touched by the thread that currently owns the slot.
pub struct SlotStack<T> {
    slots: Box<[Slot<T>]>,
    /// Packed head of the free-slot list: `(tag << 32) | (index + 1)`.
    free: AtomicU64,
    /// Packed head of the occupied-slot list (the stored values, LIFO).
    used: AtomicU64,
    /// Number of stored values (maintained after the fact; exact once the
    /// mutating threads quiesce, approximate while they race).
    len: AtomicUsize,
}

// Safety: a value enters a slot only between a free-list pop and a
// used-list push (and symmetrically on the way out), and head CASes
// transfer exclusive slot ownership between threads with AcqRel ordering.
unsafe impl<T: Send> Sync for SlotStack<T> {}
unsafe impl<T: Send> Send for SlotStack<T> {}

impl<T> SlotStack<T> {
    /// Builds a stack with room for `capacity` values, all slots free.
    pub fn new(capacity: usize) -> Self {
        Self::with_initial_tag(capacity, 0)
    }

    /// Like [`Self::new`] with both list heads starting at `tag` — lets
    /// tests park the ABA tag just below `u32::MAX` and drive it across
    /// the wraparound.
    pub fn with_initial_tag(capacity: usize, tag: u32) -> Self {
        let capacity = capacity.clamp(1, u32::MAX as usize - 1);
        let slots: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                // Thread the initial free list 0 -> 1 -> ... -> NIL.
                next: AtomicU32::new(if i + 1 < capacity { i as u32 + 2 } else { NIL }),
                value: UnsafeCell::new(None),
            })
            .collect();
        SlotStack {
            slots,
            free: AtomicU64::new((u64::from(tag) << 32) | 1), // index 0
            used: AtomicU64::new(u64::from(tag) << 32),       // empty
            len: AtomicUsize::new(0),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stored value count (exact at quiescence).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when no values are stored (at quiescence).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unlinks and returns the top slot index of the list at `head`, or
    /// `None` when the list is empty. The caller owns the slot afterwards.
    fn pop_slot(&self, head: &AtomicU64) -> Option<u32> {
        let mut current = head.load(Ordering::Acquire);
        loop {
            let link = (current & 0xffff_ffff) as u32;
            if link == NIL {
                return None;
            }
            let index = link - 1;
            let next = self.slots[index as usize].next.load(Ordering::Acquire);
            // The tag wraps at u32::MAX by design (wrapping add keeps the
            // packed word well-formed); correctness only needs the tag to
            // *change* on every successful exchange.
            let tag = (current >> 32) as u32;
            let new_head = (u64::from(tag.wrapping_add(1)) << 32) | u64::from(next);
            match head.compare_exchange_weak(current, new_head, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(index),
                Err(now) => current = now,
            }
        }
    }

    /// Links the (caller-owned) slot `index` onto the list at `head`.
    fn push_slot(&self, head: &AtomicU64, index: u32) {
        let mut current = head.load(Ordering::Acquire);
        loop {
            let link = (current & 0xffff_ffff) as u32;
            self.slots[index as usize]
                .next
                .store(link, Ordering::Release);
            let tag = (current >> 32) as u32;
            let new_head = (u64::from(tag.wrapping_add(1)) << 32) | u64::from(index + 1);
            match head.compare_exchange_weak(current, new_head, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(now) => current = now,
            }
        }
    }

    /// Stores `value`, or hands it back when every slot is occupied.
    pub fn push(&self, value: T) -> Result<(), T> {
        let Some(index) = self.pop_slot(&self.free) else {
            return Err(value);
        };
        // Exclusively ours between the two head CASes.
        unsafe { *self.slots[index as usize].value.get() = Some(value) };
        self.push_slot(&self.used, index);
        self.len.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Takes the most recently stored value, if any.
    pub fn pop(&self) -> Option<T> {
        let index = self.pop_slot(&self.used)?;
        let value = unsafe {
            (*self.slots[index as usize].value.get())
                .take()
                .expect("used-list slot holds a value")
        };
        self.push_slot(&self.free, index);
        self.len.fetch_sub(1, Ordering::AcqRel);
        Some(value)
    }
}

impl<T> std::fmt::Debug for SlotStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotStack")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;
    use std::sync::{Arc, Barrier};

    #[test]
    fn push_pop_lifo_and_capacity_bound() {
        let s = SlotStack::new(2);
        assert!(s.push(1u32).is_ok());
        assert!(s.push(2).is_ok());
        assert_eq!(s.push(3), Err(3), "full stack hands the value back");
        assert_eq!(s.pop(), Some(2), "LIFO order");
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    /// Multi-thread alloc/free storm checked against a reference model:
    /// every pushed value is distinct, so conservation of the value
    /// multiset (sum pushed == sum popped + sum drained) plus the
    /// capacity bound is a full correctness certificate — a lost update,
    /// double pop, or ABA corruption each breaks the sum.
    #[test]
    fn concurrent_storm_conserves_values() {
        const THREADS: u64 = 4;
        const OPS: u64 = 4000;
        let stack = Arc::new(SlotStack::new(16));
        let pushed = Arc::new(TestCounter::new(0));
        let popped = Arc::new(TestCounter::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                let pushed = Arc::clone(&pushed);
                let popped = Arc::clone(&popped);
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        let v = t * 1_000_000 + i + 1;
                        if v % 3 != 0 {
                            if stack.push(v).is_ok() {
                                pushed.fetch_add(v, Ordering::Relaxed);
                            }
                        } else if let Some(got) = stack.pop() {
                            assert!(got > 0, "popped a value that was never pushed");
                            popped.fetch_add(got, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut drained = 0u64;
        let mut n_drained = 0usize;
        while let Some(v) = stack.pop() {
            drained += v;
            n_drained += 1;
        }
        assert!(
            n_drained <= stack.capacity(),
            "never held more than capacity"
        );
        assert_eq!(
            pushed.load(Ordering::Relaxed),
            popped.load(Ordering::Relaxed) + drained,
            "value multiset is conserved across the storm"
        );
        assert_eq!(stack.len(), 0);
    }

    /// Drives both packed heads across the 32-bit ABA-tag wraparound: the
    /// stack starts with its tags parked at `u32::MAX - 8`, then performs
    /// far more successful CAS exchanges than tags remain, under
    /// contention. Wrapping tag arithmetic must keep the packed word
    /// well-formed and the exchange discipline intact.
    #[test]
    fn aba_tag_exhaustion_wraps_cleanly() {
        let stack = Arc::new(SlotStack::with_initial_tag(4, u32::MAX - 8));
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    for i in 0..3000u64 {
                        let v = t * 100_000 + i + 1;
                        if stack.push(v).is_ok() {
                            // Pop-anything keeps churn high while the tag
                            // wraps; values are validated by range.
                            if let Some(got) = stack.pop() {
                                assert!((1..400_000).contains(&got));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        while stack.pop().is_some() {}
        assert!(stack.is_empty());
        // Both heads long since wrapped past zero.
        assert!(stack.free.load(Ordering::Relaxed) >> 32 < u64::from(u32::MAX - 8));
    }

    /// Barrier-scheduled steal-vs-return interleaving: an "owner" thread
    /// returns buffers to the arena while a "thief" concurrently leases
    /// from it, round by round. Each buffer must be observed by exactly
    /// one leaser per circulation (values are unique per round).
    #[test]
    fn barrier_interleaved_steal_vs_return() {
        const ROUNDS: usize = 200;
        const PER_ROUND: usize = 8;
        let stack = Arc::new(SlotStack::new(PER_ROUND));
        let barrier = Arc::new(Barrier::new(2));
        let owner = {
            let stack = Arc::clone(&stack);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    barrier.wait();
                    for k in 0..PER_ROUND {
                        // Returns race the thief's leases below.
                        let _ = stack.push((round * PER_ROUND + k) as u64);
                    }
                    barrier.wait();
                }
            })
        };
        let mut seen = std::collections::HashSet::new();
        for round in 0..ROUNDS {
            barrier.wait();
            let lo = (round * PER_ROUND) as u64;
            let hi = lo + PER_ROUND as u64;
            let mut got = 0;
            while got < PER_ROUND {
                if let Some(v) = stack.pop() {
                    assert!(v >= lo && v < hi, "round {round}: stale value {v}");
                    assert!(seen.insert(v), "value {v} leased twice");
                    got += 1;
                }
            }
            barrier.wait();
        }
        owner.join().unwrap();
        assert_eq!(seen.len(), ROUNDS * PER_ROUND);
        assert!(stack.is_empty());
    }
}
