//! Pre-allocated vector pools.
//!
//! PRETZEL pays memory- and thread-allocation cost "upfront at initialization
//! time" (paper §4): when the runtime starts, each executor gets a
//! [`VectorPool`] warmed with buffers sized from training statistics (max
//! vector size per stage, §4.1.1). On the prediction path, stages *acquire*
//! buffers from the pool and *release* them when the pipeline completes —
//! no global-allocator traffic. Disabling pooling reproduces the paper's
//! ablation (hot latency +47.1%, §5.2.1).
//!
//! Vectors are requested **per pipeline**, not per stage (§4.2.2): a
//! [`Lease`] bundles a pipeline's whole working set and returns it to the
//! pool on drop, which is what makes the scheduler's two-priority-queue
//! design (finish started pipelines first, to return memory quickly) work.

use crate::batch::ColumnBatch;
use crate::schema::ColumnType;
use crate::vector::{Span, Vector};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default cap of retained free buffers per size class.
const DEFAULT_MAX_PER_CLASS: usize = 256;

/// Counters describing pool effectiveness; read by benchmarks and tests.
#[derive(Debug, Default)]
pub struct PoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    released: AtomicU64,
    dropped: AtomicU64,
}

impl PoolStats {
    /// Acquisitions served from a free list.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquisitions that had to allocate a fresh buffer.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Buffers returned to the pool.
    pub fn released(&self) -> u64 {
        self.released.load(Ordering::Relaxed)
    }

    /// Buffers dropped because a size class was already full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Free-list of sparse buffers per dimensionality class.
type SparseFreeLists = HashMap<u32, Vec<(Vec<u32>, Vec<f32>)>>;

/// Size class of a pooled [`ColumnBatch`].
///
/// Batches are classed by column type only (not by row count): every
/// backing buffer grows monotonically and is kept across reuse, so a batch
/// that once served a large chunk serves all smaller chunks allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BatchClass {
    /// Packed text rows.
    Text,
    /// Packed token rows.
    Tokens,
    /// Row-major dense rows of one width.
    Dense(usize),
    /// CSR sparse rows of one logical dimension.
    Sparse(u32),
    /// One scalar per row.
    Scalar,
}

impl BatchClass {
    fn of(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Text => BatchClass::Text,
            ColumnType::TokenList => BatchClass::Tokens,
            ColumnType::F32Dense { len } => BatchClass::Dense(len),
            ColumnType::F32Sparse { len } => BatchClass::Sparse(len as u32),
            ColumnType::F32Scalar => BatchClass::Scalar,
        }
    }
}

/// A size-classed pool of reusable [`Vector`] buffers.
///
/// When pooling is disabled (`VectorPool::disabled()`), every acquisition
/// allocates and every release drops — the black-box baseline behaviour, and
/// the configuration used by the "no vector pooling" ablation.
#[derive(Debug)]
pub struct VectorPool {
    enabled: bool,
    max_per_class: usize,
    text: Mutex<Vec<String>>,
    tokens: Mutex<Vec<Vec<Span>>>,
    dense: Mutex<HashMap<usize, Vec<Vec<f32>>>>,
    sparse: Mutex<SparseFreeLists>,
    batches: Mutex<HashMap<BatchClass, Vec<ColumnBatch>>>,
    stats: PoolStats,
}

impl Default for VectorPool {
    fn default() -> Self {
        Self::new()
    }
}

impl VectorPool {
    /// Creates an enabled, empty pool.
    pub fn new() -> Self {
        VectorPool {
            enabled: true,
            max_per_class: DEFAULT_MAX_PER_CLASS,
            text: Mutex::new(Vec::new()),
            tokens: Mutex::new(Vec::new()),
            dense: Mutex::new(HashMap::new()),
            sparse: Mutex::new(HashMap::new()),
            batches: Mutex::new(HashMap::new()),
            stats: PoolStats::default(),
        }
    }

    /// Creates a pass-through pool that always allocates (ablation mode).
    pub fn disabled() -> Self {
        VectorPool {
            enabled: false,
            ..VectorPool::new()
        }
    }

    /// Sets the retained-buffer cap per size class.
    pub fn with_max_per_class(mut self, cap: usize) -> Self {
        self.max_per_class = cap;
        self
    }

    /// True if the pool retains and reuses buffers.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Pool effectiveness counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Pre-populates the pool with `count` buffers of type `ty`.
    ///
    /// Called at runtime initialization from per-plan statistics, so that
    /// the first requests already hit warm buffers (paper §4.2.1).
    pub fn warm(&self, ty: ColumnType, count: usize) {
        self.warm_sized(ty, 0, count);
    }

    /// Pre-populates the pool with `count` buffers of type `ty`, each with
    /// storage reserved for `max_stored` elements (training statistics).
    pub fn warm_sized(&self, ty: ColumnType, max_stored: usize, count: usize) {
        if !self.enabled {
            return;
        }
        for _ in 0..count {
            self.release(Vector::with_capacity_hint(ty, max_stored));
        }
        // Warming is the upfront payment made at initialization time, not
        // prediction-path traffic: exclude it from the release counter.
        self.stats
            .released
            .fetch_sub(count as u64, Ordering::Relaxed);
    }

    /// Pre-populates the batch free list with `count` batches of type
    /// `ty`, each with storage reserved for `rows` rows of `stored_hint`
    /// stored elements. Deploy-time plan warming for the batch engine: the
    /// first post-deploy chunk leases a pre-built working set instead of
    /// paying a pool miss. Like [`Self::warm_sized`], warming is the
    /// upfront payment made at initialization/deploy time, so it leaves
    /// the hit/miss/release counters untouched.
    pub fn warm_batches(&self, ty: ColumnType, rows: usize, stored_hint: usize, count: usize) {
        if !self.enabled {
            return;
        }
        let mut g = self.batches.lock();
        let class = g.entry(BatchClass::of(ty)).or_default();
        for _ in 0..count {
            if class.len() >= self.max_per_class {
                break;
            }
            class.push(ColumnBatch::with_capacity_hint(ty, rows, stored_hint));
        }
    }

    /// Acquires a cleared buffer of type `ty`.
    pub fn acquire(&self, ty: ColumnType) -> Vector {
        if self.enabled {
            if let Some(mut v) = self.try_pop(ty) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                v.reset();
                return v;
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        Vector::with_type(ty)
    }

    fn try_pop(&self, ty: ColumnType) -> Option<Vector> {
        match ty {
            ColumnType::Text => self.text.lock().pop().map(Vector::Text),
            ColumnType::TokenList => self.tokens.lock().pop().map(Vector::Tokens),
            ColumnType::F32Dense { len } => self
                .dense
                .lock()
                .get_mut(&len)
                .and_then(Vec::pop)
                .map(Vector::Dense),
            ColumnType::F32Sparse { len } => self
                .sparse
                .lock()
                .get_mut(&(len as u32))
                .and_then(Vec::pop)
                .map(|(indices, values)| Vector::Sparse {
                    indices,
                    values,
                    dim: len as u32,
                }),
            // Scalars are plain values; nothing to pool.
            ColumnType::F32Scalar => Some(Vector::Scalar(0.0)),
        }
    }

    /// Returns a buffer to the pool (or drops it when disabled/full).
    pub fn release(&self, v: Vector) {
        if !self.enabled {
            return;
        }
        self.stats.released.fetch_add(1, Ordering::Relaxed);
        let cap = self.max_per_class;
        let full = match v {
            Vector::Text(s) => {
                let mut g = self.text.lock();
                if g.len() < cap {
                    g.push(s);
                    false
                } else {
                    true
                }
            }
            Vector::Tokens(t) => {
                let mut g = self.tokens.lock();
                if g.len() < cap {
                    g.push(t);
                    false
                } else {
                    true
                }
            }
            Vector::Dense(d) => {
                let mut g = self.dense.lock();
                let class = g.entry(d.len()).or_default();
                if class.len() < cap {
                    class.push(d);
                    false
                } else {
                    true
                }
            }
            Vector::Sparse {
                indices,
                values,
                dim,
            } => {
                let mut g = self.sparse.lock();
                let class = g.entry(dim).or_default();
                if class.len() < cap {
                    class.push((indices, values));
                    false
                } else {
                    true
                }
            }
            Vector::Scalar(_) => false,
        };
        if full {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Acquires a cleared [`ColumnBatch`] of type `ty` with capacity hinted
    /// for `rows` rows (the batch engine leases one batch per plan slot per
    /// chunk, instead of one vector per slot per *record*).
    ///
    /// Free lists are per column-type class; push/pop at the tail makes the
    /// concurrent acquire/release constant-time per buffer (compare the
    /// fixed-size-allocation free lists of Blelloch & Wei,
    /// arXiv:2008.04296), and reused batches keep their grown capacity so a
    /// warm pool serves chunks allocation-free.
    pub fn acquire_batch(&self, ty: ColumnType, rows: usize) -> ColumnBatch {
        if self.enabled {
            let popped = self
                .batches
                .lock()
                .get_mut(&BatchClass::of(ty))
                .and_then(Vec::pop);
            if let Some(mut b) = popped {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                b.reset();
                return b;
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        ColumnBatch::with_capacity_hint(ty, rows, 0)
    }

    /// Returns a batch to the pool (or drops it when disabled/full).
    pub fn release_batch(&self, b: ColumnBatch) {
        if !self.enabled {
            return;
        }
        self.stats.released.fetch_add(1, Ordering::Relaxed);
        let mut g = self.batches.lock();
        let class = g.entry(BatchClass::of(b.column_type())).or_default();
        if class.len() < self.max_per_class {
            class.push(b);
        } else {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Acquires one buffer per entry of `types` as a RAII [`Lease`].
    pub fn lease(self: &Arc<Self>, types: &[ColumnType]) -> Lease {
        let vectors = types.iter().map(|&t| self.acquire(t)).collect();
        Lease {
            pool: Arc::clone(self),
            vectors,
        }
    }

    /// Total heap bytes currently parked in free lists.
    pub fn retained_bytes(&self) -> usize {
        let mut total = 0usize;
        total += self.text.lock().iter().map(String::capacity).sum::<usize>();
        total += self
            .tokens
            .lock()
            .iter()
            .map(|t| t.capacity() * std::mem::size_of::<Span>())
            .sum::<usize>();
        total += self
            .dense
            .lock()
            .values()
            .flatten()
            .map(|d| d.capacity() * 4)
            .sum::<usize>();
        total += self
            .sparse
            .lock()
            .values()
            .flatten()
            .map(|(i, v)| i.capacity() * 4 + v.capacity() * 4)
            .sum::<usize>();
        total += self
            .batches
            .lock()
            .values()
            .flatten()
            .map(ColumnBatch::heap_bytes)
            .sum::<usize>();
        total
    }
}

/// A pipeline's working set of pooled buffers, returned to the pool on drop.
#[derive(Debug)]
pub struct Lease {
    pool: Arc<VectorPool>,
    vectors: Vec<Vector>,
}

impl Lease {
    /// Number of leased buffers.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if the lease holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Mutable access to the whole working set (stage slot indexing).
    pub fn slots(&mut self) -> &mut [Vector] {
        &mut self.vectors
    }

    /// Immutable access to the working set.
    pub fn slots_ref(&self) -> &[Vector] {
        &self.vectors
    }

    /// Splits the working set into the slot at `idx` and the rest, so a
    /// stage can read earlier slots while writing its output slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn split_output(&mut self, idx: usize) -> (&mut Vector, &[Vector]) {
        let (before, rest) = self.vectors.split_at_mut(idx);
        let (out, _after) = rest.split_first_mut().expect("slot index out of bounds");
        (out, before)
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        for v in self.vectors.drain(..) {
            self.pool.release(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuses_buffers() {
        let pool = VectorPool::new();
        let ty = ColumnType::F32Dense { len: 8 };
        let v = pool.acquire(ty);
        assert_eq!(pool.stats().misses(), 1);
        pool.release(v);
        let v2 = pool.acquire(ty);
        assert_eq!(pool.stats().hits(), 1);
        assert_eq!(v2.column_type(), ty);
    }

    #[test]
    fn acquired_buffers_are_reset() {
        let pool = VectorPool::new();
        let ty = ColumnType::F32Dense { len: 3 };
        let mut v = pool.acquire(ty);
        if let Vector::Dense(d) = &mut v {
            d.copy_from_slice(&[1.0, 2.0, 3.0]);
        }
        pool.release(v);
        let v2 = pool.acquire(ty);
        assert_eq!(v2.as_dense().unwrap(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn size_classes_are_separate() {
        let pool = VectorPool::new();
        pool.release(Vector::Dense(vec![0.0; 4]));
        // Asking for a different dense length must not return the len-4 buffer.
        let v = pool.acquire(ColumnType::F32Dense { len: 8 });
        assert_eq!(v.as_dense().unwrap().len(), 8);
        assert_eq!(pool.stats().misses(), 1);
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let pool = VectorPool::disabled();
        let ty = ColumnType::TokenList;
        let v = pool.acquire(ty);
        pool.release(v);
        let _ = pool.acquire(ty);
        assert_eq!(pool.stats().hits(), 0);
        assert_eq!(pool.stats().misses(), 2);
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn class_cap_drops_excess() {
        let pool = VectorPool::new().with_max_per_class(2);
        for _ in 0..3 {
            pool.release(Vector::Text(String::with_capacity(16)));
        }
        assert_eq!(pool.stats().dropped(), 1);
    }

    #[test]
    fn warm_prepopulates_without_counting_misses() {
        let pool = VectorPool::new();
        pool.warm(ColumnType::F32Sparse { len: 100 }, 4);
        for _ in 0..4 {
            let v = pool.acquire(ColumnType::F32Sparse { len: 100 });
            assert!(matches!(v, Vector::Sparse { dim: 100, .. }));
        }
        assert_eq!(pool.stats().hits(), 4);
        assert_eq!(pool.stats().misses(), 0);
    }

    #[test]
    fn lease_returns_buffers_on_drop() {
        let pool = Arc::new(VectorPool::new());
        let types = [
            ColumnType::Text,
            ColumnType::TokenList,
            ColumnType::F32Dense { len: 4 },
        ];
        {
            let mut lease = pool.lease(&types);
            assert_eq!(lease.len(), 3);
            let (out, before) = lease.split_output(2);
            assert_eq!(before.len(), 2);
            if let Vector::Dense(d) = out {
                d[0] = 1.0;
            }
        }
        // All three buffers are back: acquiring again yields hits only.
        let _lease2 = pool.lease(&types);
        assert_eq!(pool.stats().hits(), 3);
    }

    #[test]
    fn retained_bytes_tracks_freelists() {
        let pool = VectorPool::new();
        pool.release(Vector::Dense(Vec::with_capacity(10)));
        assert_eq!(pool.retained_bytes(), 40);
        let _ = pool.acquire(ColumnType::F32Dense { len: 0 });
        // Buffer with capacity 10 but length 0 lives in class 0.
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn batch_acquire_release_reuses_buffers() {
        let pool = VectorPool::new();
        let ty = ColumnType::F32Dense { len: 4 };
        let mut b = pool.acquire_batch(ty, 8);
        assert_eq!(pool.stats().misses(), 1);
        b.push_dense_row().unwrap()[0] = 3.0;
        pool.release_batch(b);
        let b2 = pool.acquire_batch(ty, 8);
        assert_eq!(pool.stats().hits(), 1);
        // Reused batches come back empty and type-stable.
        assert_eq!(b2.rows(), 0);
        assert_eq!(b2.column_type(), ty);
    }

    #[test]
    fn batch_classes_are_per_type() {
        let pool = VectorPool::new();
        pool.release_batch(ColumnBatch::with_type(ColumnType::F32Dense { len: 4 }));
        let b = pool.acquire_batch(ColumnType::F32Dense { len: 8 }, 1);
        assert_eq!(b.column_type(), ColumnType::F32Dense { len: 8 });
        assert_eq!(pool.stats().misses(), 1);
    }

    #[test]
    fn disabled_pool_never_retains_batches() {
        let pool = VectorPool::disabled();
        let b = pool.acquire_batch(ColumnType::Text, 4);
        pool.release_batch(b);
        let _ = pool.acquire_batch(ColumnType::Text, 4);
        assert_eq!(pool.stats().hits(), 0);
        assert_eq!(pool.stats().misses(), 2);
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn batch_retained_bytes_counted() {
        let pool = VectorPool::new();
        pool.release_batch(ColumnBatch::with_capacity_hint(
            ColumnType::F32Dense { len: 4 },
            8,
            0,
        ));
        assert!(pool.retained_bytes() >= 8 * 4 * 4);
    }

    #[test]
    fn pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VectorPool>();
        assert_send_sync::<Lease>();
    }
}
