//! Pre-allocated vector pools.
//!
//! PRETZEL pays memory- and thread-allocation cost "upfront at initialization
//! time" (paper §4): when the runtime starts, each executor gets a
//! [`VectorPool`] warmed with buffers sized from training statistics (max
//! vector size per stage, §4.1.1). On the prediction path, stages *acquire*
//! buffers from the pool and *release* them when the pipeline completes —
//! no global-allocator traffic. Disabling pooling reproduces the paper's
//! ablation (hot latency +47.1%, §5.2.1).
//!
//! Vectors are requested **per pipeline**, not per stage (§4.2.2): a
//! [`Lease`] bundles a pipeline's whole working set and returns it to the
//! pool on drop, which is what makes the scheduler's two-priority-queue
//! design (finish started pipelines first, to return memory quickly) work.
//!
//! Two backends implement the free lists:
//!
//! * **Locked** ([`VectorPool::new`]) — mutex-guarded `Vec` free lists per
//!   size class: the original shared-everything implementation, kept as
//!   the measured ablation control (`RuntimeConfig::sharded = false`).
//! * **Arena** ([`VectorPool::arena`]) — per-class lock-free
//!   [`SlotStack`]s behind a CAS-published class directory: the sharded
//!   execution plane's per-core arenas. The hot lease/return path is a
//!   pointer-width CAS (Blelloch & Wei, arXiv:2008.04296) with zero lock
//!   acquisitions, and because the stacks are MPMC, a *cross-core return*
//!   (a stolen chunk's buffers going home) is just a remote CAS push into
//!   the owning arena — the per-arena return stack is unified with the
//!   free stack. An arena may front a shared **global fallback** pool
//!   ([`VectorPool::with_fallback`], Theseus's `multiple_heaps` pattern):
//!   arena-dry acquires refill from the global pool before allocating, and
//!   arena-full releases spill to it before dropping.

use crate::batch::ColumnBatch;
use crate::schema::ColumnType;
use crate::slot_alloc::SlotStack;
use crate::vector::{Span, Vector};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default cap of retained free buffers per size class.
const DEFAULT_MAX_PER_CLASS: usize = 256;

/// Counters describing pool effectiveness; read by benchmarks and tests.
#[derive(Debug, Default)]
pub struct PoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    released: AtomicU64,
    dropped: AtomicU64,
}

impl PoolStats {
    /// Acquisitions served from a free list.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquisitions that had to allocate a fresh buffer.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Buffers returned to the pool.
    pub fn released(&self) -> u64 {
        self.released.load(Ordering::Relaxed)
    }

    /// Buffers dropped because a size class was already full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Free-list of sparse buffers per dimensionality class.
type SparseFreeLists = HashMap<u32, Vec<(Vec<u32>, Vec<f32>)>>;

/// Size class of a pooled [`ColumnBatch`].
///
/// Batches are classed by column type only (not by row count): every
/// backing buffer grows monotonically and is kept across reuse, so a batch
/// that once served a large chunk serves all smaller chunks allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BatchClass {
    /// Packed text rows.
    Text,
    /// Packed token rows.
    Tokens,
    /// Row-major dense rows of one width.
    Dense(usize),
    /// CSR sparse rows of one logical dimension.
    Sparse(u32),
    /// One scalar per row.
    Scalar,
}

impl BatchClass {
    fn of(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Text => BatchClass::Text,
            ColumnType::TokenList => BatchClass::Tokens,
            ColumnType::F32Dense { len } => BatchClass::Dense(len),
            ColumnType::F32Sparse { len } => BatchClass::Sparse(len as u32),
            ColumnType::F32Scalar => BatchClass::Scalar,
        }
    }
}

/// Packs a size class into the nonzero `u64` key the arena class directory
/// indexes by: a kind tag in the top byte, the length/dimension below it.
fn class_key(ty: ColumnType) -> u64 {
    const LEN_MASK: u64 = (1 << 56) - 1;
    match ty {
        ColumnType::Text => 1 << 56,
        ColumnType::TokenList => 2 << 56,
        ColumnType::F32Scalar => 3 << 56,
        ColumnType::F32Dense { len } => (4 << 56) | (len as u64 & LEN_MASK),
        ColumnType::F32Sparse { len } => (5 << 56) | (len as u64 & LEN_MASK),
    }
}

/// Directory slots; bounds the number of *distinct* size classes one arena
/// can track lock-free (a plan set uses a handful — text/tokens/scalar plus
/// a few dense widths and sparse dims). Past the bound, acquires allocate
/// and releases drop, which is safe and visible in the miss/drop counters.
const DIR_SLOTS: usize = 128;

/// A lock-free open-addressed map from class key to its [`SlotStack`].
///
/// Insertion claims a slot by CAS on the key, then publishes the stack
/// pointer; classes are never removed, so readers are two atomic loads on
/// the steady path and never block.
struct ClassDir<T> {
    keys: Box<[AtomicU64]>,
    stacks: Box<[AtomicPtr<SlotStack<T>>]>,
}

// Safety: stack pointers are published once (CAS-claimed slot, Release
// store) and only freed in `Drop`, which has exclusive access.
unsafe impl<T: Send> Send for ClassDir<T> {}
unsafe impl<T: Send> Sync for ClassDir<T> {}

impl<T> ClassDir<T> {
    fn new() -> Self {
        ClassDir {
            keys: (0..DIR_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            stacks: (0..DIR_SLOTS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    fn slot_of(key: u64) -> usize {
        // Fibonacci mixing spreads the small structured keys.
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize) & (DIR_SLOTS - 1)
    }

    /// Waits out the instant between a winner's key claim and its stack
    /// publication (once per class ever, never on the steady path).
    fn stack_at(&self, i: usize) -> &SlotStack<T> {
        loop {
            let p = self.stacks[i].load(Ordering::Acquire);
            if !p.is_null() {
                return unsafe { &*p };
            }
            std::hint::spin_loop();
        }
    }

    /// The stack for `key`, if the class was ever populated.
    fn find(&self, key: u64) -> Option<&SlotStack<T>> {
        let mut i = Self::slot_of(key);
        for _ in 0..DIR_SLOTS {
            match self.keys[i].load(Ordering::Acquire) {
                0 => return None,
                k if k == key => return Some(self.stack_at(i)),
                _ => i = (i + 1) & (DIR_SLOTS - 1),
            }
        }
        None
    }

    /// The stack for `key`, creating it (with `capacity` slots) on first
    /// use; `None` only when the directory is full.
    fn find_or_insert(&self, key: u64, capacity: usize) -> Option<&SlotStack<T>> {
        let mut i = Self::slot_of(key);
        for _ in 0..DIR_SLOTS {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == key {
                return Some(self.stack_at(i));
            }
            if k == 0 {
                match self.keys[i].compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        let stack = Box::into_raw(Box::new(SlotStack::new(capacity)));
                        self.stacks[i].store(stack, Ordering::Release);
                        return Some(unsafe { &*stack });
                    }
                    Err(now) if now == key => return Some(self.stack_at(i)),
                    Err(_) => {} // lost the slot to another class; keep probing
                }
            }
            i = (i + 1) & (DIR_SLOTS - 1);
        }
        None
    }
}

impl<T> Drop for ClassDir<T> {
    fn drop(&mut self) {
        for p in self.stacks.iter() {
            let p = p.load(Ordering::Acquire);
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl<T> std::fmt::Debug for ClassDir<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let classes = (0..DIR_SLOTS)
            .filter(|&i| self.keys[i].load(Ordering::Relaxed) != 0)
            .count();
        f.debug_struct("ClassDir")
            .field("classes", &classes)
            .finish()
    }
}

/// The mutex-guarded free lists (shared-plane ablation control).
#[derive(Debug, Default)]
struct LockedLists {
    text: Mutex<Vec<String>>,
    tokens: Mutex<Vec<Vec<Span>>>,
    dense: Mutex<HashMap<usize, Vec<Vec<f32>>>>,
    sparse: Mutex<SparseFreeLists>,
    batches: Mutex<HashMap<BatchClass, Vec<ColumnBatch>>>,
}

/// The lock-free per-class stacks (sharded arenas).
#[derive(Debug)]
struct ArenaLists {
    vectors: ClassDir<Vector>,
    batches: ClassDir<ColumnBatch>,
    /// Heap bytes parked in the stacks (maintained at push/pop, since a
    /// concurrent lock-free stack cannot be traversed).
    retained: AtomicUsize,
}

#[derive(Debug)]
enum Backend {
    Locked(LockedLists),
    Arena(ArenaLists),
}

/// Heap bytes owned by a pooled vector (for arena retained accounting).
fn vector_heap_bytes(v: &Vector) -> usize {
    match v {
        Vector::Text(s) => s.capacity(),
        Vector::Tokens(t) => t.capacity() * std::mem::size_of::<Span>(),
        Vector::Dense(d) => d.capacity() * 4,
        Vector::Sparse {
            indices, values, ..
        } => indices.capacity() * 4 + values.capacity() * 4,
        Vector::Scalar(_) => 0,
    }
}

/// A size-classed pool of reusable [`Vector`] buffers.
///
/// When pooling is disabled (`VectorPool::disabled()`), every acquisition
/// allocates and every release drops — the black-box baseline behaviour, and
/// the configuration used by the "no vector pooling" ablation.
#[derive(Debug)]
pub struct VectorPool {
    enabled: bool,
    max_per_class: usize,
    backend: Backend,
    /// Shared overflow/underflow pool behind a per-core arena: acquires
    /// refill from it before allocating, releases spill to it before
    /// dropping. Its own counters stay untouched on this traffic — the
    /// fronting arena's counters tell the whole story.
    fallback: Option<Arc<VectorPool>>,
    stats: PoolStats,
}

impl Default for VectorPool {
    fn default() -> Self {
        Self::new()
    }
}

impl VectorPool {
    /// Creates an enabled, empty pool with mutex free lists (the
    /// shared-plane ablation control and the historical default).
    pub fn new() -> Self {
        VectorPool {
            enabled: true,
            max_per_class: DEFAULT_MAX_PER_CLASS,
            backend: Backend::Locked(LockedLists::default()),
            fallback: None,
            stats: PoolStats::default(),
        }
    }

    /// Creates an enabled, empty pool whose free lists are lock-free
    /// [`SlotStack`]s — a sharded execution plane arena. Lease and return
    /// are pointer-width CAS operations; no path through this pool takes a
    /// lock.
    pub fn arena() -> Self {
        VectorPool {
            enabled: true,
            max_per_class: DEFAULT_MAX_PER_CLASS,
            backend: Backend::Arena(ArenaLists {
                vectors: ClassDir::new(),
                batches: ClassDir::new(),
                retained: AtomicUsize::new(0),
            }),
            fallback: None,
            stats: PoolStats::default(),
        }
    }

    /// Creates a pass-through pool that always allocates (ablation mode).
    pub fn disabled() -> Self {
        VectorPool {
            enabled: false,
            ..VectorPool::new()
        }
    }

    /// Sets the retained-buffer cap per size class.
    pub fn with_max_per_class(mut self, cap: usize) -> Self {
        self.max_per_class = cap;
        self
    }

    /// Fronts this pool with a shared fallback: dry acquires refill from
    /// `global`, full releases spill to it (per-core arena over a global
    /// pool, the Theseus `multiple_heaps` shape).
    pub fn with_fallback(mut self, global: Arc<VectorPool>) -> Self {
        self.fallback = Some(global);
        self
    }

    /// True if the pool retains and reuses buffers.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True if the free lists are lock-free arenas.
    pub fn is_arena(&self) -> bool {
        matches!(self.backend, Backend::Arena(_))
    }

    /// Pool effectiveness counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Pre-populates the pool with `count` buffers of type `ty`.
    ///
    /// Called at runtime initialization from per-plan statistics, so that
    /// the first requests already hit warm buffers (paper §4.2.1).
    pub fn warm(&self, ty: ColumnType, count: usize) {
        self.warm_sized(ty, 0, count);
    }

    /// Pre-populates the pool with `count` buffers of type `ty`, each with
    /// storage reserved for `max_stored` elements (training statistics).
    /// Warming is the upfront payment made at initialization time, not
    /// prediction-path traffic: counters stay untouched.
    pub fn warm_sized(&self, ty: ColumnType, max_stored: usize, count: usize) {
        if !self.enabled {
            return;
        }
        for _ in 0..count {
            if self
                .store_free(Vector::with_capacity_hint(ty, max_stored))
                .is_err()
            {
                break;
            }
        }
    }

    /// Pre-populates the batch free list with `count` batches of type
    /// `ty`, each with storage reserved for `rows` rows of `stored_hint`
    /// stored elements. Deploy-time plan warming for the batch engine: the
    /// first post-deploy chunk leases a pre-built working set instead of
    /// paying a pool miss. Like [`Self::warm_sized`], warming leaves the
    /// hit/miss/release counters untouched.
    pub fn warm_batches(&self, ty: ColumnType, rows: usize, stored_hint: usize, count: usize) {
        if !self.enabled {
            return;
        }
        for _ in 0..count {
            if self
                .store_free_batch(ColumnBatch::with_capacity_hint(ty, rows, stored_hint))
                .is_err()
            {
                break;
            }
        }
    }

    /// Pops a free vector of type `ty` without touching the counters.
    /// Scalars are plain values: always "available", nothing pooled.
    fn take_free(&self, ty: ColumnType) -> Option<Vector> {
        match &self.backend {
            Backend::Locked(l) => match ty {
                ColumnType::Text => l.text.lock().pop().map(Vector::Text),
                ColumnType::TokenList => l.tokens.lock().pop().map(Vector::Tokens),
                ColumnType::F32Dense { len } => l
                    .dense
                    .lock()
                    .get_mut(&len)
                    .and_then(Vec::pop)
                    .map(Vector::Dense),
                ColumnType::F32Sparse { len } => l
                    .sparse
                    .lock()
                    .get_mut(&(len as u32))
                    .and_then(Vec::pop)
                    .map(|(indices, values)| Vector::Sparse {
                        indices,
                        values,
                        dim: len as u32,
                    }),
                ColumnType::F32Scalar => Some(Vector::Scalar(0.0)),
            },
            Backend::Arena(a) => {
                if ty == ColumnType::F32Scalar {
                    return Some(Vector::Scalar(0.0));
                }
                let v = a.vectors.find(class_key(ty))?.pop()?;
                a.retained
                    .fetch_sub(vector_heap_bytes(&v), Ordering::Relaxed);
                Some(v)
            }
        }
    }

    /// Parks a free vector without touching the counters; hands it back
    /// when its size class is at capacity. Scalars always succeed (they
    /// are values, never pooled).
    fn store_free(&self, v: Vector) -> Result<(), Vector> {
        let cap = self.max_per_class;
        match &self.backend {
            Backend::Locked(l) => match v {
                Vector::Text(s) => {
                    let mut g = l.text.lock();
                    if g.len() < cap {
                        g.push(s);
                        Ok(())
                    } else {
                        Err(Vector::Text(s))
                    }
                }
                Vector::Tokens(t) => {
                    let mut g = l.tokens.lock();
                    if g.len() < cap {
                        g.push(t);
                        Ok(())
                    } else {
                        Err(Vector::Tokens(t))
                    }
                }
                Vector::Dense(d) => {
                    let mut g = l.dense.lock();
                    let class = g.entry(d.len()).or_default();
                    if class.len() < cap {
                        class.push(d);
                        Ok(())
                    } else {
                        Err(Vector::Dense(d))
                    }
                }
                Vector::Sparse {
                    indices,
                    values,
                    dim,
                } => {
                    let mut g = l.sparse.lock();
                    let class = g.entry(dim).or_default();
                    if class.len() < cap {
                        class.push((indices, values));
                        Ok(())
                    } else {
                        Err(Vector::Sparse {
                            indices,
                            values,
                            dim,
                        })
                    }
                }
                Vector::Scalar(_) => Ok(()),
            },
            Backend::Arena(a) => {
                let key = match &v {
                    Vector::Text(_) => class_key(ColumnType::Text),
                    Vector::Tokens(_) => class_key(ColumnType::TokenList),
                    Vector::Dense(d) => class_key(ColumnType::F32Dense { len: d.len() }),
                    Vector::Sparse { dim, .. } => {
                        class_key(ColumnType::F32Sparse { len: *dim as usize })
                    }
                    Vector::Scalar(_) => return Ok(()),
                };
                let Some(stack) = a.vectors.find_or_insert(key, cap) else {
                    return Err(v);
                };
                let bytes = vector_heap_bytes(&v);
                match stack.push(v) {
                    Ok(()) => {
                        a.retained.fetch_add(bytes, Ordering::Relaxed);
                        Ok(())
                    }
                    Err(v) => Err(v),
                }
            }
        }
    }

    /// Pops a free batch of class `ty` without touching the counters.
    fn take_free_batch(&self, ty: ColumnType) -> Option<ColumnBatch> {
        match &self.backend {
            Backend::Locked(l) => l
                .batches
                .lock()
                .get_mut(&BatchClass::of(ty))
                .and_then(Vec::pop),
            Backend::Arena(a) => {
                let b = a.batches.find(class_key(ty))?.pop()?;
                a.retained.fetch_sub(b.heap_bytes(), Ordering::Relaxed);
                Some(b)
            }
        }
    }

    /// Parks a free batch without touching the counters; hands it back
    /// when its class is at capacity.
    fn store_free_batch(&self, b: ColumnBatch) -> Result<(), ColumnBatch> {
        match &self.backend {
            Backend::Locked(l) => {
                let mut g = l.batches.lock();
                let class = g.entry(BatchClass::of(b.column_type())).or_default();
                if class.len() < self.max_per_class {
                    class.push(b);
                    Ok(())
                } else {
                    Err(b)
                }
            }
            Backend::Arena(a) => {
                let key = class_key(b.column_type());
                let Some(stack) = a.batches.find_or_insert(key, self.max_per_class) else {
                    return Err(b);
                };
                let bytes = b.heap_bytes();
                match stack.push(b) {
                    Ok(()) => {
                        a.retained.fetch_add(bytes, Ordering::Relaxed);
                        Ok(())
                    }
                    Err(b) => Err(b),
                }
            }
        }
    }

    /// Acquires a cleared buffer of type `ty`.
    pub fn acquire(&self, ty: ColumnType) -> Vector {
        if self.enabled {
            let found = self
                .take_free(ty)
                .or_else(|| self.fallback.as_ref().and_then(|f| f.take_free(ty)));
            if let Some(mut v) = found {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                v.reset();
                return v;
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        Vector::with_type(ty)
    }

    /// Returns a buffer to the pool (or drops it when disabled/full).
    pub fn release(&self, v: Vector) {
        if !self.enabled {
            return;
        }
        self.stats.released.fetch_add(1, Ordering::Relaxed);
        if let Err(v) = self.store_free(v) {
            let spilled = self
                .fallback
                .as_ref()
                .is_some_and(|f| f.store_free(v).is_ok());
            if !spilled {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Acquires a cleared [`ColumnBatch`] of type `ty` with capacity hinted
    /// for `rows` rows (the batch engine leases one batch per plan slot per
    /// chunk, instead of one vector per slot per *record*).
    ///
    /// Free lists are per column-type class; on the arena backend,
    /// push/pop are single pointer-width CASes into the class's
    /// [`SlotStack`] (the fixed-size-allocation recipe of Blelloch & Wei,
    /// arXiv:2008.04296), and reused batches keep their grown capacity so a
    /// warm pool serves chunks allocation-free with **zero lock
    /// acquisitions** on the lease/return path.
    pub fn acquire_batch(&self, ty: ColumnType, rows: usize) -> ColumnBatch {
        if self.enabled {
            let found = self
                .take_free_batch(ty)
                .or_else(|| self.fallback.as_ref().and_then(|f| f.take_free_batch(ty)));
            if let Some(mut b) = found {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                b.reset();
                return b;
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        ColumnBatch::with_capacity_hint(ty, rows, 0)
    }

    /// Returns a batch to the pool (or drops it when disabled/full). A
    /// batch whose rows borrow another batch's backing
    /// ([`ColumnBatch::detach_shared`]) drops the share before parking, so
    /// the source's next reuse stays copy-free.
    pub fn release_batch(&self, mut b: ColumnBatch) {
        if !self.enabled {
            return;
        }
        b.detach_shared();
        self.stats.released.fetch_add(1, Ordering::Relaxed);
        if let Err(b) = self.store_free_batch(b) {
            let spilled = self
                .fallback
                .as_ref()
                .is_some_and(|f| f.store_free_batch(b).is_ok());
            if !spilled {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Acquires one buffer per entry of `types` as a RAII [`Lease`].
    pub fn lease(self: &Arc<Self>, types: &[ColumnType]) -> Lease {
        let vectors = types.iter().map(|&t| self.acquire(t)).collect();
        Lease {
            pool: Arc::clone(self),
            vectors,
        }
    }

    /// Total heap bytes currently parked in free lists (excluding any
    /// fallback pool, which reports its own).
    pub fn retained_bytes(&self) -> usize {
        match &self.backend {
            Backend::Locked(l) => {
                let mut total = 0usize;
                total += l.text.lock().iter().map(String::capacity).sum::<usize>();
                total += l
                    .tokens
                    .lock()
                    .iter()
                    .map(|t| t.capacity() * std::mem::size_of::<Span>())
                    .sum::<usize>();
                total += l
                    .dense
                    .lock()
                    .values()
                    .flatten()
                    .map(|d| d.capacity() * 4)
                    .sum::<usize>();
                total += l
                    .sparse
                    .lock()
                    .values()
                    .flatten()
                    .map(|(i, v)| i.capacity() * 4 + v.capacity() * 4)
                    .sum::<usize>();
                total += l
                    .batches
                    .lock()
                    .values()
                    .flatten()
                    .map(ColumnBatch::heap_bytes)
                    .sum::<usize>();
                total
            }
            Backend::Arena(a) => a.retained.load(Ordering::Relaxed),
        }
    }
}

/// A pipeline's working set of pooled buffers, returned to the pool on drop.
#[derive(Debug)]
pub struct Lease {
    pool: Arc<VectorPool>,
    vectors: Vec<Vector>,
}

impl Lease {
    /// Number of leased buffers.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if the lease holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Mutable access to the whole working set (stage slot indexing).
    pub fn slots(&mut self) -> &mut [Vector] {
        &mut self.vectors
    }

    /// Immutable access to the working set.
    pub fn slots_ref(&self) -> &[Vector] {
        &self.vectors
    }

    /// Splits the working set into the slot at `idx` and the rest, so a
    /// stage can read earlier slots while writing its output slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn split_output(&mut self, idx: usize) -> (&mut Vector, &[Vector]) {
        let (before, rest) = self.vectors.split_at_mut(idx);
        let (out, _after) = rest.split_first_mut().expect("slot index out of bounds");
        (out, before)
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        for v in self.vectors.drain(..) {
            self.pool.release(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn acquire_release_reuses_buffers() {
        let pool = VectorPool::new();
        let ty = ColumnType::F32Dense { len: 8 };
        let v = pool.acquire(ty);
        assert_eq!(pool.stats().misses(), 1);
        pool.release(v);
        let v2 = pool.acquire(ty);
        assert_eq!(pool.stats().hits(), 1);
        assert_eq!(v2.column_type(), ty);
    }

    #[test]
    fn acquired_buffers_are_reset() {
        let pool = VectorPool::new();
        let ty = ColumnType::F32Dense { len: 3 };
        let mut v = pool.acquire(ty);
        if let Vector::Dense(d) = &mut v {
            d.copy_from_slice(&[1.0, 2.0, 3.0]);
        }
        pool.release(v);
        let v2 = pool.acquire(ty);
        assert_eq!(v2.as_dense().unwrap(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn size_classes_are_separate() {
        let pool = VectorPool::new();
        pool.release(Vector::Dense(vec![0.0; 4]));
        // Asking for a different dense length must not return the len-4 buffer.
        let v = pool.acquire(ColumnType::F32Dense { len: 8 });
        assert_eq!(v.as_dense().unwrap().len(), 8);
        assert_eq!(pool.stats().misses(), 1);
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let pool = VectorPool::disabled();
        let ty = ColumnType::TokenList;
        let v = pool.acquire(ty);
        pool.release(v);
        let _ = pool.acquire(ty);
        assert_eq!(pool.stats().hits(), 0);
        assert_eq!(pool.stats().misses(), 2);
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn class_cap_drops_excess() {
        let pool = VectorPool::new().with_max_per_class(2);
        for _ in 0..3 {
            pool.release(Vector::Text(String::with_capacity(16)));
        }
        assert_eq!(pool.stats().dropped(), 1);
    }

    #[test]
    fn warm_prepopulates_without_counting_misses() {
        let pool = VectorPool::new();
        pool.warm(ColumnType::F32Sparse { len: 100 }, 4);
        for _ in 0..4 {
            let v = pool.acquire(ColumnType::F32Sparse { len: 100 });
            assert!(matches!(v, Vector::Sparse { dim: 100, .. }));
        }
        assert_eq!(pool.stats().hits(), 4);
        assert_eq!(pool.stats().misses(), 0);
    }

    #[test]
    fn lease_returns_buffers_on_drop() {
        let pool = Arc::new(VectorPool::new());
        let types = [
            ColumnType::Text,
            ColumnType::TokenList,
            ColumnType::F32Dense { len: 4 },
        ];
        {
            let mut lease = pool.lease(&types);
            assert_eq!(lease.len(), 3);
            let (out, before) = lease.split_output(2);
            assert_eq!(before.len(), 2);
            if let Vector::Dense(d) = out {
                d[0] = 1.0;
            }
        }
        // All three buffers are back: acquiring again yields hits only.
        let _lease2 = pool.lease(&types);
        assert_eq!(pool.stats().hits(), 3);
    }

    #[test]
    fn retained_bytes_tracks_freelists() {
        let pool = VectorPool::new();
        pool.release(Vector::Dense(Vec::with_capacity(10)));
        assert_eq!(pool.retained_bytes(), 40);
        let _ = pool.acquire(ColumnType::F32Dense { len: 0 });
        // Buffer with capacity 10 but length 0 lives in class 0.
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn batch_acquire_release_reuses_buffers() {
        let pool = VectorPool::new();
        let ty = ColumnType::F32Dense { len: 4 };
        let mut b = pool.acquire_batch(ty, 8);
        assert_eq!(pool.stats().misses(), 1);
        b.push_dense_row().unwrap()[0] = 3.0;
        pool.release_batch(b);
        let b2 = pool.acquire_batch(ty, 8);
        assert_eq!(pool.stats().hits(), 1);
        // Reused batches come back empty and type-stable.
        assert_eq!(b2.rows(), 0);
        assert_eq!(b2.column_type(), ty);
    }

    #[test]
    fn batch_classes_are_per_type() {
        let pool = VectorPool::new();
        pool.release_batch(ColumnBatch::with_type(ColumnType::F32Dense { len: 4 }));
        let b = pool.acquire_batch(ColumnType::F32Dense { len: 8 }, 1);
        assert_eq!(b.column_type(), ColumnType::F32Dense { len: 8 });
        assert_eq!(pool.stats().misses(), 1);
    }

    #[test]
    fn disabled_pool_never_retains_batches() {
        let pool = VectorPool::disabled();
        let b = pool.acquire_batch(ColumnType::Text, 4);
        pool.release_batch(b);
        let _ = pool.acquire_batch(ColumnType::Text, 4);
        assert_eq!(pool.stats().hits(), 0);
        assert_eq!(pool.stats().misses(), 2);
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn batch_retained_bytes_counted() {
        let pool = VectorPool::new();
        pool.release_batch(ColumnBatch::with_capacity_hint(
            ColumnType::F32Dense { len: 4 },
            8,
            0,
        ));
        assert!(pool.retained_bytes() >= 8 * 4 * 4);
    }

    #[test]
    fn pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VectorPool>();
        assert_send_sync::<Lease>();
    }

    // ------------------------------------------------------------------
    // Arena (lock-free) backend
    // ------------------------------------------------------------------

    #[test]
    fn arena_pool_reuses_vectors_and_batches() {
        let pool = VectorPool::arena();
        assert!(pool.is_arena());
        let ty = ColumnType::F32Dense { len: 8 };
        let v = pool.acquire(ty);
        assert_eq!(pool.stats().misses(), 1);
        pool.release(v);
        let v2 = pool.acquire(ty);
        assert_eq!(pool.stats().hits(), 1);
        assert_eq!(v2.column_type(), ty);

        let b = pool.acquire_batch(ColumnType::Text, 4);
        pool.release_batch(b);
        let b2 = pool.acquire_batch(ColumnType::Text, 4);
        assert_eq!(b2.rows(), 0);
        assert_eq!(pool.stats().hits(), 2);
        assert_eq!(pool.stats().misses(), 2);
    }

    #[test]
    fn arena_scalars_never_miss() {
        let pool = VectorPool::arena();
        let v = pool.acquire(ColumnType::F32Scalar);
        assert!(matches!(v, Vector::Scalar(_)));
        assert_eq!(pool.stats().hits(), 1);
        assert_eq!(pool.stats().misses(), 0);
        pool.release(v);
        assert_eq!(pool.stats().dropped(), 0);
    }

    #[test]
    fn arena_warm_batches_serve_zero_miss() {
        let pool = VectorPool::arena();
        let ty = ColumnType::F32Dense { len: 16 };
        pool.warm_batches(ty, 64, 16, 2);
        let a = pool.acquire_batch(ty, 64);
        let b = pool.acquire_batch(ty, 64);
        assert_eq!(pool.stats().misses(), 0, "warm arena serves miss-free");
        assert_eq!(pool.stats().hits(), 2);
        pool.release_batch(a);
        pool.release_batch(b);
    }

    #[test]
    fn arena_retained_bytes_tracks_stacks() {
        let pool = VectorPool::arena();
        pool.release(Vector::Dense(Vec::with_capacity(10)));
        assert_eq!(pool.retained_bytes(), 40);
        let _ = pool.acquire(ColumnType::F32Dense { len: 0 });
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn arena_spills_to_global_fallback_and_refills() {
        let global = Arc::new(VectorPool::arena());
        let pool = VectorPool::arena()
            .with_max_per_class(1)
            .with_fallback(Arc::clone(&global));
        let ty = ColumnType::F32Dense { len: 4 };
        // Two releases into a 1-cap arena: the second spills to global
        // instead of dropping.
        pool.release(Vector::Dense(vec![0.0; 4]));
        pool.release(Vector::Dense(vec![0.0; 4]));
        assert_eq!(pool.stats().dropped(), 0, "spill, not drop");
        assert_eq!(global.retained_bytes(), 16);
        // Two acquires: arena first, then refill from global — all hits.
        let _a = pool.acquire(ty);
        let _b = pool.acquire(ty);
        assert_eq!(pool.stats().hits(), 2);
        assert_eq!(pool.stats().misses(), 0);
        assert_eq!(global.retained_bytes(), 0);
        // Global's own counters never moved: the arena tells the story.
        assert_eq!(global.stats().hits() + global.stats().misses(), 0);
    }

    /// Cross-core return: a "thief" thread that finished a stolen chunk
    /// pushes the buffers back into the owning arena, then the owner's
    /// next lease hits them — no locks, no misses.
    #[test]
    fn arena_cross_thread_return_then_owner_hit() {
        let pool = Arc::new(VectorPool::arena());
        let ty = ColumnType::F32Dense { len: 32 };
        let owned = pool.acquire_batch(ty, 8); // owner leases (miss: cold)
        let thief_pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            // The stolen chunk completes on the thief; its working set
            // returns to the owner's arena from the thief's thread.
            thief_pool.release_batch(owned);
        })
        .join()
        .unwrap();
        let again = pool.acquire_batch(ty, 8);
        assert_eq!(pool.stats().hits(), 1, "remote return is leasable");
        assert_eq!(again.rows(), 0);
    }

    /// Barrier-scheduled steal-vs-return on pool buffers: an owner returns
    /// working sets while a thief concurrently leases from the same arena,
    /// in lockstep rounds; conservation and distinctness hold throughout.
    #[test]
    fn arena_barrier_interleaved_steal_vs_return() {
        const ROUNDS: usize = 100;
        const PER_ROUND: usize = 4;
        let pool = Arc::new(VectorPool::arena());
        let ty = ColumnType::F32Dense { len: 8 };
        let barrier = Arc::new(Barrier::new(2));
        let owner = {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    for _ in 0..PER_ROUND {
                        pool.release_batch(ColumnBatch::with_capacity_hint(ty, 8, 0));
                    }
                    barrier.wait();
                }
            })
        };
        let mut leased = Vec::new();
        for _ in 0..ROUNDS {
            barrier.wait();
            // Lease concurrently with the owner's returns.
            for _ in 0..PER_ROUND / 2 {
                leased.push(pool.acquire_batch(ty, 8));
            }
            barrier.wait();
        }
        owner.join().unwrap();
        for b in leased.drain(..) {
            pool.release_batch(b);
        }
        let s = pool.stats();
        // Conservation: every lease was served or allocated, every return
        // parked, spilled nowhere (no fallback), or dropped at cap.
        assert_eq!(s.hits() + s.misses(), (ROUNDS * PER_ROUND / 2) as u64);
        assert!(s.released() >= (ROUNDS * PER_ROUND) as u64);
    }
}
