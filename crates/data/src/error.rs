//! Shared error type for the data substrate.

use std::fmt;

/// Result alias used throughout the data substrate.
pub type Result<T> = std::result::Result<T, DataError>;

/// Errors produced by schema validation, codecs and pools.
///
/// The PRETZEL runtime never panics on malformed pipelines or requests; every
/// fallible path surfaces one of these variants (paper-quality serving
/// systems degrade gracefully rather than aborting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A transformation received an input column type it cannot consume.
    SchemaMismatch {
        /// Name of the operator or stage that rejected the input.
        operator: String,
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// The pipeline graph is structurally invalid (cycle, missing predictor,
    /// dangling edge...).
    InvalidGraph(String),
    /// A binary model file failed to decode.
    Codec(String),
    /// A vector pool was asked for an unsupported buffer shape.
    Pool(String),
    /// A runtime invariant was violated (catalogue lookups, plan binding...).
    Runtime(String),
    /// The addressed plan was undeployed: new submissions are rejected fast
    /// while any in-flight work completes on the retiring plan (model
    /// lifecycle drain protocol).
    PlanRetired(u32),
    /// An operator panicked mid-execution. The panic was contained at the
    /// scheduler boundary: the faulting chunk's requests fail with this
    /// error, the executor thread and every other request keep serving.
    ExecutionFault(String),
    /// The addressed plan was quarantined by the fault policy (too many
    /// execution faults inside the sliding window); new submissions are
    /// rejected until an operator redeploys or rolls the alias back.
    PlanQuarantined(u32),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::SchemaMismatch {
                operator,
                expected,
                found,
            } => write!(
                f,
                "schema mismatch in `{operator}`: expected {expected}, found {found}"
            ),
            DataError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DataError::InvalidGraph(msg) => write!(f, "invalid pipeline graph: {msg}"),
            DataError::Codec(msg) => write!(f, "model file codec error: {msg}"),
            DataError::Pool(msg) => write!(f, "vector pool error: {msg}"),
            DataError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            DataError::PlanRetired(id) => write!(f, "plan {id} is retired (undeployed)"),
            DataError::ExecutionFault(msg) => write!(f, "execution fault: {msg}"),
            DataError::PlanQuarantined(id) => {
                write!(f, "plan {id} is quarantined (fault threshold exceeded)")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let err = DataError::SchemaMismatch {
            operator: "WordNgram".into(),
            expected: "TokenList".into(),
            found: "Text".into(),
        };
        assert_eq!(
            err.to_string(),
            "schema mismatch in `WordNgram`: expected TokenList, found Text"
        );
        assert_eq!(
            DataError::UnknownColumn("Text".into()).to_string(),
            "unknown column `Text`"
        );
        assert!(DataError::InvalidGraph("no predictor".into())
            .to_string()
            .contains("no predictor"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
