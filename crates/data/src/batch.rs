//! Columnar batches: one buffer holding a whole chunk's worth of a column.
//!
//! The scheduler's unit of work is a *chunk* of records. With per-record
//! working sets, a chunk of `n` records leases `n × slots` vectors and runs
//! every stage `n` times through enum dispatch. A [`ColumnBatch`] instead
//! holds all `n` rows of one column contiguously — dense rows back to back
//! in one `Vec<f32>`, sparse rows in CSR form, text and token rows packed
//! behind shared bounds — so a stage runs once per chunk over flat memory:
//! dense kernels become matrix traversals that auto-vectorize, and the
//! per-record pool traffic collapses to one lease per chunk.
//!
//! Row layouts are offset-based (CSR-style `bounds` arrays) rather than
//! `Vec<Vec<…>>` precisely so that a reused batch never re-allocates per
//! row and the pool can hand back batches in constant time per buffer,
//! in the spirit of constant-time concurrent fixed-size allocation
//! (Blelloch & Wei, arXiv:2008.04296).
//!
//! [`ColRef`] is the borrowed view of one row; it mirrors the variants of
//! [`crate::vector::Vector`] so batch kernels can share per-row logic with
//! the single-record path and produce bitwise-identical scores.

use crate::schema::ColumnType;
use crate::vector::{Span, Vector};
use crate::{DataError, Result};
use std::sync::Arc;

std::thread_local! {
    /// A shared zero-capacity buffer for detached/reset text batches, so
    /// detaching costs a refcount bump instead of an allocation.
    static EMPTY_TEXT: Arc<String> = Arc::new(String::new());
}

fn empty_shared_text() -> Arc<String> {
    EMPTY_TEXT.with(Arc::clone)
}

/// A borrowed view of one row of a column (or of a whole [`Vector`]).
#[derive(Debug, Clone, Copy)]
pub enum ColRef<'a> {
    /// Text row.
    Text(&'a str),
    /// Token spans (offsets relative to the row's own text).
    Tokens(&'a [Span]),
    /// Dense `f32` row.
    Dense(&'a [f32]),
    /// Sparse row: sorted unique `indices` parallel to `values`.
    Sparse {
        /// Sorted, unique element indices.
        indices: &'a [u32],
        /// Values parallel to `indices`.
        values: &'a [f32],
        /// Logical dimensionality.
        dim: u32,
    },
    /// Scalar row.
    Scalar(f32),
}

impl<'a> ColRef<'a> {
    /// Borrows a whole [`Vector`] as a row view (shared-kernel bridge).
    pub fn from_vector(v: &'a Vector) -> Self {
        match v {
            Vector::Text(s) => ColRef::Text(s),
            Vector::Tokens(t) => ColRef::Tokens(t),
            Vector::Dense(d) => ColRef::Dense(d),
            Vector::Sparse {
                indices,
                values,
                dim,
            } => ColRef::Sparse {
                indices,
                values,
                dim: *dim,
            },
            Vector::Scalar(x) => ColRef::Scalar(*x),
        }
    }

    /// The column type this row inhabits.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColRef::Text(_) => ColumnType::Text,
            ColRef::Tokens(_) => ColumnType::TokenList,
            ColRef::Dense(d) => ColumnType::F32Dense { len: d.len() },
            ColRef::Sparse { dim, .. } => ColumnType::F32Sparse { len: *dim as usize },
            ColRef::Scalar(_) => ColumnType::F32Scalar,
        }
    }

    /// Reads feature `idx` with sparse-absent-is-zero semantics (the
    /// contract tree traversal relies on; mirrors
    /// `pretzel_ops::tree::feature_value`).
    pub fn feature(&self, idx: usize) -> f32 {
        match self {
            ColRef::Dense(d) => d.get(idx).copied().unwrap_or(0.0),
            ColRef::Sparse {
                indices, values, ..
            } => match indices.binary_search(&(idx as u32)) {
                Ok(p) => values[p],
                Err(_) => 0.0,
            },
            ColRef::Scalar(x) if idx == 0 => *x,
            _ => 0.0,
        }
    }

    /// Logical dimensionality for numeric rows, `None` otherwise.
    pub fn dimension(&self) -> Option<usize> {
        match self {
            ColRef::Dense(d) => Some(d.len()),
            ColRef::Sparse { dim, .. } => Some(*dim as usize),
            ColRef::Scalar(_) => Some(1),
            _ => None,
        }
    }

    /// Copies the row into an owned [`Vector`] (materialization-cache
    /// insertion path: computed batch rows become cached per-record values).
    pub fn to_vector(&self) -> Vector {
        match self {
            ColRef::Text(s) => Vector::Text((*s).to_string()),
            ColRef::Tokens(t) => Vector::Tokens(t.to_vec()),
            ColRef::Dense(d) => Vector::Dense(d.to_vec()),
            ColRef::Sparse {
                indices,
                values,
                dim,
            } => Vector::Sparse {
                indices: indices.to_vec(),
                values: values.to_vec(),
                dim: *dim,
            },
            ColRef::Scalar(x) => Vector::Scalar(*x),
        }
    }
}

/// A whole chunk of one column, stored contiguously.
///
/// All variants support `O(1)` row access and append-only row construction
/// without per-row allocation, and [`ColumnBatch::reset`] keeps every
/// backing buffer's capacity so pooled batches serve chunk after chunk
/// allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnBatch {
    /// Text rows packed into one buffer; row `i` is
    /// `data[bounds[i]..bounds[i + 1]]`.
    ///
    /// The buffer is behind an [`Arc`] so a downstream [`Self::TextSpans`]
    /// batch can borrow rows without copying; mutation is copy-on-write
    /// (`Arc::make_mut`), so an outstanding spans view always keeps
    /// reading the bytes it was built over.
    Text {
        /// Concatenated row bytes (shared with any spans views).
        data: Arc<String>,
        /// Row boundaries; always starts with 0, length `rows + 1`.
        bounds: Vec<u32>,
    },
    /// Text rows *borrowed* from another text batch's buffer: row `i` is
    /// `data[spans[i].0..spans[i].1]`. This is how span-producing stages
    /// (CSV field selection) emit a column of substrings with zero copying
    /// — the output holds the source's `Arc` plus one `(start, end)` pair
    /// per row. Same column type as [`Self::Text`]; pushing owned rows
    /// first materializes into a packed `Text`.
    TextSpans {
        /// The borrowed source buffer.
        data: Arc<String>,
        /// Byte range of each row within `data` (need not be contiguous,
        /// ordered, or disjoint).
        spans: Vec<(u32, u32)>,
    },
    /// Token rows packed behind shared bounds; spans stay relative to each
    /// row's own text (zero-copy slicing downstream).
    Tokens {
        /// Concatenated per-row spans.
        spans: Vec<Span>,
        /// Row boundaries into `spans`; length `rows + 1`.
        bounds: Vec<u32>,
    },
    /// Dense rows back to back: row `i` is `data[i * dim..(i + 1) * dim]`.
    Dense {
        /// Row-major matrix storage.
        data: Vec<f32>,
        /// Row width.
        dim: usize,
        /// Row count (kept explicit so `dim == 0` stays well-defined).
        rows: usize,
    },
    /// Sparse rows in CSR form; row `i` is
    /// `indices[bounds[i]..bounds[i+1]]` / `values[..]`, indices sorted and
    /// unique within each row.
    Sparse {
        /// Row boundaries into `indices`/`values`; length `rows + 1`.
        bounds: Vec<u32>,
        /// Concatenated per-row sorted indices.
        indices: Vec<u32>,
        /// Values parallel to `indices`.
        values: Vec<f32>,
        /// Logical dimensionality of every row.
        dim: u32,
    },
    /// One scalar per row.
    Scalar(Vec<f32>),
}

impl ColumnBatch {
    /// Creates an empty batch of the right variant for `ty`.
    pub fn with_type(ty: ColumnType) -> Self {
        ColumnBatch::with_capacity_hint(ty, 0, 0)
    }

    /// Creates an empty batch with storage reserved for `rows` rows of
    /// `stored_hint` stored elements each (text bytes, tokens, sparse nnz;
    /// training statistics, like [`Vector::with_capacity_hint`]).
    pub fn with_capacity_hint(ty: ColumnType, rows: usize, stored_hint: usize) -> Self {
        match ty {
            ColumnType::Text => ColumnBatch::Text {
                data: Arc::new(String::with_capacity(rows * stored_hint)),
                bounds: bounds_with_capacity(rows),
            },
            ColumnType::TokenList => ColumnBatch::Tokens {
                spans: Vec::with_capacity(rows * stored_hint),
                bounds: bounds_with_capacity(rows),
            },
            ColumnType::F32Dense { len } => ColumnBatch::Dense {
                data: Vec::with_capacity(rows * len),
                dim: len,
                rows: 0,
            },
            ColumnType::F32Sparse { len } => ColumnBatch::Sparse {
                bounds: bounds_with_capacity(rows),
                indices: Vec::with_capacity(rows * stored_hint),
                values: Vec::with_capacity(rows * stored_hint),
                dim: len as u32,
            },
            ColumnType::F32Scalar => ColumnBatch::Scalar(Vec::with_capacity(rows)),
        }
    }

    /// The column type of every row in this batch.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnBatch::Text { .. } | ColumnBatch::TextSpans { .. } => ColumnType::Text,
            ColumnBatch::Tokens { .. } => ColumnType::TokenList,
            ColumnBatch::Dense { dim, .. } => ColumnType::F32Dense { len: *dim },
            ColumnBatch::Sparse { dim, .. } => ColumnType::F32Sparse { len: *dim as usize },
            ColumnBatch::Scalar(_) => ColumnType::F32Scalar,
        }
    }

    /// Number of rows currently in the batch.
    pub fn rows(&self) -> usize {
        match self {
            ColumnBatch::Text { bounds, .. }
            | ColumnBatch::Tokens { bounds, .. }
            | ColumnBatch::Sparse { bounds, .. } => bounds.len() - 1,
            ColumnBatch::TextSpans { spans, .. } => spans.len(),
            ColumnBatch::Dense { rows, .. } => *rows,
            ColumnBatch::Scalar(v) => v.len(),
        }
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Clears all rows while keeping allocated capacity (pool reuse).
    pub fn reset(&mut self) {
        match self {
            ColumnBatch::Text { data, bounds } => {
                match Arc::get_mut(data) {
                    Some(s) => s.clear(),
                    // A spans view still borrows the buffer: detach rather
                    // than clearing under it.
                    None => *data = empty_shared_text(),
                }
                bounds.clear();
                bounds.push(0);
            }
            ColumnBatch::TextSpans { data, spans } => {
                spans.clear();
                *data = empty_shared_text();
            }
            ColumnBatch::Tokens { spans, bounds } => {
                spans.clear();
                bounds.clear();
                bounds.push(0);
            }
            ColumnBatch::Dense { data, rows, .. } => {
                data.clear();
                *rows = 0;
            }
            ColumnBatch::Sparse {
                bounds,
                indices,
                values,
                ..
            } => {
                bounds.clear();
                bounds.push(0);
                indices.clear();
                values.clear();
            }
            ColumnBatch::Scalar(v) => v.clear(),
        }
    }

    /// Heap bytes owned by this batch (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        match self {
            ColumnBatch::Text { data, bounds } => data.capacity() + bounds.capacity() * 4,
            // The borrowed buffer belongs to (and is counted by) its source.
            ColumnBatch::TextSpans { spans, .. } => {
                spans.capacity() * std::mem::size_of::<(u32, u32)>()
            }
            ColumnBatch::Tokens { spans, bounds } => {
                spans.capacity() * std::mem::size_of::<Span>() + bounds.capacity() * 4
            }
            ColumnBatch::Dense { data, .. } => data.capacity() * 4,
            ColumnBatch::Sparse {
                bounds,
                indices,
                values,
                ..
            } => bounds.capacity() * 4 + indices.capacity() * 4 + values.capacity() * 4,
            ColumnBatch::Scalar(v) => v.capacity() * 4,
        }
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()` — row indexing is internal to batch kernels,
    /// so an out-of-range access is an engine bug, not a data condition.
    pub fn row(&self, i: usize) -> ColRef<'_> {
        match self {
            ColumnBatch::Text { data, bounds } => {
                ColRef::Text(&data[bounds[i] as usize..bounds[i + 1] as usize])
            }
            ColumnBatch::TextSpans { data, spans } => {
                let (a, b) = spans[i];
                ColRef::Text(&data[a as usize..b as usize])
            }
            ColumnBatch::Tokens { spans, bounds } => {
                ColRef::Tokens(&spans[bounds[i] as usize..bounds[i + 1] as usize])
            }
            ColumnBatch::Dense { data, dim, rows } => {
                assert!(i < *rows, "dense batch row {i} out of {rows}");
                ColRef::Dense(&data[i * dim..(i + 1) * dim])
            }
            ColumnBatch::Sparse {
                bounds,
                indices,
                values,
                dim,
            } => {
                let (a, b) = (bounds[i] as usize, bounds[i + 1] as usize);
                ColRef::Sparse {
                    indices: &indices[a..b],
                    values: &values[a..b],
                    dim: *dim,
                }
            }
            ColumnBatch::Scalar(v) => ColRef::Scalar(v[i]),
        }
    }

    /// Appends a text row (copying). On a spans batch, the borrowed rows
    /// are first materialized into a packed buffer (cold path; the hot
    /// producers either stay all-spans or all-owned).
    pub fn push_text(&mut self, s: &str) -> Result<()> {
        if matches!(self, ColumnBatch::TextSpans { .. }) {
            self.materialize_text();
        }
        match self {
            ColumnBatch::Text { data, bounds } => {
                Arc::make_mut(data).push_str(s);
                bounds.push(data.len() as u32);
                Ok(())
            }
            other => Err(variant_err("text", other)),
        }
    }

    /// The shared text buffer behind a text-family batch — the handle a
    /// span-producing stage clones into its [`Self::TextSpans`] output.
    pub fn shared_text(&self) -> Option<&Arc<String>> {
        match self {
            ColumnBatch::Text { data, .. } | ColumnBatch::TextSpans { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Turns this (text-family) batch into a spans view over `source`,
    /// clearing previous rows, and returns the span list for the caller to
    /// fill with `(start, end)` byte ranges into `source`. Reuses the span
    /// list's capacity when the batch was already a spans view, so a
    /// pooled output batch serves chunk after chunk allocation-free.
    pub fn begin_text_spans(&mut self, source: Arc<String>) -> Result<&mut Vec<(u32, u32)>> {
        match self {
            ColumnBatch::TextSpans { data, spans } => {
                *data = source;
                spans.clear();
                Ok(spans)
            }
            ColumnBatch::Text { .. } => {
                *self = ColumnBatch::TextSpans {
                    data: source,
                    spans: Vec::new(),
                };
                match self {
                    ColumnBatch::TextSpans { spans, .. } => Ok(spans),
                    _ => unreachable!(),
                }
            }
            other => Err(variant_err("text", other)),
        }
    }

    /// Drops any cross-batch text sharing: a spans view lets go of the
    /// borrowed buffer, and a text batch whose buffer a view still borrows
    /// forgets it (so the pool never parks a batch that pins another
    /// batch's memory or forces a copy-on-write on the source's reuse).
    pub fn detach_shared(&mut self) {
        match self {
            ColumnBatch::Text { data, bounds } if Arc::strong_count(data) > 1 => {
                *data = empty_shared_text();
                bounds.clear();
                bounds.push(0);
            }
            ColumnBatch::TextSpans { data, spans } => {
                spans.clear();
                *data = empty_shared_text();
            }
            _ => {}
        }
    }

    /// Rewrites a spans view as an owned packed text batch (same rows).
    fn materialize_text(&mut self) {
        if let ColumnBatch::TextSpans { data, spans } = self {
            let total: usize = spans.iter().map(|&(a, b)| (b - a) as usize).sum();
            let mut owned = String::with_capacity(total);
            let mut bounds = bounds_with_capacity(spans.len());
            for &(a, b) in spans.iter() {
                owned.push_str(&data[a as usize..b as usize]);
                bounds.push(owned.len() as u32);
            }
            *self = ColumnBatch::Text {
                data: Arc::new(owned),
                bounds,
            };
        }
    }

    /// Appends a token row through `fill`, which appends the row's spans to
    /// the shared buffer (spans relative to the row's own text).
    pub fn push_tokens_with(&mut self, fill: impl FnOnce(&mut Vec<Span>)) -> Result<()> {
        match self {
            ColumnBatch::Tokens { spans, bounds } => {
                fill(spans);
                bounds.push(spans.len() as u32);
                Ok(())
            }
            other => Err(variant_err("tokens", other)),
        }
    }

    /// Appends a scalar row.
    pub fn push_scalar(&mut self, x: f32) -> Result<()> {
        match self {
            ColumnBatch::Scalar(v) => {
                v.push(x);
                Ok(())
            }
            other => Err(variant_err("scalar", other)),
        }
    }

    /// Appends a zero-filled dense row and returns it for writing.
    pub fn push_dense_row(&mut self) -> Result<&mut [f32]> {
        match self {
            ColumnBatch::Dense { data, dim, rows } => {
                let start = *rows * *dim;
                data.resize(start + *dim, 0.0);
                *rows += 1;
                Ok(&mut data[start..])
            }
            other => Err(variant_err("dense", other)),
        }
    }

    /// Clears the batch and resizes to `rows` zero-filled dense rows,
    /// returning the whole row-major matrix (for kernels that traverse the
    /// chunk flat).
    pub fn fill_dense(&mut self, rows: usize) -> Result<&mut [f32]> {
        match self {
            ColumnBatch::Dense { data, dim, rows: r } => {
                data.clear();
                data.resize(rows * *dim, 0.0);
                *r = rows;
                Ok(data)
            }
            other => Err(variant_err("dense", other)),
        }
    }

    /// Clears the batch and resizes to `rows` zeroed scalar rows, returning
    /// the flat storage.
    pub fn fill_scalar(&mut self, rows: usize) -> Result<&mut [f32]> {
        match self {
            ColumnBatch::Scalar(v) => {
                v.clear();
                v.resize(rows, 0.0);
                Ok(v)
            }
            other => Err(variant_err("scalar", other)),
        }
    }

    /// Borrows the flat scalar storage, or `None` for other variants.
    pub fn as_scalars(&self) -> Option<&[f32]> {
        match self {
            ColumnBatch::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the flat dense storage `(data, dim, rows)`, or `None`.
    pub fn as_dense(&self) -> Option<(&[f32], usize, usize)> {
        match self {
            ColumnBatch::Dense { data, dim, rows } => Some((data, *dim, *rows)),
            _ => None,
        }
    }

    /// Appends a [`Vector`] as one row (copying). The vector's variant must
    /// match the batch's column type; used to assemble batches from
    /// per-record values (tests, harnesses, source loading).
    pub fn push_vector(&mut self, v: &Vector) -> Result<()> {
        self.push_row(ColRef::from_vector(v))
    }

    /// Appends one borrowed row (copying). The row's variant must match the
    /// batch's column type. This is the scatter half of the chunk-level
    /// cache probe: cached hit vectors and computed miss-batch rows are
    /// recombined into one output batch in original row order.
    pub fn push_row(&mut self, row: ColRef<'_>) -> Result<()> {
        match (self, row) {
            (b @ (ColumnBatch::Text { .. } | ColumnBatch::TextSpans { .. }), ColRef::Text(s)) => {
                b.push_text(s)
            }
            (b @ ColumnBatch::Tokens { .. }, ColRef::Tokens(t)) => {
                b.push_tokens_with(|spans| spans.extend_from_slice(t))
            }
            (ColumnBatch::Dense { data, dim, rows }, ColRef::Dense(d)) if d.len() == *dim => {
                data.extend_from_slice(d);
                *rows += 1;
                Ok(())
            }
            (
                ColumnBatch::Sparse {
                    bounds,
                    indices,
                    values,
                    dim,
                },
                ColRef::Sparse {
                    indices: ri,
                    values: rv,
                    dim: rd,
                },
            ) if rd == *dim => {
                indices.extend_from_slice(ri);
                values.extend_from_slice(rv);
                bounds.push(indices.len() as u32);
                Ok(())
            }
            (b @ ColumnBatch::Scalar(_), ColRef::Scalar(x)) => b.push_scalar(x),
            (b, row) => Err(DataError::Runtime(format!(
                "cannot push {:?} row into {:?} batch",
                row.column_type(),
                b.column_type()
            ))),
        }
    }

    /// Gathers the selected `rows` (by index, in the given order) into
    /// `out`, which must share this batch's column type; `out` is cleared
    /// first. This is the selection half of the chunk-level cache probe:
    /// cache-miss rows are gathered into a sub-batch, batch-evaluated, and
    /// scattered back via [`Self::push_row`].
    pub fn gather(&self, rows: &[usize], out: &mut Self) -> Result<()> {
        if out.column_type() != self.column_type() {
            return Err(DataError::Runtime(format!(
                "gather into {:?} batch from {:?} batch",
                out.column_type(),
                self.column_type()
            )));
        }
        out.reset();
        let have = self.rows();
        for &r in rows {
            if r >= have {
                return Err(DataError::Runtime(format!("gather row {r} out of {have}")));
            }
            out.push_row(self.row(r))?;
        }
        Ok(())
    }

    /// Appends rows `start..end` of `src` (which must share this batch's
    /// column type) as a bulk copy: one memcpy-style extend per backing
    /// buffer instead of one [`Self::push_row`] per row.
    ///
    /// This is how a chunk's working-set slot 0 is filled from a
    /// wire-assembled request batch — the per-record staging copy the
    /// `Record` path pays becomes a handful of flat extends.
    pub fn extend_from_range(&mut self, src: &Self, start: usize, end: usize) -> Result<()> {
        if start > end || end > src.rows() {
            return Err(DataError::Runtime(format!(
                "row range {start}..{end} out of {} rows",
                src.rows()
            )));
        }
        // A spans destination can't splice foreign bytes; fold it into a
        // packed buffer first (cold: bulk fills target freshly-reset slots).
        if matches!(self, ColumnBatch::TextSpans { .. })
            && matches!(
                src,
                ColumnBatch::Text { .. } | ColumnBatch::TextSpans { .. }
            )
        {
            self.materialize_text();
        }
        match (self, src) {
            (
                ColumnBatch::Text { data, bounds },
                ColumnBatch::Text {
                    data: sdata,
                    bounds: sbounds,
                },
            ) => {
                let (a, b) = (sbounds[start] as usize, sbounds[end] as usize);
                let base = (data.len() as u32).wrapping_sub(sbounds[start]);
                Arc::make_mut(data).push_str(&sdata[a..b]);
                bounds.extend(
                    sbounds[start + 1..=end]
                        .iter()
                        .map(|&x| x.wrapping_add(base)),
                );
                Ok(())
            }
            (ColumnBatch::Text { data, bounds }, ColumnBatch::TextSpans { data: sdata, spans }) => {
                let owned = Arc::make_mut(data);
                for &(a, b) in &spans[start..end] {
                    owned.push_str(&sdata[a as usize..b as usize]);
                    bounds.push(owned.len() as u32);
                }
                Ok(())
            }
            (
                ColumnBatch::Tokens { spans, bounds },
                ColumnBatch::Tokens {
                    spans: sspans,
                    bounds: sbounds,
                },
            ) => {
                let (a, b) = (sbounds[start] as usize, sbounds[end] as usize);
                let base = (spans.len() as u32).wrapping_sub(sbounds[start]);
                spans.extend_from_slice(&sspans[a..b]);
                bounds.extend(
                    sbounds[start + 1..=end]
                        .iter()
                        .map(|&x| x.wrapping_add(base)),
                );
                Ok(())
            }
            (
                ColumnBatch::Dense { data, dim, rows },
                ColumnBatch::Dense {
                    data: sdata,
                    dim: sdim,
                    ..
                },
            ) if dim == sdim => {
                data.extend_from_slice(&sdata[start * *dim..end * *dim]);
                *rows += end - start;
                Ok(())
            }
            (
                ColumnBatch::Sparse {
                    bounds,
                    indices,
                    values,
                    dim,
                },
                ColumnBatch::Sparse {
                    bounds: sbounds,
                    indices: sindices,
                    values: svalues,
                    dim: sdim,
                },
            ) if dim == sdim => {
                let (a, b) = (sbounds[start] as usize, sbounds[end] as usize);
                let base = (indices.len() as u32).wrapping_sub(sbounds[start]);
                indices.extend_from_slice(&sindices[a..b]);
                values.extend_from_slice(&svalues[a..b]);
                bounds.extend(
                    sbounds[start + 1..=end]
                        .iter()
                        .map(|&x| x.wrapping_add(base)),
                );
                Ok(())
            }
            (ColumnBatch::Scalar(v), ColumnBatch::Scalar(sv)) => {
                v.extend_from_slice(&sv[start..end]);
                Ok(())
            }
            (dst, src) => Err(DataError::Runtime(format!(
                "cannot extend {:?} batch from {:?} batch",
                dst.column_type(),
                src.column_type()
            ))),
        }
    }

    /// Opens the next sparse row for accumulation. Rows must be finished
    /// with [`SparseRowMut::finish`] (or by drop) before the next row opens.
    pub fn begin_sparse_row(&mut self) -> Result<SparseRowMut<'_>> {
        match self {
            ColumnBatch::Sparse {
                bounds,
                indices,
                values,
                dim,
            } => Ok(SparseRowMut {
                start: *bounds.last().expect("bounds never empty") as usize,
                bounds,
                indices,
                values,
                dim: *dim,
                sorted_unique: true,
            }),
            other => Err(variant_err("sparse", other)),
        }
    }
}

fn bounds_with_capacity(rows: usize) -> Vec<u32> {
    let mut b = Vec::with_capacity(rows + 1);
    b.push(0);
    b
}

fn variant_err(want: &str, got: &ColumnBatch) -> DataError {
    DataError::Runtime(format!(
        "column batch variant mismatch: want {want}, got {:?}",
        got.column_type()
    ))
}

/// An open sparse row at the tail of a CSR batch.
///
/// [`SparseRowMut::accumulate`] has the exact semantics of
/// [`Vector::sparse_accumulate`] restricted to the open row: after the row
/// closes, indices are sorted and unique, and duplicate indices *sum* in
/// arrival order — which is what keeps batch featurizer output
/// bitwise-identical to the per-record path.
///
/// Internally the row is built *bulk-style*: accumulations append unsorted
/// to the CSR tail in `O(1)`, and closing the row runs one stable
/// sort-and-merge pass. Arrival order is the sort's tie-break for equal
/// indices, so the left-to-right merge sums duplicates in exactly the order
/// the old per-accumulate sorted insertion did — same bits, without the
/// `O(nnz²)` element shifting on high-nnz featurizer rows.
#[derive(Debug)]
pub struct SparseRowMut<'a> {
    bounds: &'a mut Vec<u32>,
    indices: &'a mut Vec<u32>,
    values: &'a mut Vec<f32>,
    start: usize,
    dim: u32,
    /// Tail is sorted strictly-increasing so far (fast path: nothing to do
    /// at close).
    sorted_unique: bool,
}

/// Rows at or below this nnz sort-and-merge in place with a stable
/// insertion sort; larger rows go through the thread-local scratch.
const SMALL_ROW_SORT: usize = 32;

std::thread_local! {
    /// Reusable `(index, arrival, value)` scratch for large-row
    /// sort-and-merge, so closing a high-nnz row stays allocation-free
    /// after warm-up.
    static ROW_SORT_SCRATCH: std::cell::RefCell<Vec<(u32, u32, f32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl SparseRowMut<'_> {
    /// Adds `(index, value)` into the open row, summing duplicates when the
    /// row closes.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim` — featurizer kernels construct their
    /// outputs, so a mismatch is an internal bug (same contract as
    /// [`Vector::sparse_accumulate`]).
    pub fn accumulate(&mut self, index: u32, value: f32) {
        assert!(
            index < self.dim,
            "sparse index {index} out of dim {}",
            self.dim
        );
        if self.sorted_unique
            && self.indices.len() > self.start
            && index <= self.indices[self.indices.len() - 1]
        {
            self.sorted_unique = false;
        }
        self.indices.push(index);
        self.values.push(value);
    }

    /// Logical dimensionality of the row.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Closes the row (recording its bound). Dropping without calling this
    /// closes the row too; `finish` exists to make the close explicit at
    /// call sites.
    pub fn finish(self) {}

    /// Sorts the unsorted tail stably by index and merges duplicate indices
    /// by summing values in arrival order.
    fn sort_and_merge(&mut self) {
        let start = self.start;
        let k = self.indices.len() - start;
        if k <= SMALL_ROW_SORT {
            // Stable in-place insertion sort over the parallel tails.
            for i in start + 1..self.indices.len() {
                let (idx, val) = (self.indices[i], self.values[i]);
                let mut j = i;
                while j > start && self.indices[j - 1] > idx {
                    self.indices[j] = self.indices[j - 1];
                    self.values[j] = self.values[j - 1];
                    j -= 1;
                }
                self.indices[j] = idx;
                self.values[j] = val;
            }
        } else {
            ROW_SORT_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                scratch.clear();
                scratch.extend(
                    self.indices[start..]
                        .iter()
                        .zip(&self.values[start..])
                        .enumerate()
                        .map(|(seq, (&i, &v))| (i, seq as u32, v)),
                );
                // Arrival order is the tie-break, so this unstable sort is
                // effectively stable on (index, arrival).
                scratch.sort_unstable_by_key(|&(i, seq, _)| (i, seq));
                for (slot, &(i, _, v)) in scratch.iter().enumerate() {
                    self.indices[start + slot] = i;
                    self.values[start + slot] = v;
                }
            });
        }
        // Merge runs of equal indices left to right (arrival order).
        let mut write = start;
        for read in start..self.indices.len() {
            if write > start && self.indices[read] == self.indices[write - 1] {
                self.values[write - 1] += self.values[read];
            } else {
                self.indices[write] = self.indices[read];
                self.values[write] = self.values[read];
                write += 1;
            }
        }
        self.indices.truncate(write);
        self.values.truncate(write);
    }
}

impl Drop for SparseRowMut<'_> {
    fn drop(&mut self) {
        if !self.sorted_unique {
            self.sort_and_merge();
        }
        self.bounds.push(self.indices.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_type_round_trips_column_type() {
        for ty in [
            ColumnType::Text,
            ColumnType::TokenList,
            ColumnType::F32Dense { len: 7 },
            ColumnType::F32Sparse { len: 9 },
            ColumnType::F32Scalar,
        ] {
            let b = ColumnBatch::with_type(ty);
            assert_eq!(b.column_type(), ty);
            assert_eq!(b.rows(), 0);
            assert!(b.is_empty());
        }
    }

    #[test]
    fn text_rows_pack_and_slice() {
        let mut b = ColumnBatch::with_type(ColumnType::Text);
        b.push_text("hello").unwrap();
        b.push_text("").unwrap();
        b.push_text("world").unwrap();
        assert_eq!(b.rows(), 3);
        assert!(matches!(b.row(0), ColRef::Text("hello")));
        assert!(matches!(b.row(1), ColRef::Text("")));
        assert!(matches!(b.row(2), ColRef::Text("world")));
    }

    #[test]
    fn token_rows_pack_behind_bounds() {
        let mut b = ColumnBatch::with_type(ColumnType::TokenList);
        b.push_tokens_with(|s| {
            s.push(Span::new(0, 2));
            s.push(Span::new(3, 5));
        })
        .unwrap();
        b.push_tokens_with(|_| {}).unwrap();
        b.push_tokens_with(|s| s.push(Span::new(1, 4))).unwrap();
        assert_eq!(b.rows(), 3);
        match b.row(0) {
            ColRef::Tokens(t) => assert_eq!(t.len(), 2),
            _ => unreachable!(),
        }
        match b.row(1) {
            ColRef::Tokens(t) => assert!(t.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn dense_rows_are_contiguous() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Dense { len: 3 });
        b.push_dense_row()
            .unwrap()
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        b.push_dense_row()
            .unwrap()
            .copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(b.rows(), 2);
        let (data, dim, rows) = b.as_dense().unwrap();
        assert_eq!((dim, rows), (3, 2));
        assert_eq!(data, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        match b.row(1) {
            ColRef::Dense(r) => assert_eq!(r, &[4.0, 5.0, 6.0]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn fill_dense_resizes_and_zeroes() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Dense { len: 2 });
        b.push_dense_row().unwrap()[0] = 9.0;
        let m = b.fill_dense(3).unwrap();
        assert_eq!(m.len(), 6);
        assert!(m.iter().all(|&x| x == 0.0));
        assert_eq!(b.rows(), 3);
    }

    #[test]
    fn sparse_rows_accumulate_like_vector() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Sparse { len: 10 });
        let mut row = b.begin_sparse_row().unwrap();
        row.accumulate(5, 1.0);
        row.accumulate(2, 2.0);
        row.accumulate(5, 0.5);
        row.finish();
        let mut row = b.begin_sparse_row().unwrap();
        row.accumulate(7, 3.0);
        row.finish();
        assert_eq!(b.rows(), 2);

        // Reference: the per-record accumulate on a Vector.
        let mut v = Vector::with_type(ColumnType::F32Sparse { len: 10 });
        v.sparse_accumulate(5, 1.0);
        v.sparse_accumulate(2, 2.0);
        v.sparse_accumulate(5, 0.5);
        match (b.row(0), &v) {
            (
                ColRef::Sparse {
                    indices, values, ..
                },
                Vector::Sparse {
                    indices: vi,
                    values: vv,
                    ..
                },
            ) => {
                assert_eq!(indices, &vi[..]);
                assert_eq!(values, &vv[..]);
            }
            _ => unreachable!(),
        }
        match b.row(1) {
            ColRef::Sparse {
                indices, values, ..
            } => {
                assert_eq!(indices, &[7]);
                assert_eq!(values, &[3.0]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "out of dim")]
    fn sparse_row_bounds_checked() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Sparse { len: 4 });
        let mut row = b.begin_sparse_row().unwrap();
        row.accumulate(4, 1.0);
    }

    #[test]
    fn scalar_rows() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Scalar);
        b.push_scalar(1.5).unwrap();
        b.push_scalar(-2.0).unwrap();
        assert_eq!(b.as_scalars().unwrap(), &[1.5, -2.0]);
        assert!(matches!(b.row(1), ColRef::Scalar(x) if x == -2.0));
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut b = ColumnBatch::with_type(ColumnType::Text);
        b.push_text("a fairly long review body").unwrap();
        let cap = match &b {
            ColumnBatch::Text { data, .. } => data.capacity(),
            _ => unreachable!(),
        };
        b.reset();
        assert_eq!(b.rows(), 0);
        match &b {
            ColumnBatch::Text { data, bounds } => {
                assert_eq!(data.capacity(), cap);
                assert_eq!(bounds, &[0]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn variant_mismatch_is_error() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Scalar);
        assert!(b.push_text("x").is_err());
        assert!(b.push_dense_row().is_err());
        assert!(b.begin_sparse_row().is_err());
        let mut d = ColumnBatch::with_type(ColumnType::F32Dense { len: 1 });
        assert!(d.push_scalar(0.0).is_err());
    }

    #[test]
    fn col_ref_feature_reads() {
        let r = ColRef::Dense(&[1.0, 2.0]);
        assert_eq!(r.feature(1), 2.0);
        assert_eq!(r.feature(9), 0.0);
        let s = ColRef::Sparse {
            indices: &[3],
            values: &[7.0],
            dim: 8,
        };
        assert_eq!(s.feature(3), 7.0);
        assert_eq!(s.feature(4), 0.0);
        assert_eq!(ColRef::Scalar(5.0).feature(0), 5.0);
        assert_eq!(ColRef::Text("x").feature(0), 0.0);
    }

    #[test]
    fn gather_selects_rows_in_order_for_every_variant() {
        // Build a 3-row batch per variant, gather rows [2, 0], and check
        // the sub-batch holds exactly those rows in that order.
        let mut text = ColumnBatch::with_type(ColumnType::Text);
        for s in ["a", "bb", "ccc"] {
            text.push_text(s).unwrap();
        }
        let mut tokens = ColumnBatch::with_type(ColumnType::TokenList);
        for n in [1usize, 0, 2] {
            tokens
                .push_tokens_with(|s| s.extend((0..n).map(|i| Span::new(i as u32, i as u32 + 1))))
                .unwrap();
        }
        let mut dense = ColumnBatch::with_type(ColumnType::F32Dense { len: 2 });
        for r in 0..3 {
            dense
                .push_dense_row()
                .unwrap()
                .copy_from_slice(&[r as f32, -(r as f32)]);
        }
        let mut sparse = ColumnBatch::with_type(ColumnType::F32Sparse { len: 8 });
        for r in 0..3u32 {
            let mut row = sparse.begin_sparse_row().unwrap();
            row.accumulate(r, r as f32 + 1.0);
            row.finish();
        }
        let mut scalar = ColumnBatch::with_type(ColumnType::F32Scalar);
        for r in 0..3 {
            scalar.push_scalar(r as f32 * 10.0).unwrap();
        }
        for b in [&text, &tokens, &dense, &sparse, &scalar] {
            let mut sub = ColumnBatch::with_type(b.column_type());
            b.gather(&[2, 0], &mut sub).unwrap();
            assert_eq!(sub.rows(), 2);
            for (j, &r) in [2usize, 0].iter().enumerate() {
                assert_eq!(
                    format!("{:?}", sub.row(j)),
                    format!("{:?}", b.row(r)),
                    "{:?} gathered row {j}",
                    b.column_type()
                );
            }
        }
    }

    #[test]
    fn gather_clears_stale_rows_and_handles_empty_selection() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Scalar);
        b.push_scalar(1.0).unwrap();
        let mut sub = ColumnBatch::with_type(ColumnType::F32Scalar);
        sub.push_scalar(9.0).unwrap();
        b.gather(&[], &mut sub).unwrap();
        assert_eq!(sub.rows(), 0);
    }

    #[test]
    fn gather_rejects_type_mismatch_and_out_of_range() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Scalar);
        b.push_scalar(1.0).unwrap();
        let mut wrong = ColumnBatch::with_type(ColumnType::Text);
        assert!(b.gather(&[0], &mut wrong).is_err());
        let mut sub = ColumnBatch::with_type(ColumnType::F32Scalar);
        assert!(b.gather(&[1], &mut sub).is_err());
    }

    #[test]
    fn push_row_round_trips_through_to_vector() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Sparse { len: 4 });
        let mut row = b.begin_sparse_row().unwrap();
        row.accumulate(1, 2.0);
        row.accumulate(3, -1.0);
        row.finish();
        let v = b.row(0).to_vector();
        let mut b2 = ColumnBatch::with_type(ColumnType::F32Sparse { len: 4 });
        b2.push_row(ColRef::from_vector(&v)).unwrap();
        assert_eq!(format!("{:?}", b2.row(0)), format!("{:?}", b.row(0)));
        // Variant mismatch surfaces as an error, not a corrupt batch.
        let mut scalars = ColumnBatch::with_type(ColumnType::F32Scalar);
        assert!(scalars.push_row(ColRef::from_vector(&v)).is_err());
        assert_eq!(scalars.rows(), 0);
    }

    #[test]
    fn extend_from_range_matches_per_row_push_for_every_variant() {
        let mut text = ColumnBatch::with_type(ColumnType::Text);
        for s in ["a", "", "ccc", "dd"] {
            text.push_text(s).unwrap();
        }
        let mut tokens = ColumnBatch::with_type(ColumnType::TokenList);
        for n in [2usize, 0, 1, 3] {
            tokens
                .push_tokens_with(|s| s.extend((0..n).map(|i| Span::new(i as u32, i as u32 + 2))))
                .unwrap();
        }
        let mut dense = ColumnBatch::with_type(ColumnType::F32Dense { len: 2 });
        for r in 0..4 {
            dense
                .push_dense_row()
                .unwrap()
                .copy_from_slice(&[r as f32, -(r as f32)]);
        }
        let mut sparse = ColumnBatch::with_type(ColumnType::F32Sparse { len: 8 });
        for r in 0..4u32 {
            let mut row = sparse.begin_sparse_row().unwrap();
            row.accumulate(r, r as f32 + 1.0);
            row.accumulate(r + 4, -1.0);
            row.finish();
        }
        let mut scalar = ColumnBatch::with_type(ColumnType::F32Scalar);
        for r in 0..4 {
            scalar.push_scalar(r as f32 * 10.0).unwrap();
        }
        for src in [&text, &tokens, &dense, &sparse, &scalar] {
            for (start, end) in [(0, 4), (1, 3), (2, 2), (3, 4)] {
                // Destination pre-populated with one row so the rebase
                // offsets are exercised against a non-empty tail.
                let mut bulk = ColumnBatch::with_type(src.column_type());
                let mut per_row = ColumnBatch::with_type(src.column_type());
                bulk.push_row(src.row(0)).unwrap();
                per_row.push_row(src.row(0)).unwrap();
                bulk.extend_from_range(src, start, end).unwrap();
                for r in start..end {
                    per_row.push_row(src.row(r)).unwrap();
                }
                assert_eq!(
                    bulk,
                    per_row,
                    "{:?} range {start}..{end}",
                    src.column_type()
                );
            }
        }
    }

    #[test]
    fn extend_from_range_rejects_bad_ranges_and_types() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Scalar);
        b.push_scalar(1.0).unwrap();
        let mut out = ColumnBatch::with_type(ColumnType::F32Scalar);
        assert!(out.extend_from_range(&b, 0, 2).is_err());
        assert!(out.extend_from_range(&b, 1, 0).is_err());
        let mut wrong = ColumnBatch::with_type(ColumnType::Text);
        assert!(wrong.extend_from_range(&b, 0, 1).is_err());
        let narrow = ColumnBatch::with_type(ColumnType::F32Dense { len: 2 });
        let mut wide = ColumnBatch::with_type(ColumnType::F32Dense { len: 3 });
        assert!(wide.extend_from_range(&narrow, 0, 0).is_err());
    }

    #[test]
    fn bulk_sparse_build_matches_per_record_accumulate_bitwise() {
        // Pseudo-random high-nnz rows with duplicates: the bulk
        // sort-and-merge close must produce exactly the bits the
        // per-record sorted-insertion path (Vector::sparse_accumulate)
        // produces, including arrival-order duplicate summation.
        let dim = 64u32;
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut batch = ColumnBatch::with_type(ColumnType::F32Sparse { len: dim as usize });
        let mut refs: Vec<Vector> = Vec::new();
        for row_len in [0usize, 1, 5, 31, 33, 200] {
            let pairs: Vec<(u32, f32)> = (0..row_len)
                .map(|_| {
                    let r = next();
                    ((r % u64::from(dim)) as u32, (r >> 32) as f32 / 1e9 - 2.0)
                })
                .collect();
            let mut row = batch.begin_sparse_row().unwrap();
            let mut v = Vector::with_type(ColumnType::F32Sparse { len: dim as usize });
            for &(i, x) in &pairs {
                row.accumulate(i, x);
                v.sparse_accumulate(i, x);
            }
            row.finish();
            refs.push(v);
        }
        for (r, v) in refs.iter().enumerate() {
            let (bi, bv) = match batch.row(r) {
                ColRef::Sparse {
                    indices, values, ..
                } => (indices, values),
                _ => unreachable!(),
            };
            let (vi, vv) = match v {
                Vector::Sparse {
                    indices, values, ..
                } => (indices, values),
                _ => unreachable!(),
            };
            assert_eq!(bi, &vi[..], "row {r} indices");
            assert_eq!(bv.len(), vv.len(), "row {r} nnz");
            for (a, b) in bv.iter().zip(vv) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r} value bits");
            }
        }
    }

    #[test]
    fn sorted_append_fast_path_skips_nothing() {
        let mut b = ColumnBatch::with_type(ColumnType::F32Sparse { len: 10 });
        let mut row = b.begin_sparse_row().unwrap();
        for i in [0u32, 3, 7, 9] {
            row.accumulate(i, i as f32);
        }
        row.finish();
        match b.row(0) {
            ColRef::Sparse {
                indices, values, ..
            } => {
                assert_eq!(indices, &[0, 3, 7, 9]);
                assert_eq!(values, &[0.0, 3.0, 7.0, 9.0]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn text_spans_borrow_rows_zero_copy() {
        let mut src = ColumnBatch::with_type(ColumnType::Text);
        src.push_text("alpha,beta").unwrap();
        src.push_text("gamma,delta").unwrap();
        let shared = Arc::clone(src.shared_text().unwrap());
        let mut out = ColumnBatch::with_type(ColumnType::Text);
        {
            let spans = out.begin_text_spans(Arc::clone(&shared)).unwrap();
            spans.push((0, 5)); // "alpha"
            spans.push((16, 21)); // "delta"
        }
        assert_eq!(out.rows(), 2);
        assert_eq!(out.column_type(), ColumnType::Text);
        assert!(matches!(out.row(0), ColRef::Text("alpha")));
        assert!(matches!(out.row(1), ColRef::Text("delta")));
        // Zero-copy: the view shares the source allocation.
        assert!(Arc::ptr_eq(out.shared_text().unwrap(), &shared));
    }

    #[test]
    fn text_spans_survive_source_mutation_via_cow() {
        let mut src = ColumnBatch::with_type(ColumnType::Text);
        src.push_text("hello").unwrap();
        let mut view = ColumnBatch::with_type(ColumnType::Text);
        view.begin_text_spans(Arc::clone(src.shared_text().unwrap()))
            .unwrap()
            .push((0, 5));
        // Mutating the source after the view exists copies on write…
        src.push_text("world").unwrap();
        src.reset();
        src.push_text("other").unwrap();
        // …so the view still reads the bytes it was built over.
        assert!(matches!(view.row(0), ColRef::Text("hello")));
        assert!(matches!(src.row(0), ColRef::Text("other")));
    }

    #[test]
    fn text_spans_materialize_on_owned_push_and_reset() {
        let mut src = ColumnBatch::with_type(ColumnType::Text);
        src.push_text("abcdef").unwrap();
        let shared = Arc::clone(src.shared_text().unwrap());
        let mut view = ColumnBatch::with_type(ColumnType::Text);
        view.begin_text_spans(Arc::clone(&shared))
            .unwrap()
            .push((2, 4));
        // Owned push folds the view into a packed batch, preserving rows.
        view.push_text("xyz").unwrap();
        assert!(matches!(view, ColumnBatch::Text { .. }));
        assert!(matches!(view.row(0), ColRef::Text("cd")));
        assert!(matches!(view.row(1), ColRef::Text("xyz")));
        // A reset spans view lets go of its borrowed buffer.
        let mut view2 = ColumnBatch::with_type(ColumnType::Text);
        view2
            .begin_text_spans(Arc::clone(&shared))
            .unwrap()
            .push((0, 1));
        assert_eq!(Arc::strong_count(&shared), 3);
        view2.reset();
        assert_eq!(Arc::strong_count(&shared), 2);
        assert_eq!(view2.rows(), 0);
    }

    #[test]
    fn detach_shared_frees_both_sides() {
        let mut src = ColumnBatch::with_type(ColumnType::Text);
        src.push_text("payload").unwrap();
        let mut view = ColumnBatch::with_type(ColumnType::Text);
        view.begin_text_spans(Arc::clone(src.shared_text().unwrap()))
            .unwrap()
            .push((0, 7));
        // Detaching the source while a view borrows it drops the source's
        // handle (the view keeps the buffer alive).
        src.detach_shared();
        assert_eq!(src.rows(), 0);
        assert!(matches!(view.row(0), ColRef::Text("payload")));
        // Detaching the view clears the borrow entirely.
        view.detach_shared();
        assert_eq!(view.rows(), 0);
        // A source with no outstanding view keeps its rows on detach.
        let mut lone = ColumnBatch::with_type(ColumnType::Text);
        lone.push_text("kept").unwrap();
        lone.detach_shared();
        assert_eq!(lone.rows(), 1);
    }

    #[test]
    fn gather_and_extend_cover_text_spans() {
        let mut src = ColumnBatch::with_type(ColumnType::Text);
        for s in ["aa", "bb", "cc"] {
            src.push_text(s).unwrap();
        }
        let mut view = ColumnBatch::with_type(ColumnType::Text);
        {
            let spans = view
                .begin_text_spans(Arc::clone(src.shared_text().unwrap()))
                .unwrap();
            spans.extend_from_slice(&[(0, 2), (2, 4), (4, 6)]);
        }
        // extend_from_range with a spans source packs the selected rows.
        let mut packed = ColumnBatch::with_type(ColumnType::Text);
        packed.extend_from_range(&view, 1, 3).unwrap();
        assert!(matches!(packed.row(0), ColRef::Text("bb")));
        assert!(matches!(packed.row(1), ColRef::Text("cc")));
        // gather out of a spans batch works through the row interface.
        let mut sub = ColumnBatch::with_type(ColumnType::Text);
        view.gather(&[2, 0], &mut sub).unwrap();
        assert!(matches!(sub.row(0), ColRef::Text("cc")));
        assert!(matches!(sub.row(1), ColRef::Text("aa")));
    }

    #[test]
    fn heap_bytes_counts_capacity() {
        let mut b = ColumnBatch::with_capacity_hint(ColumnType::F32Dense { len: 4 }, 8, 0);
        assert!(b.heap_bytes() >= 8 * 4 * 4);
        b.reset();
        assert!(b.heap_bytes() >= 8 * 4 * 4);
    }
}
