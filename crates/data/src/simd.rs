//! Explicit SIMD kernels for the dense data plane.
//!
//! Auto-vectorization carried the dense `eval_batch` kernels through PR 1-5;
//! this module makes the vector shape explicit so it stops depending on the
//! optimizer's mood: every f32 reduction kernel (linear dots dense and
//! CSR-gather, PCA's centered dots, kmeans' squared distances) runs **8
//! strided partial-sum lanes** — lane `j` accumulates elements `j`, `j+8`,
//! `j+16`, … — followed by one **fixed sequential horizontal reduction**
//! over the lane array. The scalar fallback is restructured into exactly
//! the same lanes and the same reduction order, so the SIMD and scalar
//! paths are **bitwise-identical** (AVX2 `mul_ps`/`add_ps` are the same
//! correctly-rounded IEEE ops per lane as scalar `*`/`+`; FMA is
//! deliberately not used because fused rounding would break the contract).
//!
//! Dispatch is at runtime via `is_x86_feature_detected!` (AVX2 for the
//! 8-lane f32 kernels, SSE2 for the probe-table tag-group scan in
//! [`crate::probe`]), behind one process knob:
//!
//! * `PRETZEL_SIMD=0|off|false|scalar` in the environment forces the scalar
//!   fallback (how CI runs the whole test suite down the scalar path on any
//!   hardware);
//! * [`set_simd`] overrides the environment programmatically
//!   (`RuntimeConfig::simd` at the runtime layer; the ablation switch).
//!
//! On non-x86_64 hardware, or when AVX2 is absent, the scalar lanes are the
//! only path — same bits, lower throughput.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Partial-sum lanes per f32 reduction kernel (one AVX2 `__m256`).
pub const LANES: usize = 8;

/// Programmatic override: 0 = auto (environment + detection), 1 = forced
/// on (still requires hardware support), 2 = forced off.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Forces the SIMD paths on (`Some(true)`), off (`Some(false)`), or back
/// to the default environment + hardware dispatch (`None`). Forcing on
/// never engages SIMD on hardware without the required features — the knob
/// selects between bitwise-identical paths, never unsound ones.
pub fn set_simd(force: Option<bool>) {
    let v = match force {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    FORCE.store(v, Ordering::Relaxed);
}

/// The environment default, read once: `PRETZEL_SIMD=0|off|false|scalar`
/// disables, anything else (or unset) enables.
fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("PRETZEL_SIMD") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "scalar"
        ),
        Err(_) => true,
    })
}

#[inline]
fn knob_on() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

#[cfg(target_arch = "x86_64")]
fn hw_avx2() -> bool {
    static HW: OnceLock<bool> = OnceLock::new();
    *HW.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(not(target_arch = "x86_64"))]
fn hw_avx2() -> bool {
    false
}

/// True when the dense 8-lane f32 kernels dispatch to AVX2.
#[inline]
pub fn dense_simd() -> bool {
    knob_on() && hw_avx2()
}

/// True when the probe table's 16-wide tag-group chain scan dispatches to
/// SSE2 (baseline on x86_64, so this is just the knob there).
#[inline]
pub fn probe_simd() -> bool {
    cfg!(target_arch = "x86_64") && knob_on()
}

/// The fixed horizontal reduction: lanes summed left to right, starting
/// from `0.0` (matching the scalar kernels' accumulator initialization).
/// This order is part of the bitwise contract between the paths — and it
/// keeps short inputs (`n <= 8`, one element per lane) exactly equal to
/// the pre-SIMD sequential loops.
#[inline]
pub fn reduce_lanes(lanes: [f32; LANES]) -> f32 {
    let mut acc = 0.0f32;
    for v in lanes {
        acc += v;
    }
    acc
}

// ---------------------------------------------------------------------------
// Scalar lane-structured kernels (the always-available fallback and the
// bitwise reference; public so equivalence tests can pin SIMD against them).
// ---------------------------------------------------------------------------

/// Scalar 8-lane dot product of `a[i] * b[i]` over `min(len_a, len_b)`.
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let mut lanes = [0.0f32; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for j in 0..LANES {
            lanes[j] += a[i + j] * b[i + j];
        }
        i += LANES;
    }
    let mut j = 0;
    while i < n {
        lanes[j] += a[i] * b[i];
        i += 1;
        j += 1;
    }
    reduce_lanes(lanes)
}

/// Scalar 8-lane centered dot: `(x[i] - mean[i]) * w[i]` (PCA projection).
pub fn centered_dot_scalar(x: &[f32], mean: &[f32], w: &[f32]) -> f32 {
    let n = x.len().min(mean.len()).min(w.len());
    let mut lanes = [0.0f32; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for j in 0..LANES {
            lanes[j] += (x[i + j] - mean[i + j]) * w[i + j];
        }
        i += LANES;
    }
    let mut j = 0;
    while i < n {
        lanes[j] += (x[i] - mean[i]) * w[i];
        i += 1;
        j += 1;
    }
    reduce_lanes(lanes)
}

/// Scalar 8-lane squared Euclidean distance (kmeans).
pub fn squared_distance_scalar(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let mut lanes = [0.0f32; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for j in 0..LANES {
            let d = a[i + j] - b[i + j];
            lanes[j] += d * d;
        }
        i += LANES;
    }
    let mut j = 0;
    while i < n {
        let d = a[i] - b[i];
        lanes[j] += d * d;
        i += 1;
        j += 1;
    }
    reduce_lanes(lanes)
}

/// Scalar CSR-gather dot: `values[p] * seg[indices[p]]` in 8 strided
/// lanes. Out-of-range indices panic exactly like the pre-SIMD indexed
/// loop did.
pub fn sparse_dot_scalar(indices: &[u32], values: &[f32], seg: &[f32]) -> f32 {
    let n = indices.len().min(values.len());
    let mut lanes = [0.0f32; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for j in 0..LANES {
            lanes[j] += values[i + j] * seg[indices[i + j] as usize];
        }
        i += LANES;
    }
    let mut j = 0;
    while i < n {
        lanes[j] += values[i] * seg[indices[i] as usize];
        i += 1;
        j += 1;
    }
    reduce_lanes(lanes)
}

/// Scalar affine map `y[i] = (x[i] - offset[i]) * scale[i]` (Scaler).
/// Elementwise, so lane structure is irrelevant to the bits — the SIMD
/// twin is trivially identical.
pub fn scale_into_scalar(x: &[f32], offset: &[f32], scale: &[f32], y: &mut [f32]) {
    for i in 0..x.len() {
        y[i] = (x[i] - offset[i]) * scale[i];
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels: the same lanes, the same reduction, 8 elements per step.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{reduce_lanes, LANES};
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn spill(acc: __m256) -> [f32; LANES] {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        lanes
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            let w = _mm256_loadu_ps(b.as_ptr().add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(x, w));
            i += LANES;
        }
        let mut lanes = spill(acc);
        let mut j = 0;
        while i < n {
            lanes[j] += a[i] * b[i];
            i += 1;
            j += 1;
        }
        reduce_lanes(lanes)
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn centered_dot(x: &[f32], mean: &[f32], w: &[f32]) -> f32 {
        let n = x.len().min(mean.len()).min(w.len());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let mv = _mm256_loadu_ps(mean.as_ptr().add(i));
            let wv = _mm256_loadu_ps(w.as_ptr().add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_sub_ps(xv, mv), wv));
            i += LANES;
        }
        let mut lanes = spill(acc);
        let mut j = 0;
        while i < n {
            lanes[j] += (x[i] - mean[i]) * w[i];
            i += 1;
            j += 1;
        }
        reduce_lanes(lanes)
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
            i += LANES;
        }
        let mut lanes = spill(acc);
        let mut j = 0;
        while i < n {
            let d = a[i] - b[i];
            lanes[j] += d * d;
            i += 1;
            j += 1;
        }
        reduce_lanes(lanes)
    }

    /// # Safety
    /// Caller must have verified AVX2 support **and** that every index in
    /// `indices[..n]` is `< seg.len()` (the gather has no bounds checks).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sparse_dot_unchecked(indices: &[u32], values: &[f32], seg: &[f32]) -> f32 {
        let n = indices.len().min(values.len());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let idx = _mm256_loadu_si256(indices.as_ptr().add(i).cast());
            let gathered = _mm256_i32gather_ps::<4>(seg.as_ptr(), idx);
            let v = _mm256_loadu_ps(values.as_ptr().add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(v, gathered));
            i += LANES;
        }
        let mut lanes = spill(acc);
        let mut j = 0;
        while i < n {
            lanes[j] += values[i] * *seg.get_unchecked(indices[i] as usize);
            i += 1;
            j += 1;
        }
        reduce_lanes(lanes)
    }

    /// # Safety
    /// Caller must have verified AVX2 support and that `offset`, `scale`,
    /// and `y` are at least `x.len()` long.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_into(x: &[f32], offset: &[f32], scale: &[f32], y: &mut [f32]) {
        let n = x.len();
        let mut i = 0;
        while i + LANES <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let ov = _mm256_loadu_ps(offset.as_ptr().add(i));
            let sv = _mm256_loadu_ps(scale.as_ptr().add(i));
            _mm256_storeu_ps(
                y.as_mut_ptr().add(i),
                _mm256_mul_ps(_mm256_sub_ps(xv, ov), sv),
            );
            i += LANES;
        }
        while i < n {
            y[i] = (x[i] - offset[i]) * scale[i];
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatchers: the one entry point each operator kernel calls.
// ---------------------------------------------------------------------------

/// Dot product over `min(len_a, len_b)` elements: 8 strided lanes + fixed
/// reduction; AVX2 when available and enabled, bitwise-identical scalar
/// lanes otherwise.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if dense_simd() {
        // SAFETY: dense_simd() verified AVX2.
        return unsafe { avx2::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// Centered dot product `(x - mean) · w` (PCA projection row kernel).
#[inline]
pub fn centered_dot(x: &[f32], mean: &[f32], w: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if dense_simd() {
        // SAFETY: dense_simd() verified AVX2.
        return unsafe { avx2::centered_dot(x, mean, w) };
    }
    centered_dot_scalar(x, mean, w)
}

/// Squared Euclidean distance (kmeans distance row kernel).
#[inline]
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if dense_simd() {
        // SAFETY: dense_simd() verified AVX2.
        return unsafe { avx2::squared_distance(a, b) };
    }
    squared_distance_scalar(a, b)
}

/// CSR-gather dot product against a dense weight segment. The AVX2 path
/// validates the whole index set in one cheap (auto-vectorizing) max scan
/// and then gathers without per-element bounds checks; any out-of-range
/// index falls back to the scalar kernel, which panics exactly like the
/// pre-SIMD indexed loop.
#[inline]
pub fn sparse_dot(indices: &[u32], values: &[f32], seg: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if dense_simd() && seg.len() <= i32::MAX as usize {
        let n = indices.len().min(values.len());
        let mut max = 0u32;
        for &i in &indices[..n] {
            max = max.max(i);
        }
        if n == 0 || (max as usize) < seg.len() {
            // SAFETY: dense_simd() verified AVX2; every index < seg.len().
            return unsafe { avx2::sparse_dot_unchecked(indices, values, seg) };
        }
    }
    sparse_dot_scalar(indices, values, seg)
}

/// Affine per-dimension map `y = (x - offset) * scale` (Scaler row
/// kernel). Elementwise, so both paths are trivially bitwise-identical.
#[inline]
pub fn scale_into(x: &[f32], offset: &[f32], scale: &[f32], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if dense_simd() && offset.len() >= x.len() && scale.len() >= x.len() && y.len() >= x.len() {
        // SAFETY: dense_simd() verified AVX2; lengths checked above.
        return unsafe { avx2::scale_into(x, offset, scale, y) };
    }
    scale_into_scalar(x, offset, scale, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::splitmix64;

    fn vecf(seed: u64, n: usize) -> Vec<f32> {
        let mut h = seed;
        (0..n)
            .map(|_| {
                h = splitmix64(h);
                ((h % 2000) as f32 - 1000.0) / 97.0
            })
            .collect()
    }

    const DIMS: [usize; 10] = [0, 1, 3, 7, 8, 9, 16, 31, 100, 1000];

    #[test]
    fn dispatch_matches_scalar_lanes_bitwise() {
        for &n in &DIMS {
            let a = vecf(0xa + n as u64, n);
            let b = vecf(0xb + n as u64, n);
            assert_eq!(dot(&a, &b).to_bits(), dot_scalar(&a, &b).to_bits(), "n={n}");
            assert_eq!(
                centered_dot(&a, &b, &a).to_bits(),
                centered_dot_scalar(&a, &b, &a).to_bits(),
                "n={n}"
            );
            assert_eq!(
                squared_distance(&a, &b).to_bits(),
                squared_distance_scalar(&a, &b).to_bits(),
                "n={n}"
            );
            let mut y1 = vec![0.0f32; n];
            let mut y2 = vec![0.0f32; n];
            scale_into(&a, &b, &a, &mut y1);
            scale_into_scalar(&a, &b, &a, &mut y2);
            assert_eq!(
                y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn sparse_dot_matches_scalar_bitwise() {
        for &n in &DIMS {
            let seg = vecf(0x5e9 + n as u64, 512);
            let values = vecf(0x7a1 + n as u64, n);
            let mut h = 0x1d1 + n as u64;
            let indices: Vec<u32> = (0..n)
                .map(|_| {
                    h = splitmix64(h);
                    (h % 512) as u32
                })
                .collect();
            assert_eq!(
                sparse_dot(&indices, &values, &seg).to_bits(),
                sparse_dot_scalar(&indices, &values, &seg).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn short_inputs_reduce_exactly_like_sequential_sums() {
        // One element per lane + sequential reduction == the pre-SIMD
        // sequential loop for n <= LANES; this is what keeps small-dim
        // golden scores unchanged.
        let a = [1.0f32, -2.0, 0.5, 3.0];
        let b = [1.0f32, 1.0, 2.0, 0.0];
        let sequential: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        assert_eq!(dot_scalar(&a, &b).to_bits(), sequential.to_bits());
    }

    #[test]
    fn forced_scalar_knob_switches_dispatch() {
        set_simd(Some(false));
        assert!(!dense_simd());
        assert!(!probe_simd());
        set_simd(Some(true));
        assert_eq!(dense_simd(), hw_avx2());
        set_simd(None);
    }

    #[test]
    fn truncating_zip_semantics_preserved() {
        // Mismatched lengths truncate like the old iterator zips did.
        let a = vecf(1, 20);
        let b = vecf(2, 13);
        assert_eq!(dot(&a, &b).to_bits(), dot_scalar(&a[..13], &b).to_bits());
    }
}
