//! Counting global allocator for memory experiments.
//!
//! The paper's Figure 8 reports cumulative memory while loading 250 models
//! under four configurations. The authors read process RSS; we instead wrap
//! the system allocator with [`CountingAlloc`] and report *live heap bytes*,
//! which is deterministic, immune to allocator slack, and captures exactly
//! the effect being measured (parameter dedup in the Object Store vs
//! per-container copies).
//!
//! Benchmark binaries install the allocator with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pretzel_data::alloc_meter::CountingAlloc = CountingAlloc::new();
//! ```
//!
//! and then bracket phases with [`MemoryScope`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] while tracking live bytes.
///
/// Counter updates use relaxed atomics: the counters are monotonic telemetry,
/// not synchronization, and the memory experiments read them from quiescent
/// points (after joins).
pub struct CountingAlloc {
    _private: (),
}

impl CountingAlloc {
    /// Creates the allocator (const, so it can be a `static`).
    pub const fn new() -> Self {
        CountingAlloc { _private: () }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    // Update the peak with a CAS loop; contention here is rare and bounded.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: all methods forward to `System`, which satisfies the `GlobalAlloc`
// contract; the bookkeeping adjusts atomics only and never touches the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        // SAFETY: forwarded verbatim; `ptr` came from `System.alloc` with
        // the same layout, per the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim under the caller's contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes currently tracked.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start / last reset.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Total number of allocation calls observed.
pub fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// Resets the peak to the current live value.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Brackets a phase and reports the live-bytes delta across it.
///
/// Only meaningful in binaries that installed [`CountingAlloc`]; elsewhere
/// the deltas are zero.
#[derive(Debug)]
pub struct MemoryScope {
    start_live: usize,
    start_allocs: usize,
}

impl Default for MemoryScope {
    fn default() -> Self {
        Self::begin()
    }
}

impl MemoryScope {
    /// Starts measuring.
    pub fn begin() -> Self {
        MemoryScope {
            start_live: live_bytes(),
            start_allocs: alloc_count(),
        }
    }

    /// Live bytes gained (or freed, negative) since `begin`.
    pub fn delta_bytes(&self) -> isize {
        live_bytes() as isize - self.start_live as isize
    }

    /// Allocation calls performed since `begin`.
    pub fn delta_allocs(&self) -> usize {
        alloc_count() - self.start_allocs
    }
}

/// Formats a byte count with binary units, for harness output.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_manual_alloc() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let before = live_bytes();
        // SAFETY: valid non-zero layout; pointer is deallocated below with
        // the same layout.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(live_bytes() - before, 1024);
        assert!(peak_bytes() >= before + 1024);
        // SAFETY: `p` was allocated just above with `layout`.
        unsafe { a.dealloc(p, layout) };
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn realloc_adjusts_delta() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        let before = live_bytes();
        // SAFETY: valid layout; the resulting pointer is reallocated and
        // freed below with matching layouts.
        let p = unsafe { a.alloc(layout) };
        // SAFETY: `p` is live with `layout`; 512 is a valid non-zero size.
        let p2 = unsafe { a.realloc(p, layout, 512) };
        assert!(!p2.is_null());
        assert_eq!(live_bytes() - before, 512);
        let layout2 = Layout::from_size_align(512, 8).unwrap();
        // SAFETY: `p2` was returned by realloc with size 512 and alignment 8.
        unsafe { a.dealloc(p2, layout2) };
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn memory_scope_reports_deltas() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(2048, 8).unwrap();
        let scope = MemoryScope::begin();
        // SAFETY: valid layout, freed below.
        let p = unsafe { a.alloc(layout) };
        assert_eq!(scope.delta_bytes(), 2048);
        assert_eq!(scope.delta_allocs(), 1);
        // SAFETY: allocated above with the same layout.
        unsafe { a.dealloc(p, layout) };
        assert_eq!(scope.delta_bytes(), 0);
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.00 MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }
}
