//! Wire-to-columnar ingest: assemble a [`ColumnBatch`] straight from
//! decoded request bytes.
//!
//! The FrontEnd's original ingest path decoded every wire record into an
//! owned `Record` (a `String` or `Vec<f32>` per record) and only later
//! re-packed those into the columnar working set the batch engine executes
//! over — one full staging copy plus one heap allocation per record between
//! the socket and the kernel. A [`BatchAssembler`] removes that stage: the
//! decoder grows packed text spans, dense rows, or CSR triples directly
//! into a (pool-leased) [`ColumnBatch`], so the batch the kernel consumes
//! is the thing the ingest path builds — the same discipline as
//! constant-time pooled allocation on the hot path.
//!
//! The assembler also records one content hash per row as it decodes
//! (see [`crate::hash::content_hash_text`] and friends). Those hashes are
//! the canonical per-record identities used by the FrontEnd result cache
//! and the sub-plan materialization cache, so every ingest path produces
//! identical keys for identical record bytes.
//!
//! Hashing is **opt-out**: when no cache will consume the hashes (no
//! materialization cache configured, no result-cache flag on the request)
//! the decoder skips the extra pass over every record's bytes
//! ([`BatchAssembler::new_unhashed`]) — on matching-bound text workloads
//! that pass was a measurable share of the ingest path. An unhashed
//! assembler upgrades itself on demand ([`BatchAssembler::ensure_hashes`]),
//! producing the identical hashes from the packed rows.

use crate::batch::{ColRef, ColumnBatch};
use crate::hash::{content_hash_dense, content_hash_sparse, content_hash_text, Fnv1a};
use crate::schema::ColumnType;
use crate::serde_bin::Cursor;
use crate::{DataError, Result};

/// Assembles one request's worth of source rows into a [`ColumnBatch`],
/// recording a content hash per row.
#[derive(Debug)]
pub struct BatchAssembler {
    rows: ColumnBatch,
    hashes: Vec<u64>,
    hashing: bool,
    reject_non_finite: bool,
}

impl BatchAssembler {
    /// Wraps a (typically pool-leased) batch; any stale rows are cleared.
    /// Rows are content-hashed as they decode.
    pub fn new(rows: ColumnBatch) -> Self {
        Self::with_hashing(rows, true)
    }

    /// Like [`Self::new`], but skips per-row content hashing — the fast
    /// path when no cache will consume the hashes. [`Self::finish`] then
    /// returns an empty hash vector (consumers compute on demand), and
    /// [`Self::ensure_hashes`] upgrades in place if a hash-needing request
    /// joins the batch later.
    pub fn new_unhashed(rows: ColumnBatch) -> Self {
        Self::with_hashing(rows, false)
    }

    fn with_hashing(mut rows: ColumnBatch, hashing: bool) -> Self {
        rows.reset();
        BatchAssembler {
            rows,
            hashes: Vec::new(),
            hashing,
            reject_non_finite: false,
        }
    }

    /// Rejects NaN/Inf feature values at decode time (dense and sparse
    /// rows; text rows carry no floats). A non-finite feature poisons every
    /// comparison downstream — and under bitwise-stability ablations two
    /// NaN payloads with different bit patterns would even hash to distinct
    /// cache keys while comparing unequal to themselves — so the ingest
    /// boundary is the one place it can be refused as a clean
    /// [`DataError::Codec`] instead of a kernel-level surprise.
    pub fn reject_non_finite(mut self, on: bool) -> Self {
        self.reject_non_finite = on;
        self
    }

    /// Column type of the assembled rows.
    pub fn column_type(&self) -> ColumnType {
        self.rows.column_type()
    }

    /// Number of assembled rows.
    pub fn rows(&self) -> usize {
        self.rows.rows()
    }

    /// True if nothing was assembled yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrows the assembled rows.
    pub fn batch(&self) -> &ColumnBatch {
        &self.rows
    }

    /// Per-row content hashes, parallel to the rows (empty when assembled
    /// without hashing).
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// True if this assembler records content hashes as rows decode.
    pub fn is_hashing(&self) -> bool {
        self.hashing
    }

    /// Content hash of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when the assembler was built unhashed and
    /// [`Self::ensure_hashes`] has not run — callers that need hashes
    /// decide so at construction time.
    pub fn hash(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    /// Upgrades an unhashed assembler in place: computes the content hash
    /// of every row not yet covered (from the packed row bytes, via the
    /// same shared helpers, so the hashes are identical to decode-time
    /// hashing) and turns hashing on for subsequent rows.
    pub fn ensure_hashes(&mut self) {
        for i in self.hashes.len()..self.rows.rows() {
            self.hashes.push(hash_row(self.rows.row(i)));
        }
        self.hashing = true;
    }

    /// Takes the assembled batch and its per-row hashes (empty when
    /// assembled without hashing).
    pub fn finish(self) -> (ColumnBatch, Vec<u64>) {
        (self.rows, self.hashes)
    }

    /// Appends a text row.
    pub fn push_text(&mut self, s: &str) -> Result<()> {
        self.rows.push_text(s)?;
        if self.hashing {
            self.hashes.push(content_hash_text(s));
        }
        Ok(())
    }

    /// Appends a dense row; its length must match the batch width.
    pub fn push_dense(&mut self, xs: &[f32]) -> Result<()> {
        if self.reject_non_finite {
            check_finite(xs)?;
        }
        self.rows.push_row(ColRef::Dense(xs))?;
        if self.hashing {
            self.hashes.push(content_hash_dense(xs));
        }
        Ok(())
    }

    /// Appends a sparse row; `indices` must be strictly increasing and
    /// below the batch dimensionality (a malformed row is a data error, not
    /// a panic — this is the ingest boundary).
    pub fn push_sparse(&mut self, indices: &[u32], values: &[f32]) -> Result<()> {
        let dim = match self.rows.column_type() {
            ColumnType::F32Sparse { len } => len as u32,
            other => {
                return Err(DataError::Runtime(format!(
                    "cannot push a sparse row into a {other} batch"
                )))
            }
        };
        if indices.len() != values.len() {
            return Err(DataError::Codec(format!(
                "sparse row has {} indices but {} values",
                indices.len(),
                values.len()
            )));
        }
        validate_sparse_indices(indices, dim)?;
        if self.reject_non_finite {
            check_finite(values)?;
        }
        self.rows.push_row(ColRef::Sparse {
            indices,
            values,
            dim,
        })?;
        if self.hashing {
            self.hashes.push(content_hash_sparse(indices, values, dim));
        }
        Ok(())
    }

    /// Appends all rows (and hashes) of `other`: the delayed batcher merges
    /// single-request assemblers into its per-plan accumulator with one
    /// bulk copy.
    ///
    /// Hashing state follows the **accumulator**, not the appended
    /// request: an unhashed accumulator exists precisely because none of
    /// its downstream consumers read hashes, so a hashed request joining
    /// it simply drops its hashes (any later on-demand consumer goes
    /// through [`Self::ensure_hashes`]/`hash_of`); a hashed accumulator
    /// fed an unhashed request gap-fills from the packed rows (identical
    /// bytes, identical hashes).
    pub fn append_assembled(&mut self, other: &BatchAssembler) -> Result<()> {
        self.rows.extend_from_range(&other.rows, 0, other.rows())?;
        if self.hashing {
            if other.hashing {
                self.hashes.extend_from_slice(&other.hashes);
            } else {
                self.ensure_hashes();
            }
        }
        Ok(())
    }

    /// Decodes one wire text record (`u32 len · bytes`) straight into the
    /// packed text buffer — no intermediate `String`.
    pub fn decode_text_row(&mut self, cur: &mut Cursor<'_>) -> Result<()> {
        let s = cur.str_ref()?;
        self.push_text(s)
    }

    /// Decodes one wire dense record (`u32 n · f32*n`) straight into the
    /// row-major matrix, hashing as it copies.
    pub fn decode_dense_row(&mut self, cur: &mut Cursor<'_>) -> Result<()> {
        let dim = match self.rows.column_type() {
            ColumnType::F32Dense { len } => len,
            other => {
                return Err(DataError::Runtime(format!(
                    "cannot decode a dense row into a {other} batch"
                )))
            }
        };
        let n = cur.u32()? as usize;
        cur.check_claim(n, 4)?;
        if n != dim {
            return Err(DataError::Codec(format!(
                "dense record has {n} features, batch rows have {dim}"
            )));
        }
        let row = self.rows.push_dense_row()?;
        let mut finite = true;
        if self.hashing {
            let mut h = Fnv1a::new();
            for slot in row.iter_mut() {
                let v = cur.f32()?;
                *slot = v;
                finite &= v.is_finite();
                h.write_f32(v);
            }
            self.hashes.push(h.finish());
        } else {
            for slot in row.iter_mut() {
                let v = cur.f32()?;
                *slot = v;
                finite &= v.is_finite();
            }
        }
        if self.reject_non_finite && !finite {
            // Roll the freshly written row (and its hash) back so the
            // assembler stays consistent for the error reply path.
            if let ColumnBatch::Dense { data, dim, rows } = &mut self.rows {
                *rows -= 1;
                data.truncate(*rows * *dim);
            }
            if self.hashing {
                self.hashes.pop();
            }
            return Err(non_finite_err());
        }
        Ok(())
    }

    /// Decodes one wire sparse record (CSR triple:
    /// `u32 dim · u32 nnz · u32*nnz indices · f32*nnz values`) straight
    /// into the CSR arrays, validating indices at the ingest boundary.
    pub fn decode_sparse_row(&mut self, cur: &mut Cursor<'_>) -> Result<()> {
        let dim = match self.rows.column_type() {
            ColumnType::F32Sparse { len } => len as u32,
            other => {
                return Err(DataError::Runtime(format!(
                    "cannot decode a sparse row into a {other} batch"
                )))
            }
        };
        let rdim = cur.u32()?;
        if rdim != dim {
            return Err(DataError::Codec(format!(
                "sparse record has dim {rdim}, batch rows have {dim}"
            )));
        }
        let nnz = cur.u32()? as usize;
        cur.check_claim(nnz, 8)?;
        let (bounds, indices, values) = match &mut self.rows {
            ColumnBatch::Sparse {
                bounds,
                indices,
                values,
                ..
            } => (bounds, indices, values),
            _ => unreachable!("column type checked above"),
        };
        let tail = indices.len();
        let hashing = self.hashing;
        let reject = self.reject_non_finite;
        let mut decode = || -> Result<u64> {
            for _ in 0..nnz {
                indices.push(cur.u32()?);
            }
            validate_sparse_indices(&indices[tail..], dim)?;
            for _ in 0..nnz {
                values.push(cur.f32()?);
            }
            if reject {
                check_finite(&values[tail..])?;
            }
            Ok(if hashing {
                content_hash_sparse(&indices[tail..], &values[tail..], dim)
            } else {
                0
            })
        };
        match decode() {
            Ok(hash) => {
                bounds.push(indices.len() as u32);
                if hashing {
                    self.hashes.push(hash);
                }
                Ok(())
            }
            Err(e) => {
                // Roll the half-decoded row back so the assembler stays
                // consistent for the error reply path.
                indices.truncate(tail);
                values.truncate(tail);
                Err(e)
            }
        }
    }
}

/// Content hash of one packed source row — the same identity the
/// decode-time hashing produces for the same bytes (shared helpers from
/// [`crate::hash`]). Non-source rows (tokens, scalars) hash to 0; they
/// never key a cache.
pub fn hash_row(row: ColRef<'_>) -> u64 {
    match row {
        ColRef::Text(s) => content_hash_text(s),
        ColRef::Dense(xs) => content_hash_dense(xs),
        ColRef::Sparse {
            indices,
            values,
            dim,
        } => content_hash_sparse(indices, values, dim),
        ColRef::Tokens(_) | ColRef::Scalar(_) => 0,
    }
}

fn non_finite_err() -> DataError {
    DataError::Codec("non-finite feature value (NaN/Inf) rejected at ingest".into())
}

/// Checks that every feature value is finite — the opt-in ingest-boundary
/// guard behind [`BatchAssembler::reject_non_finite`].
pub fn check_finite(values: &[f32]) -> Result<()> {
    if values.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(non_finite_err())
    }
}

/// Checks that a wire sparse row's indices are strictly increasing and
/// within the dimensionality — the ingest-boundary validation every decode
/// path (columnar or Record-staged) applies to CSR triples.
pub fn validate_sparse_indices(indices: &[u32], dim: u32) -> Result<()> {
    for (i, &idx) in indices.iter().enumerate() {
        if idx >= dim {
            return Err(DataError::Codec(format!(
                "sparse index {idx} out of dim {dim}"
            )));
        }
        if i > 0 && indices[i - 1] >= idx {
            return Err(DataError::Codec(format!(
                "sparse indices must be strictly increasing, got {} then {idx}",
                indices[i - 1]
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serde_bin::wire;

    #[test]
    fn text_rows_assemble_with_hashes() {
        let mut a = BatchAssembler::new(ColumnBatch::with_type(ColumnType::Text));
        a.push_text("hello").unwrap();
        a.push_text("").unwrap();
        let mut body = Vec::new();
        wire::put_str(&mut body, "world");
        let mut cur = Cursor::new(&body);
        a.decode_text_row(&mut cur).unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.hash(0), content_hash_text("hello"));
        assert_eq!(a.hash(2), content_hash_text("world"));
        let (rows, hashes) = a.finish();
        assert!(matches!(rows.row(2), ColRef::Text("world")));
        assert_eq!(hashes.len(), 3);
    }

    #[test]
    fn dense_rows_decode_straight_into_matrix() {
        let mut a = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Dense { len: 3 }));
        let mut body = Vec::new();
        wire::put_f32s(&mut body, &[1.0, -2.0, 0.5]);
        wire::put_f32s(&mut body, &[4.0, 5.0, 6.0]);
        let mut cur = Cursor::new(&body);
        a.decode_dense_row(&mut cur).unwrap();
        a.decode_dense_row(&mut cur).unwrap();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.hash(0), content_hash_dense(&[1.0, -2.0, 0.5]));
        let (rows, _) = a.finish();
        let (data, dim, n) = rows.as_dense().unwrap();
        assert_eq!((dim, n), (3, 2));
        assert_eq!(data, &[1.0, -2.0, 0.5, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn dense_width_mismatch_is_clean_error() {
        let mut a = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Dense { len: 3 }));
        let mut body = Vec::new();
        wire::put_f32s(&mut body, &[1.0, 2.0]);
        let mut cur = Cursor::new(&body);
        assert!(a.decode_dense_row(&mut cur).is_err());
        assert_eq!(a.rows(), 0);
    }

    #[test]
    fn sparse_rows_decode_as_csr_triples() {
        let mut a = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Sparse { len: 8 }));
        let mut body = Vec::new();
        wire::put_u32(&mut body, 8); // dim
        wire::put_u32(&mut body, 2); // nnz
        wire::put_u32(&mut body, 1);
        wire::put_u32(&mut body, 5);
        wire::put_f32(&mut body, 2.0);
        wire::put_f32(&mut body, -1.0);
        let mut cur = Cursor::new(&body);
        a.decode_sparse_row(&mut cur).unwrap();
        assert_eq!(a.rows(), 1);
        assert_eq!(a.hash(0), content_hash_sparse(&[1, 5], &[2.0, -1.0], 8));
        let (rows, _) = a.finish();
        match rows.row(0) {
            ColRef::Sparse {
                indices, values, ..
            } => {
                assert_eq!(indices, &[1, 5]);
                assert_eq!(values, &[2.0, -1.0]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn malformed_sparse_rows_roll_back() {
        let mut a = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Sparse { len: 4 }));
        // Out-of-dim index.
        let mut body = Vec::new();
        wire::put_u32(&mut body, 4);
        wire::put_u32(&mut body, 1);
        wire::put_u32(&mut body, 9);
        wire::put_f32(&mut body, 1.0);
        assert!(a.decode_sparse_row(&mut Cursor::new(&body)).is_err());
        // Non-increasing indices.
        let mut body = Vec::new();
        wire::put_u32(&mut body, 4);
        wire::put_u32(&mut body, 2);
        wire::put_u32(&mut body, 2);
        wire::put_u32(&mut body, 2);
        wire::put_f32(&mut body, 1.0);
        wire::put_f32(&mut body, 1.0);
        assert!(a.decode_sparse_row(&mut Cursor::new(&body)).is_err());
        // Wrong dim.
        let mut body = Vec::new();
        wire::put_u32(&mut body, 5);
        assert!(a.decode_sparse_row(&mut Cursor::new(&body)).is_err());
        assert_eq!(a.rows(), 0);
        // The assembler is still usable after rejected rows.
        a.push_sparse(&[0, 3], &[1.0, 2.0]).unwrap();
        assert_eq!(a.rows(), 1);
    }

    #[test]
    fn hostile_length_prefixes_rejected_before_allocation() {
        let mut a = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Dense { len: 3 }));
        let mut body = Vec::new();
        wire::put_u32(&mut body, u32::MAX); // claims 4 billion floats
        assert!(a.decode_dense_row(&mut Cursor::new(&body)).is_err());
        let mut s = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Sparse { len: 4 }));
        let mut body = Vec::new();
        wire::put_u32(&mut body, 4);
        wire::put_u32(&mut body, u32::MAX); // claims 4 billion nnz
        assert!(s.decode_sparse_row(&mut Cursor::new(&body)).is_err());
    }

    #[test]
    fn new_clears_stale_pooled_rows() {
        let mut b = ColumnBatch::with_type(ColumnType::Text);
        b.push_text("stale").unwrap();
        let a = BatchAssembler::new(b);
        assert!(a.is_empty());
    }

    #[test]
    fn unhashed_assembly_skips_hashes_and_upgrades_on_demand() {
        let mut a = BatchAssembler::new_unhashed(ColumnBatch::with_type(ColumnType::Text));
        assert!(!a.is_hashing());
        a.push_text("hello").unwrap();
        let mut body = Vec::new();
        wire::put_str(&mut body, "world");
        a.decode_text_row(&mut Cursor::new(&body)).unwrap();
        assert_eq!(a.rows(), 2);
        assert!(a.hashes().is_empty(), "no hashing pass on the fast path");
        // Upgrading computes the identical hashes from the packed rows.
        a.ensure_hashes();
        assert!(a.is_hashing());
        assert_eq!(a.hash(0), content_hash_text("hello"));
        assert_eq!(a.hash(1), content_hash_text("world"));
        // Rows pushed after the upgrade hash at decode time again.
        a.push_text("later").unwrap();
        assert_eq!(a.hash(2), content_hash_text("later"));
    }

    #[test]
    fn unhashed_dense_and_sparse_rows_decode_identically() {
        let mut hashed =
            BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Dense { len: 3 }));
        let mut plain =
            BatchAssembler::new_unhashed(ColumnBatch::with_type(ColumnType::F32Dense { len: 3 }));
        let mut body = Vec::new();
        wire::put_f32s(&mut body, &[1.0, -2.0, 0.5]);
        hashed.decode_dense_row(&mut Cursor::new(&body)).unwrap();
        plain.decode_dense_row(&mut Cursor::new(&body)).unwrap();
        assert_eq!(hashed.batch(), plain.batch(), "same decoded rows");
        assert!(plain.hashes().is_empty());

        let mut sp =
            BatchAssembler::new_unhashed(ColumnBatch::with_type(ColumnType::F32Sparse { len: 8 }));
        sp.push_sparse(&[1, 5], &[2.0, -1.0]).unwrap();
        assert!(sp.hashes().is_empty());
        sp.ensure_hashes();
        assert_eq!(sp.hash(0), content_hash_sparse(&[1, 5], &[2.0, -1.0], 8));
    }

    #[test]
    fn append_assembled_follows_accumulator_hashing() {
        // Unhashed accumulator: stays lazy no matter what joins it — its
        // consumers do not read hashes (that is why it is unhashed).
        let mut acc = BatchAssembler::new_unhashed(ColumnBatch::with_type(ColumnType::Text));
        let mut plain = BatchAssembler::new_unhashed(ColumnBatch::with_type(ColumnType::Text));
        plain.push_text("quiet").unwrap();
        acc.append_assembled(&plain).unwrap();
        assert!(acc.hashes().is_empty(), "unhashed + unhashed stays lazy");
        let mut hashed = BatchAssembler::new(ColumnBatch::with_type(ColumnType::Text));
        hashed.push_text("loud").unwrap();
        acc.append_assembled(&hashed).unwrap();
        assert!(
            acc.hashes().is_empty(),
            "a hashed request must not force hashing onto a consumer-less accumulator"
        );
        // On-demand upgrade still produces the full, correct hash set.
        acc.ensure_hashes();
        assert_eq!(acc.hash(0), content_hash_text("quiet"));
        assert_eq!(acc.hash(1), content_hash_text("loud"));

        // Hashed accumulator: gap-fills when an unhashed request joins.
        let mut hacc = BatchAssembler::new(ColumnBatch::with_type(ColumnType::Text));
        hacc.push_text("first").unwrap();
        let mut lazy = BatchAssembler::new_unhashed(ColumnBatch::with_type(ColumnType::Text));
        lazy.push_text("second").unwrap();
        hacc.append_assembled(&lazy).unwrap();
        assert_eq!(hacc.hashes().len(), 2);
        assert_eq!(hacc.hash(0), content_hash_text("first"));
        assert_eq!(hacc.hash(1), content_hash_text("second"));
    }

    #[test]
    fn non_finite_rows_rejected_when_opted_in() {
        // Dense decode: NaN mid-row rejects and rolls the row back.
        let mut a = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Dense { len: 3 }))
            .reject_non_finite(true);
        let mut body = Vec::new();
        wire::put_f32s(&mut body, &[1.0, f32::NAN, 0.5]);
        assert!(a.decode_dense_row(&mut Cursor::new(&body)).is_err());
        assert_eq!(a.rows(), 0);
        assert!(a.hashes().is_empty(), "rolled-back row leaves no hash");
        // The assembler is still usable; finite rows still decode.
        let mut body = Vec::new();
        wire::put_f32s(&mut body, &[1.0, 2.0, 0.5]);
        a.decode_dense_row(&mut Cursor::new(&body)).unwrap();
        assert_eq!(a.rows(), 1);
        assert!(a.push_dense(&[1.0, f32::INFINITY, 0.0]).is_err());
        assert_eq!(a.rows(), 1);

        // Sparse decode: Inf value rejects and rolls back.
        let mut s = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Sparse { len: 8 }))
            .reject_non_finite(true);
        let mut body = Vec::new();
        wire::put_u32(&mut body, 8);
        wire::put_u32(&mut body, 2);
        wire::put_u32(&mut body, 1);
        wire::put_u32(&mut body, 5);
        wire::put_f32(&mut body, 2.0);
        wire::put_f32(&mut body, f32::NEG_INFINITY);
        assert!(s.decode_sparse_row(&mut Cursor::new(&body)).is_err());
        assert_eq!(s.rows(), 0);
        assert!(s.push_sparse(&[0], &[f32::NAN]).is_err());
        s.push_sparse(&[0, 3], &[1.0, 2.0]).unwrap();
        assert_eq!(s.rows(), 1);
    }

    #[test]
    fn non_finite_rows_pass_by_default() {
        // The guard is opt-in: the data layer stays permissive unless the
        // serving runtime turns it on.
        let mut a = BatchAssembler::new(ColumnBatch::with_type(ColumnType::F32Dense { len: 2 }));
        a.push_dense(&[f32::NAN, f32::INFINITY]).unwrap();
        assert_eq!(a.rows(), 1);
    }

    #[test]
    fn hash_row_matches_decode_time_hashing() {
        let mut b = ColumnBatch::with_type(ColumnType::Text);
        b.push_text("same bytes").unwrap();
        assert_eq!(hash_row(b.row(0)), content_hash_text("same bytes"));
        let mut d = ColumnBatch::with_type(ColumnType::F32Dense { len: 2 });
        d.push_row(ColRef::Dense(&[1.5, -2.5])).unwrap();
        assert_eq!(hash_row(d.row(0)), content_hash_dense(&[1.5, -2.5]));
    }
}
