//! One-shot startup calibration of the cache-size threshold behind
//! `FlatProbeTable::prefetch_pays`.
//!
//! PR 5 gated software prefetch of probe slots on a hard-coded 256 KiB
//! table size — a guess at "fits in L2". Whether prefetch actually pays
//! depends on where the machine's cache cliff sits, so this module
//! measures it once per process: a dependent pointer chase (Sattolo
//! random cycle, so every hop is a true data dependency the prefetcher
//! cannot hide) over growing buffers, taking the first size whose
//! per-hop latency jumps well above the smallest buffers' baseline.
//! Tables at or above that size get probe prefetching; smaller ones are
//! assumed cache-resident and skip it.
//!
//! The measurement is cached in a `OnceLock`. For reproducible benches
//! and tests the threshold can be pinned before first use:
//!
//! * `PRETZEL_PREFETCH_BYTES=<n>` in the environment, or
//! * [`set_prefetch_threshold`] programmatically
//!   (`RuntimeConfig::prefetch_threshold_bytes` at the runtime layer).
//!
//! The override is consulted on every call, so it also wins over an
//! already-cached measurement — but note tables snapshot the decision at
//! construction time, so overrides only affect tables built afterwards.

use crate::hash::splitmix64;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// 0 = no override; otherwise the pinned threshold in bytes.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

static MEASURED: OnceLock<usize> = OnceLock::new();

/// Candidate working-set sizes for the pointer chase, in bytes. The
/// first two anchor the "fast" baseline; the measured threshold is the
/// first later size whose latency clearly exceeds it.
const SIZES: [usize; 7] = [
    16 << 10,
    32 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    4 << 20,
];

/// Latency multiple over the fast-baseline that counts as "fell out of
/// cache".
const JUMP: f64 = 1.8;

/// Hops per timing pass; small enough that the whole calibration is a
/// few milliseconds, large enough to dominate `Instant` overhead.
const HOPS: usize = 1 << 15;

/// Pins the prefetch threshold (bytes). Takes precedence over both the
/// environment and any cached measurement; only affects probe tables
/// built after the call.
pub fn set_prefetch_threshold(bytes: usize) {
    OVERRIDE.store(bytes.max(1), Ordering::Relaxed);
}

/// The table-size threshold (bytes) at or above which probe prefetching
/// is considered worthwhile. Override > environment > one-shot measured
/// value.
pub fn prefetch_threshold() -> usize {
    let pinned = OVERRIDE.load(Ordering::Relaxed);
    if pinned != 0 {
        return pinned;
    }
    *MEASURED.get_or_init(|| {
        if let Ok(v) = std::env::var("PRETZEL_PREFETCH_BYTES") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        calibrate()
    })
}

/// Times one traversal of a `len`-slot random cycle, in ns per hop.
fn chase_ns_per_hop(chain: &[u32], hops: usize) -> f64 {
    let mut cursor = 0u32;
    let start = Instant::now();
    for _ in 0..hops {
        cursor = chain[cursor as usize];
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    // The cursor must feed a side effect or the chase folds away.
    std::hint::black_box(cursor);
    elapsed / hops as f64
}

/// Builds a single random cycle over `len` slots (Sattolo's algorithm,
/// deterministic splitmix64 stream) so each load depends on the last.
fn build_cycle(len: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..len as u32).collect();
    let mut h = seed;
    for i in (1..len).rev() {
        h = splitmix64(h);
        let j = (h % i as u64) as usize;
        perm.swap(i, j);
    }
    // perm is a permutation; turn it into chase links: next[perm[i]] = perm[i+1].
    let mut next = vec![0u32; len];
    for i in 0..len {
        next[perm[i] as usize] = perm[(i + 1) % len];
    }
    next
}

/// Measures the cache cliff. Returns the first candidate size whose
/// per-hop latency exceeds `JUMP ×` the fast baseline; if no cliff shows
/// up (huge caches, virtualized timers), falls back to beyond the
/// largest candidate so prefetch stays off — the conservative choice,
/// matching pre-calibration behavior for all but the largest tables.
fn calibrate() -> usize {
    let mut lat = [0.0f64; SIZES.len()];
    for (k, &bytes) in SIZES.iter().enumerate() {
        let len = bytes / 4;
        let chain = build_cycle(len, 0x9e37_79b9_7f4a_7c15 ^ bytes as u64);
        // Two passes, keep the best: the first also warms the buffer.
        let a = chase_ns_per_hop(&chain, HOPS);
        let b = chase_ns_per_hop(&chain, HOPS);
        lat[k] = a.min(b);
    }
    let baseline = lat[0].min(lat[1]).max(1e-3);
    for k in 2..SIZES.len() {
        if lat[k] > baseline * JUMP {
            return SIZES[k];
        }
    }
    SIZES[SIZES.len() - 1] * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_visits_every_slot() {
        let chain = build_cycle(257, 42);
        let mut seen = vec![false; 257];
        let mut cursor = 0u32;
        for _ in 0..257 {
            assert!(!seen[cursor as usize], "cycle revisited a slot early");
            seen[cursor as usize] = true;
            cursor = chain[cursor as usize];
        }
        assert_eq!(cursor, 0, "chase is a single full cycle");
    }

    #[test]
    fn override_wins_and_threshold_is_sane() {
        set_prefetch_threshold(123_456);
        assert_eq!(prefetch_threshold(), 123_456);
        OVERRIDE.store(0, Ordering::Relaxed);
        let t = prefetch_threshold();
        assert!(
            (SIZES[0]..=SIZES[SIZES.len() - 1] * 2 + 1).contains(&t),
            "measured threshold {t} outside candidate range"
        );
        // Cached: second read is identical without re-measuring.
        assert_eq!(prefetch_threshold(), t);
    }
}
