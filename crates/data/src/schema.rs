//! Column types and schemas.
//!
//! Every edge in a pipeline DAG carries a [`ColumnType`]; Oven's
//! `InputGraphValidatorStep` propagates [`Schema`]s from the source to the
//! predictor and rejects ill-typed graphs before any plan is compiled
//! (paper §4.1.2). The black-box baseline performs the same checks lazily at
//! first prediction, which is part of its cold-start cost (paper §2).

use crate::error::{DataError, Result};
use std::fmt;

/// The type of a single column flowing between transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Raw UTF-8 text (variable length).
    Text,
    /// A list of token spans over a text column.
    TokenList,
    /// A dense vector of `f32` with a fixed upper-bound length.
    F32Dense {
        /// Maximum number of elements (used to size pooled buffers).
        len: usize,
    },
    /// A sparse vector of `f32` over a logical index space of size `len`.
    F32Sparse {
        /// Logical dimensionality of the sparse space.
        len: usize,
    },
    /// A single scalar prediction (score, regression value, class id).
    F32Scalar,
}

impl ColumnType {
    /// Returns the logical dimensionality of vector-typed columns.
    ///
    /// `Text` and `TokenList` have no fixed dimensionality and return `None`;
    /// scalars report 1.
    pub fn dimension(&self) -> Option<usize> {
        match self {
            ColumnType::Text | ColumnType::TokenList => None,
            ColumnType::F32Dense { len } | ColumnType::F32Sparse { len } => Some(*len),
            ColumnType::F32Scalar => Some(1),
        }
    }

    /// True if the column is a (dense or sparse) float vector or scalar.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            ColumnType::F32Dense { .. } | ColumnType::F32Sparse { .. } | ColumnType::F32Scalar
        )
    }

    /// True for sparse vector columns.
    pub fn is_sparse(&self) -> bool {
        matches!(self, ColumnType::F32Sparse { .. })
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Text => write!(f, "Text"),
            ColumnType::TokenList => write!(f, "TokenList"),
            ColumnType::F32Dense { len } => write!(f, "F32Dense[{len}]"),
            ColumnType::F32Sparse { len } => write!(f, "F32Sparse[{len}]"),
            ColumnType::F32Scalar => write!(f, "F32Scalar"),
        }
    }
}

/// An ordered set of named, typed columns.
///
/// Schemas are small (pipelines in the paper have ~a dozen operators and a
/// handful of live columns), so a `Vec` of pairs beats a hash map on both
/// memory and lookup cost, and keeps deterministic ordering for checksums.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Creates a schema from `(name, type)` pairs.
    ///
    /// Returns [`DataError::InvalidGraph`] if two columns share a name.
    pub fn from_columns<I>(cols: I) -> Result<Self>
    where
        I: IntoIterator<Item = (String, ColumnType)>,
    {
        let mut s = Schema::new();
        for (name, ty) in cols {
            s.push(name, ty)?;
        }
        Ok(s)
    }

    /// Appends a column, rejecting duplicate names.
    pub fn push(&mut self, name: impl Into<String>, ty: ColumnType) -> Result<()> {
        let name = name.into();
        if self.lookup(&name).is_some() {
            return Err(DataError::InvalidGraph(format!(
                "duplicate column `{name}` in schema"
            )));
        }
        self.columns.push((name, ty));
        Ok(())
    }

    /// Returns the type of column `name`, if present.
    pub fn lookup(&self, name: &str) -> Option<ColumnType> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
    }

    /// Returns the type of column `name` or an [`DataError::UnknownColumn`].
    pub fn require(&self, name: &str) -> Result<ColumnType> {
        self.lookup(name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Iterates over `(name, type)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ColumnType)> {
        self.columns.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// Returns a single-column schema, the common case between fused stages.
    pub fn single(name: impl Into<String>, ty: ColumnType) -> Self {
        Schema {
            columns: vec![(name.into(), ty)],
        }
    }

    /// Checks that `found` can feed an operator expecting `expected`.
    ///
    /// Dense vectors may feed sparse-expecting operators of the same
    /// dimensionality and vice versa (kernels handle both layouts); all other
    /// combinations must match exactly.
    pub fn check_compat(operator: &str, expected: ColumnType, found: ColumnType) -> Result<()> {
        let ok = match (expected, found) {
            (a, b) if a == b => true,
            (ColumnType::F32Dense { len: a }, ColumnType::F32Sparse { len: b })
            | (ColumnType::F32Sparse { len: a }, ColumnType::F32Dense { len: b }) => a == b,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(DataError::SchemaMismatch {
                operator: operator.to_string(),
                expected: expected.to_string(),
                found: found.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = Schema::new();
        s.push("Text", ColumnType::Text).unwrap();
        s.push("Features", ColumnType::F32Dense { len: 8 }).unwrap();
        assert_eq!(s.lookup("Text"), Some(ColumnType::Text));
        assert_eq!(s.lookup("Features"), Some(ColumnType::F32Dense { len: 8 }));
        assert_eq!(s.lookup("missing"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut s = Schema::new();
        s.push("a", ColumnType::Text).unwrap();
        let err = s.push("a", ColumnType::F32Scalar).unwrap_err();
        assert!(matches!(err, DataError::InvalidGraph(_)));
    }

    #[test]
    fn require_reports_unknown_column() {
        let s = Schema::single("x", ColumnType::Text);
        assert_eq!(
            s.require("y").unwrap_err(),
            DataError::UnknownColumn("y".into())
        );
    }

    #[test]
    fn compat_dense_sparse_same_len() {
        Schema::check_compat(
            "LinearModel",
            ColumnType::F32Dense { len: 10 },
            ColumnType::F32Sparse { len: 10 },
        )
        .unwrap();
        Schema::check_compat(
            "LinearModel",
            ColumnType::F32Sparse { len: 10 },
            ColumnType::F32Dense { len: 10 },
        )
        .unwrap();
    }

    #[test]
    fn compat_rejects_len_mismatch_and_kind_mismatch() {
        assert!(Schema::check_compat(
            "LinearModel",
            ColumnType::F32Dense { len: 10 },
            ColumnType::F32Dense { len: 11 },
        )
        .is_err());
        assert!(
            Schema::check_compat("WordNgram", ColumnType::TokenList, ColumnType::Text).is_err()
        );
    }

    #[test]
    fn dimension_reporting() {
        assert_eq!(ColumnType::Text.dimension(), None);
        assert_eq!(ColumnType::F32Dense { len: 3 }.dimension(), Some(3));
        assert_eq!(ColumnType::F32Scalar.dimension(), Some(1));
        assert!(ColumnType::F32Sparse { len: 4 }.is_sparse());
        assert!(!ColumnType::F32Dense { len: 4 }.is_sparse());
    }

    #[test]
    fn from_columns_builds_in_order() {
        let s = Schema::from_columns(vec![
            ("a".to_string(), ColumnType::Text),
            ("b".to_string(), ColumnType::F32Scalar),
        ])
        .unwrap();
        let names: Vec<_> = s.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
