//! K-Means scorer.
//!
//! At inference time a trained K-Means model maps an input vector to its
//! distances from the `k` learned centroids (the representation the AC
//! pipelines feed into their final tree, paper §5). Compute-bound: the
//! kernel is `k` dense dot products and auto-vectorizes.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// K-Means parameters: row-major centroid matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansParams {
    /// Centroids, `k * dim` row-major.
    pub centroids: Vec<f32>,
    /// Number of clusters.
    pub k: u32,
    /// Input dimensionality.
    pub dim: u32,
}

impl KMeansParams {
    /// Creates a scorer from a row-major centroid matrix.
    pub fn new(centroids: Vec<f32>, k: u32, dim: u32) -> Result<Self> {
        if centroids.len() != (k as usize) * (dim as usize) || k == 0 {
            return Err(DataError::Codec(format!(
                "kmeans matrix {} != k {k} * dim {dim}",
                centroids.len()
            )));
        }
        Ok(KMeansParams { centroids, k, dim })
    }

    /// Operator annotations: compute-bound, vectorizable.
    pub fn annotations(&self) -> Annotations {
        Annotations::compute()
    }

    /// Squared Euclidean distances of one dense row to every centroid.
    /// Shared by the per-record and batch kernels, so their bitwise
    /// agreement rests on one implementation. Each centroid's distance
    /// runs the explicit 8-lane squared-distance kernel (AVX2 or its
    /// lane-identical scalar twin).
    fn distances_row(&self, x: &[f32], y: &mut [f32]) {
        let d = self.dim as usize;
        for (c, slot) in y.iter_mut().enumerate() {
            let row = &self.centroids[c * d..(c + 1) * d];
            *slot = pretzel_data::simd::squared_distance(x, row);
        }
    }

    /// Computes squared Euclidean distances to every centroid
    /// (dense input → dense `k`-vector).
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        let x = match input {
            Vector::Dense(x) if x.len() == self.dim as usize => x,
            other => {
                return Err(DataError::Runtime(format!(
                    "kmeans wants dense[{}], got {:?}",
                    self.dim,
                    other.column_type()
                )))
            }
        };
        match out {
            Vector::Dense(y) if y.len() == self.k as usize => {
                self.distances_row(x, y);
                Ok(())
            }
            other => Err(DataError::Runtime(format!(
                "kmeans output wants dense[{}], got {:?}",
                self.k,
                other.column_type()
            ))),
        }
    }

    /// Batch kernel: distances to every centroid for every row through the
    /// same [`Self::distances_row`] as the per-record kernel; the centroid
    /// matrix stays cache-hot across the chunk.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let d = self.dim as usize;
        let k = self.k as usize;
        let (x, in_dim, rows) = input.as_dense().ok_or_else(|| {
            DataError::Runtime(format!(
                "kmeans wants dense[{}] batch, got {:?}",
                self.dim,
                input.column_type()
            ))
        })?;
        if in_dim != d || out.column_type() != (pretzel_data::ColumnType::F32Dense { len: k }) {
            return Err(DataError::Runtime(format!(
                "kmeans wants dense[{d}] -> dense[{k}] batch, got {:?} -> {:?}",
                input.column_type(),
                out.column_type()
            )));
        }
        let y = out.fill_dense(rows)?;
        for (xr, yr) in x.chunks_exact(d).zip(y.chunks_exact_mut(k)) {
            self.distances_row(xr, yr);
        }
        Ok(())
    }

    /// Index of the nearest centroid for `x` (used by tests/examples).
    pub fn assign(&self, x: &[f32]) -> Result<usize> {
        let mut out = Vector::Dense(vec![0.0; self.k as usize]);
        self.apply(&Vector::Dense(x.to_vec()), &mut out)?;
        let dists = out.as_dense().unwrap();
        Ok(dists
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }
}

impl ParamBlob for KMeansParams {
    const KIND: &'static str = "KMeans";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.k);
        wire::put_u32(&mut cfg, self.dim);
        let mut m = Vec::new();
        wire::put_f32s(&mut m, &self.centroids);
        vec![("config".into(), cfg), ("centroids".into(), m)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cfg = Cursor::new(section.entry("config")?);
        let k = cfg.u32()?;
        let dim = cfg.u32()?;
        let centroids = Cursor::new(section.entry("centroids")?).f32s()?;
        KMeansParams::new(centroids, k, dim)
    }

    fn heap_bytes(&self) -> usize {
        self.centroids.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    fn model() -> KMeansParams {
        // Two centroids in 2D: (0,0) and (10,10).
        KMeansParams::new(vec![0.0, 0.0, 10.0, 10.0], 2, 2).unwrap()
    }

    #[test]
    fn squared_distances() {
        let m = model();
        let mut out = Vector::with_type(ColumnType::F32Dense { len: 2 });
        m.apply(&Vector::Dense(vec![3.0, 4.0]), &mut out).unwrap();
        assert_eq!(out.as_dense().unwrap(), &[25.0, 85.0]);
    }

    #[test]
    fn assign_picks_nearest() {
        let m = model();
        assert_eq!(m.assign(&[1.0, 1.0]).unwrap(), 0);
        assert_eq!(m.assign(&[9.0, 9.0]).unwrap(), 1);
    }

    #[test]
    fn construction_validates_matrix() {
        assert!(KMeansParams::new(vec![0.0; 5], 2, 2).is_err());
        assert!(KMeansParams::new(vec![], 0, 2).is_err());
    }

    #[test]
    fn dim_mismatch_is_error() {
        let m = model();
        let mut out = Vector::with_type(ColumnType::F32Dense { len: 2 });
        assert!(m.apply(&Vector::Dense(vec![1.0]), &mut out).is_err());
        let mut bad_out = Vector::with_type(ColumnType::F32Dense { len: 3 });
        assert!(m
            .apply(&Vector::Dense(vec![1.0, 2.0]), &mut bad_out)
            .is_err());
    }

    #[test]
    fn round_trip_through_section() {
        let m = model();
        let section = Section {
            name: "op.KMeans".into(),
            checksum: 0,
            entries: m.to_entries(),
        };
        let q = KMeansParams::from_entries(&section).unwrap();
        assert_eq!(m, q);
        assert_eq!(m.checksum(), q.checksum());
    }
}
