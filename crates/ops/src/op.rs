//! The unified operator type: kind, shared parameters, kernel dispatch,
//! schema propagation and model-file (de)serialization.
//!
//! An [`Op`] is one node of a pipeline DAG. Its parameters live behind an
//! `Arc`, so cloning an `Op` *shares* them — this is the mechanism the
//! Object Store uses to dedup identical operators across pipelines
//! (paper §4.1.3): two `Op`s with equal [`Op::checksum`] can be collapsed
//! into clones of one instance, after which all pipelines read the same
//! memory.

use crate::annotations::Annotations;
use crate::bayes::NaiveBayesParams;
#[cfg(feature = "fault-op")]
use crate::fault::FaultParams;
use crate::feat::binner::BinnerParams;
use crate::feat::concat::ConcatParams;
use crate::feat::imputer::ImputerParams;
use crate::feat::normalizer::NormalizerParams;
use crate::feat::onehot::OneHotParams;
use crate::feat::scaler::ScalerParams;
use crate::kmeans::KMeansParams;
use crate::linear::LinearParams;
use crate::params::ParamBlob;
use crate::pca::PcaParams;
use crate::text::csv::CsvParams;
use crate::text::hashing::HashingParams;
use crate::text::ngram::NgramParams;
use crate::text::tokenizer::TokenizerParams;
use crate::tree::{EnsembleParams, MulticlassTreeParams};
use pretzel_data::batch::ColRef;
use pretzel_data::serde_bin::Section;
use pretzel_data::vector::Span;
use pretzel_data::{ColumnBatch, ColumnType, DataError, Result, Schema, Vector};
use std::sync::Arc;

/// Operator kind tag (fieldless mirror of [`Op`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// CSV line parser / field selector.
    CsvParse,
    /// Text tokenizer.
    Tokenizer,
    /// Character n-gram featurizer (dictionary).
    CharNgram,
    /// Word n-gram featurizer (dictionary).
    WordNgram,
    /// Dictionary-free hashing featurizer.
    HashingVectorizer,
    /// Feature-vector concatenation.
    Concat,
    /// L1/L2/MaxAbs normalizer.
    Normalizer,
    /// Affine per-dimension scaler.
    Scaler,
    /// NaN imputer.
    Imputer,
    /// Quantile binner.
    Binner,
    /// One-hot encoder.
    OneHot,
    /// Linear / logistic / Poisson / SVM model.
    Linear,
    /// Multinomial naive Bayes.
    NaiveBayes,
    /// Tree ensemble scorer.
    TreeEnsemble,
    /// One-vs-all multiclass trees.
    MulticlassTree,
    /// Tree-leaf featurizer.
    TreeFeaturizer,
    /// K-Means distance scorer.
    KMeans,
    /// PCA projector.
    Pca,
    /// Deliberately-faulting synthetic op (feature `fault-op`; excluded
    /// from [`OpKind::ALL`] — it never appears in real model registries).
    #[cfg(feature = "fault-op")]
    FaultInjector,
}

impl OpKind {
    /// Stable textual name used in model-file section names.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::CsvParse => "CsvParse",
            OpKind::Tokenizer => "Tokenizer",
            OpKind::CharNgram => "CharNgram",
            OpKind::WordNgram => "WordNgram",
            OpKind::HashingVectorizer => "HashingVectorizer",
            OpKind::Concat => "Concat",
            OpKind::Normalizer => "Normalizer",
            OpKind::Scaler => "Scaler",
            OpKind::Imputer => "Imputer",
            OpKind::Binner => "Binner",
            OpKind::OneHot => "OneHot",
            OpKind::Linear => "Linear",
            OpKind::NaiveBayes => "NaiveBayes",
            OpKind::TreeEnsemble => "TreeEnsemble",
            OpKind::MulticlassTree => "MulticlassTree",
            OpKind::TreeFeaturizer => "TreeFeaturizer",
            OpKind::KMeans => "KMeans",
            OpKind::Pca => "Pca",
            #[cfg(feature = "fault-op")]
            OpKind::FaultInjector => "FaultInjector",
        }
    }

    /// True for model operators that may terminate a pipeline.
    pub fn is_predictor(self) -> bool {
        matches!(
            self,
            OpKind::Linear | OpKind::NaiveBayes | OpKind::TreeEnsemble | OpKind::MulticlassTree
        )
    }

    /// All kinds, for registry-style iteration in tests and tools.
    /// The synthetic `FaultInjector` (feature `fault-op`) is deliberately
    /// absent: it never appears in real model registries.
    pub const ALL: [OpKind; 18] = [
        OpKind::CsvParse,
        OpKind::Tokenizer,
        OpKind::CharNgram,
        OpKind::WordNgram,
        OpKind::HashingVectorizer,
        OpKind::Concat,
        OpKind::Normalizer,
        OpKind::Scaler,
        OpKind::Imputer,
        OpKind::Binner,
        OpKind::OneHot,
        OpKind::Linear,
        OpKind::NaiveBayes,
        OpKind::TreeEnsemble,
        OpKind::MulticlassTree,
        OpKind::TreeFeaturizer,
        OpKind::KMeans,
        OpKind::Pca,
    ];
}

/// One operator instance: kind + `Arc`-shared parameters.
#[derive(Debug, Clone)]
pub enum Op {
    /// See [`CsvParams`].
    CsvParse(Arc<CsvParams>),
    /// See [`TokenizerParams`].
    Tokenizer(Arc<TokenizerParams>),
    /// See [`NgramParams`] (character level).
    CharNgram(Arc<NgramParams>),
    /// See [`NgramParams`] (word level).
    WordNgram(Arc<NgramParams>),
    /// See [`HashingParams`].
    HashingVectorizer(Arc<HashingParams>),
    /// See [`ConcatParams`].
    Concat(Arc<ConcatParams>),
    /// See [`NormalizerParams`].
    Normalizer(Arc<NormalizerParams>),
    /// See [`ScalerParams`].
    Scaler(Arc<ScalerParams>),
    /// See [`ImputerParams`].
    Imputer(Arc<ImputerParams>),
    /// See [`BinnerParams`].
    Binner(Arc<BinnerParams>),
    /// See [`OneHotParams`].
    OneHot(Arc<OneHotParams>),
    /// See [`LinearParams`].
    Linear(Arc<LinearParams>),
    /// See [`NaiveBayesParams`].
    NaiveBayes(Arc<NaiveBayesParams>),
    /// See [`EnsembleParams`].
    TreeEnsemble(Arc<EnsembleParams>),
    /// See [`MulticlassTreeParams`].
    MulticlassTree(Arc<MulticlassTreeParams>),
    /// See [`EnsembleParams`] used with leaf-one-hot semantics.
    TreeFeaturizer(Arc<EnsembleParams>),
    /// See [`KMeansParams`].
    KMeans(Arc<KMeansParams>),
    /// See [`PcaParams`].
    Pca(Arc<PcaParams>),
    /// See [`FaultParams`] (feature `fault-op`).
    #[cfg(feature = "fault-op")]
    FaultInjector(Arc<FaultParams>),
}

fn text_input<'a>(inputs: &[&'a Vector], i: usize) -> Result<&'a str> {
    inputs
        .get(i)
        .and_then(|v| v.as_text())
        .ok_or_else(|| DataError::Runtime(format!("expected text at input {i}")))
}

fn tokens_input<'a>(inputs: &[&'a Vector], i: usize) -> Result<&'a [Span]> {
    inputs
        .get(i)
        .and_then(|v| v.as_tokens())
        .ok_or_else(|| DataError::Runtime(format!("expected tokens at input {i}")))
}

fn one_input<'a>(inputs: &[&'a Vector]) -> Result<&'a Vector> {
    match inputs {
        [v] => Ok(v),
        _ => Err(DataError::Runtime(format!(
            "expected exactly one input, got {}",
            inputs.len()
        ))),
    }
}

fn one_batch<'a>(inputs: &[&'a ColumnBatch]) -> Result<&'a ColumnBatch> {
    match inputs {
        [b] => Ok(b),
        _ => Err(DataError::Runtime(format!(
            "expected exactly one input batch, got {}",
            inputs.len()
        ))),
    }
}

fn batch_at<'a>(inputs: &[&'a ColumnBatch], i: usize) -> Result<&'a ColumnBatch> {
    inputs
        .get(i)
        .copied()
        .ok_or_else(|| DataError::Runtime(format!("expected input batch at {i}")))
}

impl Op {
    /// The operator kind.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::CsvParse(_) => OpKind::CsvParse,
            Op::Tokenizer(_) => OpKind::Tokenizer,
            Op::CharNgram(_) => OpKind::CharNgram,
            Op::WordNgram(_) => OpKind::WordNgram,
            Op::HashingVectorizer(_) => OpKind::HashingVectorizer,
            Op::Concat(_) => OpKind::Concat,
            Op::Normalizer(_) => OpKind::Normalizer,
            Op::Scaler(_) => OpKind::Scaler,
            Op::Imputer(_) => OpKind::Imputer,
            Op::Binner(_) => OpKind::Binner,
            Op::OneHot(_) => OpKind::OneHot,
            Op::Linear(_) => OpKind::Linear,
            Op::NaiveBayes(_) => OpKind::NaiveBayes,
            Op::TreeEnsemble(_) => OpKind::TreeEnsemble,
            Op::MulticlassTree(_) => OpKind::MulticlassTree,
            Op::TreeFeaturizer(_) => OpKind::TreeFeaturizer,
            Op::KMeans(_) => OpKind::KMeans,
            Op::Pca(_) => OpKind::Pca,
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(_) => OpKind::FaultInjector,
        }
    }

    /// Optimizer annotations (paper §4.1.2).
    pub fn annotations(&self) -> Annotations {
        match self {
            Op::CsvParse(p) => p.annotations(),
            Op::Tokenizer(p) => p.annotations(),
            Op::CharNgram(p) | Op::WordNgram(p) => p.annotations(),
            Op::HashingVectorizer(p) => p.annotations(),
            Op::Concat(p) => p.annotations(),
            Op::Normalizer(p) => p.annotations(),
            Op::Scaler(p) => p.annotations(),
            Op::Imputer(p) => p.annotations(),
            Op::Binner(p) => p.annotations(),
            Op::OneHot(p) => p.annotations(),
            Op::Linear(p) => p.annotations(),
            Op::NaiveBayes(p) => p.annotations(),
            Op::TreeEnsemble(p) | Op::TreeFeaturizer(p) => p.annotations(),
            Op::MulticlassTree(p) => p.annotations(),
            Op::KMeans(p) => p.annotations(),
            Op::Pca(p) => p.annotations(),
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(p) => p.annotations(),
        }
    }

    /// Number of inputs this operator consumes.
    pub fn n_inputs(&self) -> usize {
        match self {
            Op::WordNgram(_) => 2,
            Op::Concat(p) => p.input_dims.len(),
            _ => 1,
        }
    }

    /// Schema propagation: validates `inputs` and returns the output type.
    ///
    /// This single function implements the schema-validation rules of the
    /// `InputGraphValidatorStep` for every operator class.
    pub fn output_type(&self, inputs: &[ColumnType]) -> Result<ColumnType> {
        let name = self.kind().name();
        let want_n = self.n_inputs();
        if inputs.len() != want_n {
            return Err(DataError::SchemaMismatch {
                operator: name.into(),
                expected: format!("{want_n} inputs"),
                found: format!("{} inputs", inputs.len()),
            });
        }
        let numeric = |i: usize, dim: usize| -> Result<()> {
            match inputs[i] {
                t if t.is_numeric() && t.dimension() == Some(dim) => Ok(()),
                t => Err(DataError::SchemaMismatch {
                    operator: name.into(),
                    expected: format!("numeric[{dim}]"),
                    found: t.to_string(),
                }),
            }
        };
        let text =
            |i: usize| -> Result<()> { Schema::check_compat(name, ColumnType::Text, inputs[i]) };
        match self {
            Op::CsvParse(p) => {
                text(0)?;
                Ok(p.output_type())
            }
            Op::Tokenizer(_) => {
                text(0)?;
                Ok(ColumnType::TokenList)
            }
            Op::CharNgram(p) => {
                text(0)?;
                Ok(ColumnType::F32Sparse { len: p.dim() })
            }
            Op::WordNgram(p) => {
                text(0)?;
                Schema::check_compat(name, ColumnType::TokenList, inputs[1])?;
                Ok(ColumnType::F32Sparse { len: p.dim() })
            }
            Op::HashingVectorizer(p) => {
                text(0)?;
                Ok(ColumnType::F32Sparse { len: p.dim() })
            }
            Op::Concat(p) => {
                for (i, &d) in p.input_dims.iter().enumerate() {
                    numeric(i, d as usize)?;
                }
                Ok(ColumnType::F32Sparse { len: p.dim() })
            }
            Op::Normalizer(p) => {
                numeric(0, p.dim as usize)?;
                Ok(inputs[0])
            }
            Op::Scaler(p) => {
                numeric(0, p.dim())?;
                Ok(ColumnType::F32Dense { len: p.dim() })
            }
            Op::Imputer(p) => {
                numeric(0, p.dim())?;
                Ok(ColumnType::F32Dense { len: p.dim() })
            }
            Op::Binner(p) => {
                numeric(0, p.dim())?;
                Ok(ColumnType::F32Dense { len: p.dim() })
            }
            Op::OneHot(p) => {
                numeric(0, p.input_dim as usize)?;
                Ok(ColumnType::F32Dense {
                    len: p.output_dim(),
                })
            }
            Op::Linear(p) => {
                numeric(0, p.dim())?;
                Ok(ColumnType::F32Scalar)
            }
            Op::NaiveBayes(p) => {
                numeric(0, p.dim as usize)?;
                Ok(ColumnType::F32Dense { len: p.classes() })
            }
            Op::TreeEnsemble(p) => {
                numeric(0, p.input_dim as usize)?;
                Ok(ColumnType::F32Scalar)
            }
            Op::MulticlassTree(p) => {
                numeric(0, p.input_dim() as usize)?;
                Ok(ColumnType::F32Dense { len: p.classes() })
            }
            Op::TreeFeaturizer(p) => {
                numeric(0, p.input_dim as usize)?;
                Ok(ColumnType::F32Sparse {
                    len: p.total_leaves(),
                })
            }
            Op::KMeans(p) => {
                numeric(0, p.dim as usize)?;
                Ok(ColumnType::F32Dense { len: p.k as usize })
            }
            Op::Pca(p) => {
                numeric(0, p.dim as usize)?;
                Ok(ColumnType::F32Dense { len: p.m as usize })
            }
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(_) => {
                text(0)?;
                Ok(ColumnType::Text)
            }
        }
    }

    /// Executes the operator's kernel: `inputs` → `out`.
    pub fn apply(&self, inputs: &[&Vector], out: &mut Vector) -> Result<()> {
        match self {
            Op::CsvParse(p) => p.apply(text_input(inputs, 0)?, out),
            Op::Tokenizer(p) => p.apply(text_input(inputs, 0)?, out),
            Op::CharNgram(p) => p.apply_char(text_input(inputs, 0)?, out),
            Op::WordNgram(p) => {
                let text = text_input(inputs, 0)?;
                let toks = tokens_input(inputs, 1)?;
                p.apply_word(text, toks, out)
            }
            Op::HashingVectorizer(p) => p.apply(text_input(inputs, 0)?, out),
            Op::Concat(p) => p.apply(inputs, out),
            Op::Normalizer(p) => p.apply(one_input(inputs)?, out),
            Op::Scaler(p) => p.apply(one_input(inputs)?, out),
            Op::Imputer(p) => p.apply(one_input(inputs)?, out),
            Op::Binner(p) => p.apply(one_input(inputs)?, out),
            Op::OneHot(p) => p.apply(one_input(inputs)?, out),
            Op::Linear(p) => p.apply(one_input(inputs)?, out),
            Op::NaiveBayes(p) => p.apply(one_input(inputs)?, out),
            Op::TreeEnsemble(p) => p.apply(one_input(inputs)?, out),
            Op::MulticlassTree(p) => p.apply(one_input(inputs)?, out),
            Op::TreeFeaturizer(p) => p.apply_featurize(one_input(inputs)?, out),
            Op::KMeans(p) => p.apply(one_input(inputs)?, out),
            Op::Pca(p) => p.apply(one_input(inputs)?, out),
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(p) => p.apply(text_input(inputs, 0)?, out),
        }
    }

    /// Executes the operator with input 0 supplied as a **borrowed row**
    /// (`rest` holds inputs 1..): the borrowed-source execute of the
    /// request-response engine, which scores straight off the wire-assembled
    /// row instead of copying it into the pooled slot-0 vector first.
    ///
    /// Returns `Ok(true)` when the operator ran off the borrowed row
    /// (bitwise-identical arithmetic to [`Op::apply`] — the same row-level
    /// kernels the batch path uses), `Ok(false)` when this operator has no
    /// borrowed kernel for the row shape and the caller must materialize
    /// the source once and retry through [`Op::apply`].
    pub fn apply_row(&self, row: ColRef<'_>, rest: &[&Vector], out: &mut Vector) -> Result<bool> {
        match (self, row) {
            (Op::CsvParse(p), ColRef::Text(s)) => p.apply(s, out).map(|()| true),
            (Op::Tokenizer(p), ColRef::Text(s)) => p.apply(s, out).map(|()| true),
            (Op::CharNgram(p), ColRef::Text(s)) => p.apply_char(s, out).map(|()| true),
            (Op::WordNgram(p), ColRef::Text(s)) => {
                let toks = tokens_input(rest, 0)?;
                p.apply_word(s, toks, out).map(|()| true)
            }
            (Op::HashingVectorizer(p), ColRef::Text(s)) => p.apply(s, out).map(|()| true),
            (
                Op::Linear(p),
                row @ (ColRef::Dense(_) | ColRef::Sparse { .. } | ColRef::Scalar(_)),
            ) => {
                // Same kernel chain as `LinearParams::apply`: dot + bias +
                // link over the one shared row-level dot product.
                let z = p.partial_dot_row(row, 0)? + p.bias;
                match out {
                    Vector::Scalar(s) => {
                        *s = p.link(z);
                        Ok(true)
                    }
                    other => Err(DataError::Runtime(format!(
                        "linear model output must be scalar, got {:?}",
                        other.column_type()
                    ))),
                }
            }
            // Dense featurizer chain: scaler and PCA score straight off the
            // borrowed dense row through the same row helpers their apply
            // and eval_batch kernels share, so dense pipelines no longer
            // pay the one-time slot-0 materialization copy. Shape
            // mismatches fall back (`Ok(false)`) so the classic path
            // reports its usual errors.
            (Op::Scaler(p), ColRef::Dense(x)) if x.len() == p.dim() => match out {
                Vector::Dense(y) if y.len() == p.dim() => {
                    p.scale_row(x, y);
                    Ok(true)
                }
                _ => Ok(false),
            },
            (Op::Pca(p), ColRef::Dense(x)) if x.len() == p.dim as usize => match out {
                Vector::Dense(y) if y.len() == p.m as usize => {
                    p.project_row(x, y);
                    Ok(true)
                }
                _ => Ok(false),
            },
            // No borrowed kernel for this (operator, row shape): the caller
            // falls back to a one-time slot-0 materialization.
            _ => Ok(false),
        }
    }

    /// Executes the operator's columnar batch kernel: `inputs` → `out`,
    /// whole chunk at a time.
    ///
    /// Every operator family has a batch kernel; families where batching
    /// genuinely vectorizes (dense math: scaler, imputer, binner, one-hot,
    /// linear, bayes, kmeans, pca, trees) traverse the chunk's row-major
    /// storage flat, while text featurizers iterate rows through the same
    /// inner loops as [`Op::apply`] — either way the per-row arithmetic is
    /// identical, so batch scores are bitwise-equal to per-record scores.
    pub fn apply_batch(&self, inputs: &[&ColumnBatch], out: &mut ColumnBatch) -> Result<()> {
        match self {
            Op::CsvParse(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::Tokenizer(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::CharNgram(p) => p.eval_batch_char(one_batch(inputs)?, out),
            Op::WordNgram(p) => {
                let text = batch_at(inputs, 0)?;
                let toks = batch_at(inputs, 1)?;
                p.eval_batch_word(text, toks, out)
            }
            Op::HashingVectorizer(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::Concat(p) => p.eval_batch(inputs, out),
            Op::Normalizer(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::Scaler(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::Imputer(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::Binner(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::OneHot(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::Linear(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::NaiveBayes(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::TreeEnsemble(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::MulticlassTree(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::TreeFeaturizer(p) => p.eval_batch_featurize(one_batch(inputs)?, out),
            Op::KMeans(p) => p.eval_batch(one_batch(inputs)?, out),
            Op::Pca(p) => p.eval_batch(one_batch(inputs)?, out),
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(p) => p.eval_batch(one_batch(inputs)?, out),
        }
    }

    /// Maps a raw model-file section checksum to the dedup checksum an
    /// operator of kind `kind` would report.
    ///
    /// This lets a loader decide — *without deserializing the section* —
    /// whether the Object Store already holds the parameters, which is what
    /// makes PRETZEL's model loading fast (paper §5.1: "keeping track of
    /// pipelines' parameters also helps reducing the time to load models").
    pub fn checksum_for_section(kind: &str, section_checksum: u64) -> u64 {
        match kind {
            // Kinds sharing a params type salt the checksum with the kind
            // name (see `Op::checksum`).
            "CharNgram" | "WordNgram" | "TreeEnsemble" | "TreeFeaturizer" => {
                section_checksum ^ pretzel_data::hash::fnv1a(kind.as_bytes())
            }
            _ => section_checksum,
        }
    }

    /// Dedup checksum of the serialized parameters (paper §4.1.3).
    pub fn checksum(&self) -> u64 {
        match self {
            Op::CsvParse(p) => p.checksum(),
            Op::Tokenizer(p) => p.checksum(),
            // Char and Word ngram share a params type but must never dedup
            // against each other: mix the kind into the checksum.
            Op::CharNgram(p) | Op::WordNgram(p) => {
                p.checksum() ^ pretzel_data::hash::fnv1a(self.kind().name().as_bytes())
            }
            Op::HashingVectorizer(p) => p.checksum(),
            Op::Concat(p) => p.checksum(),
            Op::Normalizer(p) => p.checksum(),
            Op::Scaler(p) => p.checksum(),
            Op::Imputer(p) => p.checksum(),
            Op::Binner(p) => p.checksum(),
            Op::OneHot(p) => p.checksum(),
            Op::Linear(p) => p.checksum(),
            Op::NaiveBayes(p) => p.checksum(),
            Op::TreeEnsemble(p) | Op::TreeFeaturizer(p) => {
                p.checksum() ^ pretzel_data::hash::fnv1a(self.kind().name().as_bytes())
            }
            Op::MulticlassTree(p) => p.checksum(),
            Op::KMeans(p) => p.checksum(),
            Op::Pca(p) => p.checksum(),
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(p) => p.checksum(),
        }
    }

    /// Heap bytes of the parameter object (memory experiments).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Op::CsvParse(p) => p.heap_bytes(),
            Op::Tokenizer(p) => p.heap_bytes(),
            Op::CharNgram(p) | Op::WordNgram(p) => p.heap_bytes(),
            Op::HashingVectorizer(p) => p.heap_bytes(),
            Op::Concat(p) => p.heap_bytes(),
            Op::Normalizer(p) => p.heap_bytes(),
            Op::Scaler(p) => p.heap_bytes(),
            Op::Imputer(p) => p.heap_bytes(),
            Op::Binner(p) => p.heap_bytes(),
            Op::OneHot(p) => p.heap_bytes(),
            Op::Linear(p) => p.heap_bytes(),
            Op::NaiveBayes(p) => p.heap_bytes(),
            Op::TreeEnsemble(p) | Op::TreeFeaturizer(p) => p.heap_bytes(),
            Op::MulticlassTree(p) => p.heap_bytes(),
            Op::KMeans(p) => p.heap_bytes(),
            Op::Pca(p) => p.heap_bytes(),
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(p) => p.heap_bytes(),
        }
    }

    /// Address of the shared parameter allocation — pointer-equal operators
    /// provably share memory (used by sharing tests and the memory harness).
    pub fn params_addr(&self) -> usize {
        match self {
            Op::CsvParse(p) => Arc::as_ptr(p) as usize,
            Op::Tokenizer(p) => Arc::as_ptr(p) as usize,
            Op::CharNgram(p) | Op::WordNgram(p) => Arc::as_ptr(p) as usize,
            Op::HashingVectorizer(p) => Arc::as_ptr(p) as usize,
            Op::Concat(p) => Arc::as_ptr(p) as usize,
            Op::Normalizer(p) => Arc::as_ptr(p) as usize,
            Op::Scaler(p) => Arc::as_ptr(p) as usize,
            Op::Imputer(p) => Arc::as_ptr(p) as usize,
            Op::Binner(p) => Arc::as_ptr(p) as usize,
            Op::OneHot(p) => Arc::as_ptr(p) as usize,
            Op::Linear(p) => Arc::as_ptr(p) as usize,
            Op::NaiveBayes(p) => Arc::as_ptr(p) as usize,
            Op::TreeEnsemble(p) | Op::TreeFeaturizer(p) => Arc::as_ptr(p) as usize,
            Op::MulticlassTree(p) => Arc::as_ptr(p) as usize,
            Op::KMeans(p) => Arc::as_ptr(p) as usize,
            Op::Pca(p) => Arc::as_ptr(p) as usize,
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(p) => Arc::as_ptr(p) as usize,
        }
    }

    /// Serializes into a model-file section named `op{index}.{Kind}`.
    pub fn to_section(&self, index: usize) -> Section {
        let entries = match self {
            Op::CsvParse(p) => p.to_entries(),
            Op::Tokenizer(p) => p.to_entries(),
            Op::CharNgram(p) | Op::WordNgram(p) => p.to_entries(),
            Op::HashingVectorizer(p) => p.to_entries(),
            Op::Concat(p) => p.to_entries(),
            Op::Normalizer(p) => p.to_entries(),
            Op::Scaler(p) => p.to_entries(),
            Op::Imputer(p) => p.to_entries(),
            Op::Binner(p) => p.to_entries(),
            Op::OneHot(p) => p.to_entries(),
            Op::Linear(p) => p.to_entries(),
            Op::NaiveBayes(p) => p.to_entries(),
            Op::TreeEnsemble(p) | Op::TreeFeaturizer(p) => p.to_entries(),
            Op::MulticlassTree(p) => p.to_entries(),
            Op::KMeans(p) => p.to_entries(),
            Op::Pca(p) => p.to_entries(),
            #[cfg(feature = "fault-op")]
            Op::FaultInjector(p) => p.to_entries(),
        };
        let checksum = pretzel_data::serde_bin::section_checksum(&entries);
        Section {
            name: format!("op{index}.{}", self.kind().name()),
            checksum,
            entries,
        }
    }

    /// Parses an operator back from a model-file section.
    pub fn from_section(section: &Section) -> Result<Self> {
        let kind = section
            .name
            .split_once('.')
            .map(|(_, k)| k)
            .ok_or_else(|| {
                DataError::Codec(format!("section name `{}` has no kind", section.name))
            })?;
        Ok(match kind {
            "CsvParse" => Op::CsvParse(Arc::new(CsvParams::from_entries(section)?)),
            "Tokenizer" => Op::Tokenizer(Arc::new(TokenizerParams::from_entries(section)?)),
            "CharNgram" => Op::CharNgram(Arc::new(NgramParams::from_entries(section)?)),
            "WordNgram" => Op::WordNgram(Arc::new(NgramParams::from_entries(section)?)),
            "HashingVectorizer" => {
                Op::HashingVectorizer(Arc::new(HashingParams::from_entries(section)?))
            }
            "Concat" => Op::Concat(Arc::new(ConcatParams::from_entries(section)?)),
            "Normalizer" => Op::Normalizer(Arc::new(NormalizerParams::from_entries(section)?)),
            "Scaler" => Op::Scaler(Arc::new(ScalerParams::from_entries(section)?)),
            "Imputer" => Op::Imputer(Arc::new(ImputerParams::from_entries(section)?)),
            "Binner" => Op::Binner(Arc::new(BinnerParams::from_entries(section)?)),
            "OneHot" => Op::OneHot(Arc::new(OneHotParams::from_entries(section)?)),
            "Linear" => Op::Linear(Arc::new(LinearParams::from_entries(section)?)),
            "NaiveBayes" => Op::NaiveBayes(Arc::new(NaiveBayesParams::from_entries(section)?)),
            "TreeEnsemble" => Op::TreeEnsemble(Arc::new(EnsembleParams::from_entries(section)?)),
            "MulticlassTree" => {
                Op::MulticlassTree(Arc::new(MulticlassTreeParams::from_entries(section)?))
            }
            "TreeFeaturizer" => {
                Op::TreeFeaturizer(Arc::new(EnsembleParams::from_entries(section)?))
            }
            "KMeans" => Op::KMeans(Arc::new(KMeansParams::from_entries(section)?)),
            "Pca" => Op::Pca(Arc::new(PcaParams::from_entries(section)?)),
            #[cfg(feature = "fault-op")]
            "FaultInjector" => Op::FaultInjector(Arc::new(FaultParams::from_entries(section)?)),
            other => return Err(DataError::Codec(format!("unknown operator kind `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feat::normalizer::{NormKind, NormalizerParams};
    use crate::feat::onehot::OneHotParams;
    use crate::linear::{LinearKind, LinearParams};
    use crate::text::ngram::NgramParams;
    use crate::text::tokenizer::TokenizerParams;
    use crate::tree::{EnsembleMode, EnsembleParams, Tree};

    fn keys(v: &[&str]) -> Vec<Box<str>> {
        v.iter().map(|s| Box::from(*s)).collect()
    }

    fn sa_ops() -> Vec<Op> {
        vec![
            Op::Tokenizer(Arc::new(TokenizerParams::whitespace_punct())),
            Op::CharNgram(Arc::new(NgramParams::new(3, false, true, keys(&["nic"])))),
            Op::WordNgram(Arc::new(NgramParams::new(
                1,
                true,
                true,
                keys(&["nice", "bad"]),
            ))),
            Op::Linear(Arc::new(LinearParams::new(
                LinearKind::Logistic,
                vec![0.5, 1.0, -1.0],
                0.0,
            ))),
        ]
    }

    #[test]
    fn schema_propagation_through_sa_chain() {
        let ops = sa_ops();
        assert_eq!(
            ops[0].output_type(&[ColumnType::Text]).unwrap(),
            ColumnType::TokenList
        );
        assert_eq!(
            ops[1].output_type(&[ColumnType::Text]).unwrap(),
            ColumnType::F32Sparse { len: 1 }
        );
        assert_eq!(
            ops[2]
                .output_type(&[ColumnType::Text, ColumnType::TokenList])
                .unwrap(),
            ColumnType::F32Sparse { len: 2 }
        );
        assert_eq!(
            ops[3]
                .output_type(&[ColumnType::F32Sparse { len: 3 }])
                .unwrap(),
            ColumnType::F32Scalar
        );
    }

    #[test]
    fn schema_mismatch_reported_with_operator_name() {
        let ops = sa_ops();
        let err = ops[1].output_type(&[ColumnType::F32Scalar]).unwrap_err();
        assert!(matches!(err, DataError::SchemaMismatch { operator, .. }
            if operator == "CharNgram"));
        let err2 = ops[3].output_type(&[ColumnType::Text]).unwrap_err();
        assert!(matches!(err2, DataError::SchemaMismatch { .. }));
    }

    #[test]
    fn wrong_input_count_rejected() {
        let ops = sa_ops();
        assert!(ops[2].output_type(&[ColumnType::Text]).is_err());
    }

    #[test]
    fn apply_dispatch_word_ngram_end_to_end() {
        let tok = &sa_ops()[0];
        let wng = &sa_ops()[2];
        let text = Vector::Text("a NICE day".into());
        let mut toks = Vector::with_type(ColumnType::TokenList);
        tok.apply(&[&text], &mut toks).unwrap();
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 2 });
        wng.apply(&[&text, &toks], &mut out).unwrap();
        assert_eq!(out.to_dense(2).unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn checksums_distinguish_char_and_word_ngram() {
        // Same params type and content, different operator kind: must not
        // dedup against each other in the Object Store.
        let p = Arc::new(NgramParams::new(2, true, true, keys(&["ab"])));
        let c = Op::CharNgram(Arc::clone(&p));
        let w = Op::WordNgram(p);
        assert_ne!(c.checksum(), w.checksum());
    }

    #[test]
    fn checksums_distinguish_ensemble_and_featurizer() {
        let e = Arc::new(
            EnsembleParams::new(vec![Tree::leaf(1.0)], vec![1.0], EnsembleMode::Sum, 4).unwrap(),
        );
        assert_ne!(
            Op::TreeEnsemble(Arc::clone(&e)).checksum(),
            Op::TreeFeaturizer(e).checksum()
        );
    }

    #[test]
    fn clone_shares_params_allocation() {
        let op = sa_ops().remove(1);
        let copy = op.clone();
        assert_eq!(op.params_addr(), copy.params_addr());
    }

    #[test]
    fn section_round_trip_every_kind() {
        use crate::bayes::NaiveBayesParams;
        use crate::feat::binner::BinnerParams;
        use crate::feat::concat::ConcatParams;
        use crate::feat::imputer::ImputerParams;
        use crate::feat::normalizer::{NormKind, NormalizerParams};
        use crate::feat::onehot::OneHotParams;
        use crate::feat::scaler::ScalerParams;
        use crate::kmeans::KMeansParams;
        use crate::pca::PcaParams;
        use crate::text::csv::CsvParams;
        use crate::text::hashing::HashingParams;
        use crate::tree::MulticlassTreeParams;

        let ens =
            EnsembleParams::new(vec![Tree::leaf(2.0)], vec![1.0], EnsembleMode::Sum, 4).unwrap();
        let all: Vec<Op> = vec![
            Op::CsvParse(Arc::new(CsvParams::select_text(1))),
            Op::Tokenizer(Arc::new(TokenizerParams::whitespace_punct())),
            Op::CharNgram(Arc::new(NgramParams::new(3, false, true, keys(&["abc"])))),
            Op::WordNgram(Arc::new(NgramParams::new(2, true, true, keys(&["a b"])))),
            Op::HashingVectorizer(Arc::new(HashingParams::new(3, 64, true))),
            Op::Concat(Arc::new(ConcatParams::new(vec![2, 3]))),
            Op::Normalizer(Arc::new(NormalizerParams::new(NormKind::L2, 5))),
            Op::Scaler(Arc::new(ScalerParams::new(vec![0.0; 4], vec![1.0; 4]))),
            Op::Imputer(Arc::new(ImputerParams::new(vec![0.0; 4]))),
            Op::Binner(Arc::new(BinnerParams::new(vec![vec![0.5]; 4]))),
            Op::OneHot(Arc::new(OneHotParams::new(4, vec![(1, 3)]))),
            Op::Linear(Arc::new(LinearParams::new(
                LinearKind::Logistic,
                vec![1.0; 4],
                0.5,
            ))),
            Op::NaiveBayes(Arc::new(
                NaiveBayesParams::new(vec![-1.0, -2.0], vec![0.0; 8], 4).unwrap(),
            )),
            Op::TreeEnsemble(Arc::new(ens.clone())),
            Op::MulticlassTree(Arc::new(
                MulticlassTreeParams::new(vec![ens.clone(), ens.clone()]).unwrap(),
            )),
            Op::TreeFeaturizer(Arc::new(ens)),
            Op::KMeans(Arc::new(KMeansParams::new(vec![0.0; 8], 2, 4).unwrap())),
            Op::Pca(Arc::new(
                PcaParams::new(vec![0.0; 4], vec![0.0; 8], 2, 4).unwrap(),
            )),
        ];
        assert_eq!(all.len(), OpKind::ALL.len());
        for (i, op) in all.iter().enumerate() {
            let section = op.to_section(i);
            assert!(section.name.starts_with(&format!("op{i}.")));
            let parsed = Op::from_section(&section).unwrap();
            assert_eq!(parsed.kind(), op.kind(), "kind mismatch at {i}");
            assert_eq!(
                parsed.checksum(),
                op.checksum(),
                "checksum mismatch for {}",
                op.kind().name()
            );
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let section = Section {
            name: "op0.Quantum".into(),
            checksum: 0,
            entries: vec![],
        };
        assert!(Op::from_section(&section).is_err());
        let unnamed = Section {
            name: "weird".into(),
            checksum: 0,
            entries: vec![],
        };
        assert!(Op::from_section(&unnamed).is_err());
    }

    #[test]
    fn batch_kernels_match_per_record_for_every_family() {
        use crate::synth;
        use pretzel_data::ColumnBatch;

        // One op per family with numeric input, exercised over a small
        // batch of dense records; batch rows must be bitwise-equal to
        // per-record outputs.
        let dim = 8;
        let numeric_ops: Vec<Op> = vec![
            Op::Scaler(Arc::new(synth::scaler(1, dim))),
            Op::Imputer(Arc::new(synth::imputer(2, dim))),
            Op::Binner(Arc::new(synth::binner(3, dim, 4))),
            Op::OneHot(Arc::new(OneHotParams::new(
                dim as u32,
                vec![(1, 3), (5, 2)],
            ))),
            Op::Normalizer(Arc::new(NormalizerParams::new(NormKind::L2, dim as u32))),
            Op::Linear(Arc::new(synth::linear(4, dim, LinearKind::Logistic))),
            Op::NaiveBayes(Arc::new(synth::naive_bayes(5, 3, dim))),
            Op::TreeEnsemble(Arc::new(synth::ensemble(
                6,
                dim,
                4,
                3,
                EnsembleMode::Average,
            ))),
            Op::TreeFeaturizer(Arc::new(synth::ensemble(7, dim, 3, 3, EnsembleMode::Sum))),
            Op::KMeans(Arc::new(synth::kmeans(8, 4, dim))),
            Op::Pca(Arc::new(synth::pca(9, 3, dim))),
        ];
        let records: Vec<Vector> = (0..5)
            .map(|r| {
                Vector::Dense(
                    (0..dim)
                        .map(|i| ((r * dim + i) as f32 * 0.37).sin() * 3.0)
                        .collect(),
                )
            })
            .collect();
        for op in numeric_ops {
            let out_ty = op
                .output_type(&[ColumnType::F32Dense { len: dim }])
                .unwrap();
            // Batch path.
            let mut input = ColumnBatch::with_type(ColumnType::F32Dense { len: dim });
            for r in &records {
                input.push_vector(r).unwrap();
            }
            let mut out_batch = ColumnBatch::with_type(out_ty);
            op.apply_batch(&[&input], &mut out_batch).unwrap();
            assert_eq!(out_batch.rows(), records.len(), "{}", op.kind().name());
            // Per-record reference.
            for (i, r) in records.iter().enumerate() {
                let mut out = Vector::with_type(out_ty);
                op.apply(&[r], &mut out).unwrap();
                let mut row_as_batch = ColumnBatch::with_type(out_ty);
                row_as_batch.push_vector(&out).unwrap();
                assert_eq!(
                    format!("{:?}", out_batch.row(i)),
                    format!("{:?}", row_as_batch.row(0)),
                    "{} row {i} diverges",
                    op.kind().name()
                );
            }
        }
    }

    #[test]
    fn batch_text_chain_matches_per_record() {
        use pretzel_data::ColumnBatch;
        let tok = Op::Tokenizer(Arc::new(TokenizerParams::whitespace_punct()));
        let wng = &sa_ops()[2];
        let cng = &sa_ops()[1];
        let lines = ["a NICE day", "", "bad nice bad", "punctuation, too!"];

        let mut text = ColumnBatch::with_type(ColumnType::Text);
        for l in &lines {
            text.push_text(l).unwrap();
        }
        let mut toks = ColumnBatch::with_type(ColumnType::TokenList);
        tok.apply_batch(&[&text], &mut toks).unwrap();
        let mut cgrams = ColumnBatch::with_type(ColumnType::F32Sparse { len: 1 });
        cng.apply_batch(&[&text], &mut cgrams).unwrap();
        let mut wgrams = ColumnBatch::with_type(ColumnType::F32Sparse { len: 2 });
        wng.apply_batch(&[&text, &toks], &mut wgrams).unwrap();

        for (i, line) in lines.iter().enumerate() {
            let tv = Vector::Text(line.to_string());
            let mut tok_v = Vector::with_type(ColumnType::TokenList);
            tok.apply(&[&tv], &mut tok_v).unwrap();
            let mut cg = Vector::with_type(ColumnType::F32Sparse { len: 1 });
            cng.apply(&[&tv], &mut cg).unwrap();
            let mut wg = Vector::with_type(ColumnType::F32Sparse { len: 2 });
            wng.apply(&[&tv, &tok_v], &mut wg).unwrap();

            let mut ref_toks = ColumnBatch::with_type(ColumnType::TokenList);
            ref_toks.push_vector(&tok_v).unwrap();
            assert_eq!(
                format!("{:?}", toks.row(i)),
                format!("{:?}", ref_toks.row(0)),
                "tokens row {i}"
            );
            let mut ref_cg = ColumnBatch::with_type(ColumnType::F32Sparse { len: 1 });
            ref_cg.push_vector(&cg).unwrap();
            assert_eq!(
                format!("{:?}", cgrams.row(i)),
                format!("{:?}", ref_cg.row(0)),
                "char ngram row {i}"
            );
            let mut ref_wg = ColumnBatch::with_type(ColumnType::F32Sparse { len: 2 });
            ref_wg.push_vector(&wg).unwrap();
            assert_eq!(
                format!("{:?}", wgrams.row(i)),
                format!("{:?}", ref_wg.row(0)),
                "word ngram row {i}"
            );
        }
    }

    #[test]
    fn predictor_classification() {
        assert!(OpKind::Linear.is_predictor());
        assert!(OpKind::TreeEnsemble.is_predictor());
        assert!(!OpKind::Tokenizer.is_predictor());
        assert!(!OpKind::Concat.is_predictor());
        assert!(!OpKind::TreeFeaturizer.is_predictor());
    }
}
