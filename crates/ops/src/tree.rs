//! Tree-based models: single trees, ensembles, one-vs-all multiclass trees
//! and the TreeFeaturizer.
//!
//! The Attendee Count pipelines "comprise several ML models forming an
//! ensemble: ... a TreeFeaturizer, and multi-class tree-based classifier,
//! all fed into a final tree (or forest) rendering the prediction"
//! (paper §5, Table 1). All tree operators share one flat node encoding.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::batch::ColRef;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// A single decision tree in flat-array form.
///
/// Internal node `i` tests `features[i] <= thresholds[i]` and branches to
/// `left[i]` / `right[i]`. A child value `c >= 0` is an internal node index;
/// `c < 0` encodes leaf `!c` (bitwise-not). Children always have a *larger*
/// index than their parent, which makes traversal termination a structural
/// property (checked by [`Tree::validate`]) rather than a runtime hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    /// Feature tested at each internal node.
    pub features: Vec<u32>,
    /// Threshold at each internal node.
    pub thresholds: Vec<f32>,
    /// Left child (internal index or `!leaf`).
    pub left: Vec<i32>,
    /// Right child (internal index or `!leaf`).
    pub right: Vec<i32>,
    /// Value at each leaf.
    pub leaf_values: Vec<f32>,
}

impl Tree {
    /// A single-leaf tree returning `value` for any input.
    pub fn leaf(value: f32) -> Self {
        Tree {
            features: vec![],
            thresholds: vec![],
            left: vec![],
            right: vec![],
            leaf_values: vec![value],
        }
    }

    /// Number of internal nodes.
    pub fn internal_nodes(&self) -> usize {
        self.features.len()
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.leaf_values.len()
    }

    /// Structural validation: parallel arrays, child ordering, index ranges.
    pub fn validate(&self, input_dim: usize) -> Result<()> {
        let n = self.features.len();
        if self.thresholds.len() != n || self.left.len() != n || self.right.len() != n {
            return Err(DataError::Codec("tree arrays are not parallel".into()));
        }
        if self.leaf_values.is_empty() {
            return Err(DataError::Codec("tree has no leaves".into()));
        }
        if n == 0 && self.leaf_values.len() != 1 {
            return Err(DataError::Codec("leaf-only tree must have one leaf".into()));
        }
        for i in 0..n {
            if self.features[i] as usize >= input_dim {
                return Err(DataError::Codec(format!(
                    "tree node {i} tests feature {} beyond input dim {input_dim}",
                    self.features[i]
                )));
            }
            for c in [self.left[i], self.right[i]] {
                if c >= 0 {
                    let c = c as usize;
                    if c <= i || c >= n {
                        return Err(DataError::Codec(format!(
                            "tree node {i} has non-forward child {c}"
                        )));
                    }
                } else {
                    let leaf = !c as usize;
                    if leaf >= self.leaf_values.len() {
                        return Err(DataError::Codec(format!(
                            "tree node {i} references missing leaf {leaf}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluates the tree, returning `(leaf_index, leaf_value)`.
    pub fn eval(&self, x: impl Fn(usize) -> f32) -> (usize, f32) {
        if self.features.is_empty() {
            return (0, self.leaf_values[0]);
        }
        let mut node = 0usize;
        loop {
            let next = if x(self.features[node] as usize) <= self.thresholds[node] {
                self.left[node]
            } else {
                self.right[node]
            };
            if next < 0 {
                let leaf = !next as usize;
                return (leaf, self.leaf_values[leaf]);
            }
            node = next as usize;
        }
    }

    fn write(&self, buf: &mut Vec<u8>) {
        wire::put_u32s(buf, &self.features);
        wire::put_f32s(buf, &self.thresholds);
        wire::put_u32(buf, self.left.len() as u32);
        for &v in &self.left {
            wire::put_u32(buf, v as u32);
        }
        wire::put_u32(buf, self.right.len() as u32);
        for &v in &self.right {
            wire::put_u32(buf, v as u32);
        }
        wire::put_f32s(buf, &self.leaf_values);
    }

    fn read(cur: &mut Cursor<'_>) -> Result<Self> {
        let features = cur.u32s()?;
        let thresholds = cur.f32s()?;
        let left = cur.u32s()?.into_iter().map(|v| v as i32).collect();
        let right = cur.u32s()?.into_iter().map(|v| v as i32).collect();
        let leaf_values = cur.f32s()?;
        Ok(Tree {
            features,
            thresholds,
            left,
            right,
            leaf_values,
        })
    }

    fn bytes(&self) -> usize {
        self.features.capacity() * 4
            + self.thresholds.capacity() * 4
            + self.left.capacity() * 4
            + self.right.capacity() * 4
            + self.leaf_values.capacity() * 4
    }
}

/// Reads feature `idx` from a numeric input vector.
///
/// Dense inputs index directly; sparse inputs binary-search; out-of-range
/// reads return 0 (trees validated against the input dim never do this, but
/// sparse semantics make absent == 0 the right default).
pub fn feature_value(input: &Vector, idx: usize) -> f32 {
    ColRef::from_vector(input).feature(idx)
}

/// How an ensemble combines member scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsembleMode {
    /// Sum of weighted scores (gradient-boosting style).
    Sum,
    /// Weighted average (random-forest style).
    Average,
}

/// Parameters of a tree ensemble regressor / scorer.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleParams {
    /// Member trees.
    pub trees: Vec<Tree>,
    /// Per-tree weights.
    pub weights: Vec<f32>,
    /// Combination mode.
    pub mode: EnsembleMode,
    /// Expected input dimensionality.
    pub input_dim: u32,
}

impl EnsembleParams {
    /// Creates an ensemble after validating every member tree.
    pub fn new(
        trees: Vec<Tree>,
        weights: Vec<f32>,
        mode: EnsembleMode,
        input_dim: u32,
    ) -> Result<Self> {
        if trees.len() != weights.len() || trees.is_empty() {
            return Err(DataError::Codec(format!(
                "ensemble with {} trees and {} weights",
                trees.len(),
                weights.len()
            )));
        }
        for t in &trees {
            t.validate(input_dim as usize)?;
        }
        Ok(EnsembleParams {
            trees,
            weights,
            mode,
            input_dim,
        })
    }

    /// Operator annotations: compute-bound (pointer chasing, no fusion win).
    pub fn annotations(&self) -> Annotations {
        Annotations::compute()
    }

    /// Total number of leaves across member trees (TreeFeaturizer dim).
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(Tree::leaves).sum()
    }

    /// Weighted ensemble score of one row, read through the feature
    /// accessor `x`. Shared by the per-record and batch kernels (and by
    /// [`MulticlassTreeParams`]), so their bitwise agreement rests on one
    /// implementation.
    pub fn score_row(&self, x: impl Fn(usize) -> f32) -> f32 {
        let mut acc = 0.0f32;
        for (t, &w) in self.trees.iter().zip(&self.weights) {
            acc += w * t.eval(&x).1;
        }
        if self.mode == EnsembleMode::Average {
            acc /= self.trees.len() as f32;
        }
        acc
    }

    /// Scores `input` into a scalar `out`.
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        self.check_input(input)?;
        let acc = self.score_row(|i| feature_value(input, i));
        match out {
            Vector::Scalar(s) => {
                *s = acc;
                Ok(())
            }
            other => Err(DataError::Runtime(format!(
                "ensemble output must be scalar, got {:?}",
                other.column_type()
            ))),
        }
    }

    /// TreeFeaturizer semantics: one-hot of each member's leaf index, packed
    /// into a sparse vector of dimension [`Self::total_leaves`].
    ///
    /// "The well-known trees-as-features trick": the leaf a sample lands in
    /// is a learned discretization of the input space.
    pub fn apply_featurize(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        self.check_input(input)?;
        match out {
            Vector::Sparse { dim, .. } if *dim as usize == self.total_leaves() => {}
            other => {
                return Err(DataError::Runtime(format!(
                    "tree featurizer wants sparse[{}], got {:?}",
                    self.total_leaves(),
                    other.column_type()
                )))
            }
        }
        out.reset();
        let mut offset = 0u32;
        for t in &self.trees {
            let (leaf, _) = t.eval(|i| feature_value(input, i));
            out.sparse_accumulate(offset + leaf as u32, 1.0);
            offset += t.leaves() as u32;
        }
        Ok(())
    }

    /// Batch kernel: scores every row of the chunk into a scalar batch
    /// through the same [`Self::score_row`] as the per-record kernel; the
    /// flat tree arrays stay cache-hot across rows.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        self.check_batch_input(input)?;
        let rows = input.rows();
        if out.column_type() != pretzel_data::ColumnType::F32Scalar {
            return Err(DataError::Runtime(format!(
                "ensemble output must be scalar, got {:?}",
                out.column_type()
            )));
        }
        let y = out.fill_scalar(rows)?;
        for (r, slot) in y.iter_mut().enumerate() {
            let row = input.row(r);
            *slot = self.score_row(|i| row.feature(i));
        }
        Ok(())
    }

    /// Batch TreeFeaturizer: leaf one-hots for every row, packed into one
    /// CSR batch (row construction identical to [`Self::apply_featurize`]).
    pub fn eval_batch_featurize(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        self.check_batch_input(input)?;
        match out {
            ColumnBatch::Sparse { dim, .. } if *dim as usize == self.total_leaves() => {}
            other => {
                return Err(DataError::Runtime(format!(
                    "tree featurizer wants sparse[{}] batch, got {:?}",
                    self.total_leaves(),
                    other.column_type()
                )))
            }
        }
        out.reset();
        for r in 0..input.rows() {
            let row = input.row(r);
            let mut srow = out.begin_sparse_row()?;
            let mut offset = 0u32;
            for t in &self.trees {
                let (leaf, _) = t.eval(|i| row.feature(i));
                srow.accumulate(offset + leaf as u32, 1.0);
                offset += t.leaves() as u32;
            }
            srow.finish();
        }
        Ok(())
    }

    fn check_input(&self, input: &Vector) -> Result<()> {
        match input.column_type().dimension() {
            Some(d) if d == self.input_dim as usize => Ok(()),
            other => Err(DataError::Runtime(format!(
                "ensemble wants numeric[{}], got {other:?}",
                self.input_dim
            ))),
        }
    }

    fn check_batch_input(&self, input: &ColumnBatch) -> Result<()> {
        match input.column_type().dimension() {
            Some(d) if d == self.input_dim as usize => Ok(()),
            other => Err(DataError::Runtime(format!(
                "ensemble wants numeric[{}] batch, got {other:?}",
                self.input_dim
            ))),
        }
    }
}

impl ParamBlob for EnsembleParams {
    const KIND: &'static str = "TreeEnsemble";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, if self.mode == EnsembleMode::Sum { 0 } else { 1 });
        wire::put_u32(&mut cfg, self.input_dim);
        let mut w = Vec::new();
        wire::put_f32s(&mut w, &self.weights);
        let mut trees = Vec::new();
        wire::put_u32(&mut trees, self.trees.len() as u32);
        for t in &self.trees {
            t.write(&mut trees);
        }
        vec![
            ("config".into(), cfg),
            ("weights".into(), w),
            ("trees".into(), trees),
        ]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cfg = Cursor::new(section.entry("config")?);
        let mode = if cfg.u32()? == 0 {
            EnsembleMode::Sum
        } else {
            EnsembleMode::Average
        };
        let input_dim = cfg.u32()?;
        let weights = Cursor::new(section.entry("weights")?).f32s()?;
        let mut cur = Cursor::new(section.entry("trees")?);
        let n = cur.u32()? as usize;
        let mut trees = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            trees.push(Tree::read(&mut cur)?);
        }
        EnsembleParams::new(trees, weights, mode, input_dim)
    }

    fn heap_bytes(&self) -> usize {
        self.weights.capacity() * 4
            + self.trees.capacity() * std::mem::size_of::<Tree>()
            + self.trees.iter().map(Tree::bytes).sum::<usize>()
    }
}

/// Parameters of a one-vs-all multiclass tree classifier.
///
/// One ensemble-of-one-or-more trees per class; the output is the dense
/// vector of per-class scores.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassTreeParams {
    /// One scorer per class.
    pub per_class: Vec<EnsembleParams>,
}

impl MulticlassTreeParams {
    /// Creates a multiclass classifier from per-class ensembles.
    pub fn new(per_class: Vec<EnsembleParams>) -> Result<Self> {
        if per_class.is_empty() {
            return Err(DataError::Codec("multiclass with zero classes".into()));
        }
        let dim = per_class[0].input_dim;
        if per_class.iter().any(|e| e.input_dim != dim) {
            return Err(DataError::Codec(
                "multiclass ensembles disagree on input dim".into(),
            ));
        }
        Ok(MulticlassTreeParams { per_class })
    }

    /// Number of classes (output dimensionality).
    pub fn classes(&self) -> usize {
        self.per_class.len()
    }

    /// Expected input dimensionality.
    pub fn input_dim(&self) -> u32 {
        self.per_class[0].input_dim
    }

    /// Operator annotations: compute-bound.
    pub fn annotations(&self) -> Annotations {
        Annotations::compute()
    }

    /// Per-class ensemble scores of one row, read through the feature
    /// accessor `x`. Shared by the per-record and batch kernels, so their
    /// bitwise agreement rests on one implementation.
    fn score_row(&self, x: impl Fn(usize) -> f32, y: &mut [f32]) {
        for (ens, slot) in self.per_class.iter().zip(y.iter_mut()) {
            *slot = ens.score_row(&x);
        }
    }

    /// Scores `input` into a dense per-class score vector.
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        match input.column_type().dimension() {
            Some(d) if d == self.input_dim() as usize => {}
            other => {
                return Err(DataError::Runtime(format!(
                    "multiclass wants numeric[{}], got {other:?}",
                    self.input_dim()
                )))
            }
        }
        match out {
            Vector::Dense(y) if y.len() == self.classes() => {
                self.score_row(|i| feature_value(input, i), y);
                Ok(())
            }
            other => Err(DataError::Runtime(format!(
                "multiclass output wants dense[{}], got {:?}",
                self.classes(),
                other.column_type()
            ))),
        }
    }

    /// Batch kernel: per-class ensemble scores for every row through the
    /// same [`Self::score_row`] as the per-record kernel.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let classes = self.classes();
        if out.column_type() != (pretzel_data::ColumnType::F32Dense { len: classes }) {
            return Err(DataError::Runtime(format!(
                "multiclass output wants dense[{classes}] batch, got {:?}",
                out.column_type()
            )));
        }
        match input.column_type().dimension() {
            Some(d) if d == self.input_dim() as usize => {}
            other => {
                return Err(DataError::Runtime(format!(
                    "multiclass wants numeric[{}] batch, got {other:?}",
                    self.input_dim()
                )))
            }
        }
        let rows = input.rows();
        let y = out.fill_dense(rows)?;
        for (r, yr) in y.chunks_exact_mut(classes).enumerate().take(rows) {
            let row = input.row(r);
            self.score_row(|i| row.feature(i), yr);
        }
        Ok(())
    }
}

impl ParamBlob for MulticlassTreeParams {
    const KIND: &'static str = "MulticlassTree";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut blob = Vec::new();
        wire::put_u32(&mut blob, self.per_class.len() as u32);
        for ens in &self.per_class {
            // Nested encoding: reuse the ensemble's own entries.
            let entries = ens.to_entries();
            wire::put_u32(&mut blob, entries.len() as u32);
            for (name, bytes) in entries {
                wire::put_str(&mut blob, &name);
                wire::put_u64(&mut blob, bytes.len() as u64);
                blob.extend_from_slice(&bytes);
            }
        }
        vec![("classes".into(), blob)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cur = Cursor::new(section.entry("classes")?);
        let n = cur.u32()? as usize;
        let mut per_class = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            let n_entries = cur.u32()? as usize;
            let mut entries = Vec::with_capacity(n_entries.min(16));
            for _ in 0..n_entries {
                let name = cur.str()?;
                let bytes = cur.bytes()?.to_vec();
                entries.push((name, bytes));
            }
            let inner = Section {
                name: "class".into(),
                checksum: 0,
                entries,
            };
            per_class.push(EnsembleParams::from_entries(&inner)?);
        }
        MulticlassTreeParams::new(per_class)
    }

    fn heap_bytes(&self) -> usize {
        self.per_class.iter().map(|e| e.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    /// A depth-2 stump: x[0] <= 1.0 ? (x[1] <= 0.5 ? 10 : 20) : 30.
    fn sample_tree() -> Tree {
        Tree {
            features: vec![0, 1],
            thresholds: vec![1.0, 0.5],
            left: vec![1, !0],
            right: vec![!2, !1],
            leaf_values: vec![10.0, 20.0, 30.0],
        }
    }

    #[test]
    fn eval_walks_both_branches() {
        let t = sample_tree();
        assert_eq!(t.eval(|i| [0.0, 0.0][i]), (0, 10.0));
        assert_eq!(t.eval(|i| [0.0, 1.0][i]), (1, 20.0));
        assert_eq!(t.eval(|i| [5.0, 0.0][i]), (2, 30.0));
    }

    #[test]
    fn leaf_tree_is_constant() {
        let t = Tree::leaf(7.0);
        assert_eq!(t.eval(|_| 123.0), (0, 7.0));
        t.validate(0).unwrap();
    }

    #[test]
    fn validate_rejects_backward_children() {
        let mut t = sample_tree();
        t.left[1] = 0; // points back to the root: potential cycle
        assert!(t.validate(2).is_err());
    }

    #[test]
    fn validate_rejects_bad_feature_and_leaf() {
        let mut t = sample_tree();
        t.features[0] = 9;
        assert!(t.validate(2).is_err());
        let mut t2 = sample_tree();
        t2.right[1] = !9;
        assert!(t2.validate(2).is_err());
    }

    #[test]
    fn ensemble_sum_and_average() {
        let trees = vec![Tree::leaf(1.0), Tree::leaf(3.0)];
        let sum = EnsembleParams::new(trees.clone(), vec![1.0, 1.0], EnsembleMode::Sum, 2).unwrap();
        let avg = EnsembleParams::new(trees, vec![1.0, 1.0], EnsembleMode::Average, 2).unwrap();
        let x = Vector::Dense(vec![0.0, 0.0]);
        let mut out = Vector::Scalar(0.0);
        sum.apply(&x, &mut out).unwrap();
        assert_eq!(out.as_scalar().unwrap(), 4.0);
        avg.apply(&x, &mut out).unwrap();
        assert_eq!(out.as_scalar().unwrap(), 2.0);
    }

    #[test]
    fn featurizer_one_hot_per_tree() {
        let ens = EnsembleParams::new(
            vec![sample_tree(), Tree::leaf(0.0)],
            vec![1.0, 1.0],
            EnsembleMode::Sum,
            2,
        )
        .unwrap();
        assert_eq!(ens.total_leaves(), 4);
        let x = Vector::Dense(vec![5.0, 0.0]); // lands in leaf 2 of tree 0
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 4 });
        ens.apply_featurize(&x, &mut out).unwrap();
        assert_eq!(out.to_dense(4).unwrap(), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sparse_input_reads_zero_for_missing() {
        let t = sample_tree();
        let mut sp = Vector::with_type(ColumnType::F32Sparse { len: 2 });
        sp.sparse_accumulate(0, 5.0);
        // x[1] missing -> 0.0 -> right path at root, leaf 2.
        assert_eq!(t.eval(|i| feature_value(&sp, i)), (2, 30.0));
    }

    #[test]
    fn multiclass_scores_every_class() {
        let mk = |v: f32| {
            EnsembleParams::new(vec![Tree::leaf(v)], vec![1.0], EnsembleMode::Sum, 3).unwrap()
        };
        let mc = MulticlassTreeParams::new(vec![mk(0.1), mk(0.7), mk(0.2)]).unwrap();
        let x = Vector::Dense(vec![0.0; 3]);
        let mut out = Vector::with_type(ColumnType::F32Dense { len: 3 });
        mc.apply(&x, &mut out).unwrap();
        assert_eq!(out.as_dense().unwrap(), &[0.1, 0.7, 0.2]);
    }

    #[test]
    fn ensemble_round_trip() {
        let ens = EnsembleParams::new(
            vec![sample_tree(), Tree::leaf(1.5)],
            vec![0.5, 2.0],
            EnsembleMode::Average,
            2,
        )
        .unwrap();
        let section = Section {
            name: "op.Ens".into(),
            checksum: 0,
            entries: ens.to_entries(),
        };
        let q = EnsembleParams::from_entries(&section).unwrap();
        assert_eq!(ens, q);
        assert_eq!(ens.checksum(), q.checksum());
    }

    #[test]
    fn multiclass_round_trip() {
        let mk = |v: f32| {
            EnsembleParams::new(
                vec![sample_tree(), Tree::leaf(v)],
                vec![1.0, 1.0],
                EnsembleMode::Sum,
                2,
            )
            .unwrap()
        };
        let mc = MulticlassTreeParams::new(vec![mk(1.0), mk(2.0)]).unwrap();
        let section = Section {
            name: "op.Mc".into(),
            checksum: 0,
            entries: mc.to_entries(),
        };
        let q = MulticlassTreeParams::from_entries(&section).unwrap();
        assert_eq!(mc, q);
    }

    #[test]
    fn corrupt_ensemble_rejected() {
        // Weights/trees length mismatch must fail at construction.
        assert!(
            EnsembleParams::new(vec![Tree::leaf(1.0)], vec![1.0, 2.0], EnsembleMode::Sum, 1)
                .is_err()
        );
        assert!(EnsembleParams::new(vec![], vec![], EnsembleMode::Sum, 1).is_err());
    }
}
