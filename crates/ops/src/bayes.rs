//! Multinomial naive Bayes scorer.
//!
//! Scores sparse count features against per-class log-likelihood vectors:
//! `score[c] = prior[c] + Σ_i x_i · loglik[c][i]`. One of the "classical ML
//! models" in the supported operator set (paper §5); structurally a stack of
//! per-class linear models, so it shares the associative-reducer property.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::batch::ColRef;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// Naive Bayes parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesParams {
    /// Per-class log priors (length `classes`).
    pub log_prior: Vec<f32>,
    /// Per-class feature log likelihoods, `classes * dim` row-major.
    pub log_lik: Vec<f32>,
    /// Feature dimensionality.
    pub dim: u32,
}

impl NaiveBayesParams {
    /// Creates a scorer; validates shapes.
    pub fn new(log_prior: Vec<f32>, log_lik: Vec<f32>, dim: u32) -> Result<Self> {
        let classes = log_prior.len();
        if classes == 0 || log_lik.len() != classes * dim as usize {
            return Err(DataError::Codec(format!(
                "naive bayes shapes: priors {classes}, lik {}, dim {dim}",
                log_lik.len()
            )));
        }
        Ok(NaiveBayesParams {
            log_prior,
            log_lik,
            dim,
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.log_prior.len()
    }

    /// Operator annotations: compute-bound, vectorizable.
    pub fn annotations(&self) -> Annotations {
        Annotations::compute()
    }

    /// Scores one numeric row into the per-class slice `y`. Shared by the
    /// per-record and batch kernels, so their bitwise agreement rests on
    /// one implementation.
    fn score_row(&self, row: ColRef<'_>, y: &mut [f32]) -> Result<()> {
        let d = self.dim as usize;
        match row {
            ColRef::Dense(x) if x.len() == d => {
                for (c, slot) in y.iter_mut().enumerate() {
                    let row = &self.log_lik[c * d..(c + 1) * d];
                    let dot: f32 = x.iter().zip(row).map(|(a, b)| a * b).sum();
                    *slot = self.log_prior[c] + dot;
                }
                Ok(())
            }
            ColRef::Sparse {
                indices,
                values,
                dim,
            } if dim as usize == d => {
                for (c, slot) in y.iter_mut().enumerate() {
                    let row = &self.log_lik[c * d..(c + 1) * d];
                    let mut dot = 0.0f32;
                    for (&i, &v) in indices.iter().zip(values) {
                        dot += v * row[i as usize];
                    }
                    *slot = self.log_prior[c] + dot;
                }
                Ok(())
            }
            other => Err(DataError::Runtime(format!(
                "naive bayes wants numeric[{d}], got {:?}",
                other.column_type()
            ))),
        }
    }

    /// Scores `input` into a dense per-class log-score vector.
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        let y = match out {
            Vector::Dense(y) if y.len() == self.classes() => y,
            other => {
                return Err(DataError::Runtime(format!(
                    "naive bayes output wants dense[{}], got {:?}",
                    self.classes(),
                    other.column_type()
                )))
            }
        };
        self.score_row(ColRef::from_vector(input), y)
    }

    /// Batch kernel: per-class log scores for every row of the chunk
    /// through the same [`Self::score_row`] as the per-record kernel.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let classes = self.classes();
        if out.column_type() != (pretzel_data::ColumnType::F32Dense { len: classes }) {
            return Err(DataError::Runtime(format!(
                "naive bayes output wants dense[{classes}] batch, got {:?}",
                out.column_type()
            )));
        }
        let rows = input.rows();
        let y = out.fill_dense(rows)?;
        for (r, yr) in y.chunks_exact_mut(classes).enumerate().take(rows) {
            self.score_row(input.row(r), yr)?;
        }
        Ok(())
    }
}

impl ParamBlob for NaiveBayesParams {
    const KIND: &'static str = "NaiveBayes";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.dim);
        let mut priors = Vec::new();
        wire::put_f32s(&mut priors, &self.log_prior);
        let mut lik = Vec::new();
        wire::put_f32s(&mut lik, &self.log_lik);
        vec![
            ("config".into(), cfg),
            ("priors".into(), priors),
            ("likelihoods".into(), lik),
        ]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cfg = Cursor::new(section.entry("config")?);
        let dim = cfg.u32()?;
        let log_prior = Cursor::new(section.entry("priors")?).f32s()?;
        let log_lik = Cursor::new(section.entry("likelihoods")?).f32s()?;
        NaiveBayesParams::new(log_prior, log_lik, dim)
    }

    fn heap_bytes(&self) -> usize {
        (self.log_prior.capacity() + self.log_lik.capacity()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    fn model() -> NaiveBayesParams {
        NaiveBayesParams::new(vec![-0.5, -1.0], vec![0.1, 0.2, 0.3, 0.4], 2).unwrap()
    }

    #[test]
    fn dense_scoring() {
        let m = model();
        let mut out = Vector::with_type(ColumnType::F32Dense { len: 2 });
        m.apply(&Vector::Dense(vec![1.0, 2.0]), &mut out).unwrap();
        let y = out.as_dense().unwrap();
        assert!((y[0] - (-0.5 + 0.1 + 0.4)).abs() < 1e-6);
        assert!((y[1] - (-1.0 + 0.3 + 0.8)).abs() < 1e-6);
    }

    #[test]
    fn sparse_matches_dense() {
        let m = model();
        let mut sp = Vector::with_type(ColumnType::F32Sparse { len: 2 });
        sp.sparse_accumulate(1, 2.0);
        let dn = Vector::Dense(vec![0.0, 2.0]);
        let mut a = Vector::with_type(ColumnType::F32Dense { len: 2 });
        let mut b = Vector::with_type(ColumnType::F32Dense { len: 2 });
        m.apply(&sp, &mut a).unwrap();
        m.apply(&dn, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shape_validation() {
        assert!(NaiveBayesParams::new(vec![], vec![], 2).is_err());
        assert!(NaiveBayesParams::new(vec![0.0], vec![0.0; 3], 2).is_err());
    }

    #[test]
    fn round_trip_through_section() {
        let m = model();
        let section = Section {
            name: "op.NB".into(),
            checksum: 0,
            entries: m.to_entries(),
        };
        let q = NaiveBayesParams::from_entries(&section).unwrap();
        assert_eq!(m, q);
    }
}
