//! Linear models: linear / logistic / Poisson regression and linear SVM.
//!
//! The predictor of the SA pipeline ("scored by a Logistic Regression
//! predictor", paper Figure 1) and the operator class PRETZEL's optimizer
//! pushes through Concat: "linear regression is commutative and associative
//! (e.g., dot product between vectors) and can be pipelined with Char and
//! WordNgram, eliminating the need for the Concat operation and the related
//! buffers" (paper §2). The pushdown is made possible here by exposing
//! [`LinearParams::partial_dot`], which scores one Concat branch against the
//! corresponding weight segment; fused stages accumulate branch partials and
//! apply the link function once at the end.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColRef, ColumnBatch, DataError, Result, Vector};

/// Link/loss family of a linear model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearKind {
    /// Identity link (ordinary least squares at training time).
    Regression,
    /// Logistic link: `1 / (1 + e^-z)`.
    Logistic,
    /// Poisson link: `e^z`.
    Poisson,
    /// Raw margin (linear SVM decision value).
    SvmMargin,
}

/// Parameters of a linear model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearParams {
    /// Link family.
    pub kind: LinearKind,
    /// Weight vector over the (possibly concatenated) feature space.
    pub weights: Vec<f32>,
    /// Intercept.
    pub bias: f32,
}

impl LinearParams {
    /// Creates a linear model.
    pub fn new(kind: LinearKind, weights: Vec<f32>, bias: f32) -> Self {
        LinearParams {
            kind,
            weights,
            bias,
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Operator annotations: associative reducer — pushes through Concat.
    pub fn annotations(&self) -> Annotations {
        Annotations::linear_reducer()
    }

    /// Dot product of `input` against the weight segment starting at
    /// `offset` — the primitive that makes Concat pushdown possible.
    ///
    /// For a non-fused plan `offset` is 0 and the segment is the whole
    /// weight vector.
    pub fn partial_dot(&self, input: &Vector, offset: usize) -> Result<f32> {
        self.partial_dot_row(ColRef::from_vector(input), offset)
    }

    /// Row-level [`Self::partial_dot`]: the one dot-product kernel both the
    /// per-record and the columnar batch path execute, so batch scores are
    /// bitwise-identical to single-record scores.
    pub fn partial_dot_row(&self, input: ColRef<'_>, offset: usize) -> Result<f32> {
        match input {
            ColRef::Dense(x) => {
                let seg = self.segment(offset, x.len())?;
                // Explicit 8-lane dot (AVX2 or the lane-identical scalar
                // fallback, per the SIMD knob).
                Ok(pretzel_data::simd::dot(x, seg))
            }
            ColRef::Sparse {
                indices,
                values,
                dim,
            } => {
                let seg = self.segment(offset, dim as usize)?;
                // CSR-gather dot: AVX2 `vgatherdps` after a one-pass index
                // validation, or the lane-identical scalar fallback.
                Ok(pretzel_data::simd::sparse_dot(indices, values, seg))
            }
            ColRef::Scalar(x) => {
                let seg = self.segment(offset, 1)?;
                Ok(x * seg[0])
            }
            other => Err(DataError::Runtime(format!(
                "linear model wants numeric input, got {:?}",
                other.column_type()
            ))),
        }
    }

    /// Batch kernel: scores every row of `input` into a scalar batch.
    ///
    /// One pass over the chunk keeps the weight vector hot in cache across
    /// rows — the data-plane benefit chunked scheduling alone never had.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let rows = input.rows();
        if out.column_type() != pretzel_data::ColumnType::F32Scalar {
            return Err(DataError::Runtime(format!(
                "linear model output must be scalar, got {:?}",
                out.column_type()
            )));
        }
        let y = out.fill_scalar(rows)?;
        for (r, slot) in y.iter_mut().enumerate() {
            let z = self.partial_dot_row(input.row(r), 0)? + self.bias;
            *slot = self.link(z);
        }
        Ok(())
    }

    /// Batch kernel for the pushed-down partial dot: every row of `input`
    /// against the weight segment at `offset`, no bias, no link.
    pub fn partial_dot_batch(
        &self,
        input: &ColumnBatch,
        offset: usize,
        out: &mut ColumnBatch,
    ) -> Result<()> {
        let rows = input.rows();
        if out.column_type() != pretzel_data::ColumnType::F32Scalar {
            return Err(DataError::Runtime(format!(
                "partial dot output must be scalar, got {:?}",
                out.column_type()
            )));
        }
        let y = out.fill_scalar(rows)?;
        for (r, slot) in y.iter_mut().enumerate() {
            *slot = self.partial_dot_row(input.row(r), offset)?;
        }
        Ok(())
    }

    fn segment(&self, offset: usize, len: usize) -> Result<&[f32]> {
        self.weights.get(offset..offset + len).ok_or_else(|| {
            DataError::Runtime(format!(
                "weight segment [{offset}, {}) out of {} weights",
                offset + len,
                self.weights.len()
            ))
        })
    }

    /// Applies the link function to a completed dot product plus bias.
    #[inline]
    pub fn link(&self, z: f32) -> f32 {
        match self.kind {
            LinearKind::Regression | LinearKind::SvmMargin => z,
            LinearKind::Logistic => 1.0 / (1.0 + (-z).exp()),
            LinearKind::Poisson => z.exp(),
        }
    }

    /// Full scoring: dot + bias + link, `input` → scalar in `out`.
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        let z = self.partial_dot(input, 0)? + self.bias;
        match out {
            Vector::Scalar(s) => {
                *s = self.link(z);
                Ok(())
            }
            other => Err(DataError::Runtime(format!(
                "linear model output must be scalar, got {:?}",
                other.column_type()
            ))),
        }
    }
}

impl ParamBlob for LinearParams {
    const KIND: &'static str = "LinearModel";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        let tag = match self.kind {
            LinearKind::Regression => 0,
            LinearKind::Logistic => 1,
            LinearKind::Poisson => 2,
            LinearKind::SvmMargin => 3,
        };
        wire::put_u32(&mut cfg, tag);
        wire::put_f32(&mut cfg, self.bias);
        let mut w = Vec::new();
        wire::put_f32s(&mut w, &self.weights);
        vec![("config".into(), cfg), ("weights".into(), w)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cfg = Cursor::new(section.entry("config")?);
        let kind = match cfg.u32()? {
            0 => LinearKind::Regression,
            1 => LinearKind::Logistic,
            2 => LinearKind::Poisson,
            3 => LinearKind::SvmMargin,
            t => return Err(DataError::Codec(format!("bad linear kind {t}"))),
        };
        let bias = cfg.f32()?;
        let weights = Cursor::new(section.entry("weights")?).f32s()?;
        Ok(LinearParams::new(kind, weights, bias))
    }

    fn heap_bytes(&self) -> usize {
        self.weights.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    fn model(kind: LinearKind) -> LinearParams {
        LinearParams::new(kind, vec![1.0, -2.0, 0.5, 3.0], 0.25)
    }

    #[test]
    fn dense_scoring() {
        let m = model(LinearKind::Regression);
        let x = Vector::Dense(vec![1.0, 1.0, 2.0, 0.0]);
        let mut out = Vector::Scalar(0.0);
        m.apply(&x, &mut out).unwrap();
        assert_eq!(out.as_scalar().unwrap(), 1.0 - 2.0 + 1.0 + 0.25);
    }

    #[test]
    fn sparse_equals_dense() {
        let m = model(LinearKind::Regression);
        let mut sp = Vector::with_type(ColumnType::F32Sparse { len: 4 });
        sp.sparse_accumulate(0, 1.0);
        sp.sparse_accumulate(2, 2.0);
        let dn = Vector::Dense(vec![1.0, 0.0, 2.0, 0.0]);
        let mut a = Vector::Scalar(0.0);
        let mut b = Vector::Scalar(0.0);
        m.apply(&sp, &mut a).unwrap();
        m.apply(&dn, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn logistic_link_bounds() {
        let m = model(LinearKind::Logistic);
        let x = Vector::Dense(vec![10.0, 0.0, 0.0, 0.0]);
        let mut out = Vector::Scalar(0.0);
        m.apply(&x, &mut out).unwrap();
        let p = out.as_scalar().unwrap();
        assert!(p > 0.99 && p <= 1.0);
        assert!((m.link(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn poisson_link_is_exp() {
        let m = model(LinearKind::Poisson);
        assert!((m.link(1.0) - std::f32::consts::E).abs() < 1e-5);
    }

    #[test]
    fn partial_dot_segments_sum_to_full_dot() {
        // Pushdown correctness at the kernel level: branch segments of the
        // weight vector score branch inputs; their sum equals scoring the
        // concatenated vector.
        let m = model(LinearKind::Regression);
        let left = Vector::Dense(vec![1.0, 1.0]);
        let right = Vector::Dense(vec![2.0, 0.0]);
        let full = Vector::Dense(vec![1.0, 1.0, 2.0, 0.0]);
        let split = m.partial_dot(&left, 0).unwrap() + m.partial_dot(&right, 2).unwrap();
        assert_eq!(split, m.partial_dot(&full, 0).unwrap());
    }

    #[test]
    fn segment_out_of_bounds_is_error() {
        let m = model(LinearKind::Regression);
        let x = Vector::Dense(vec![1.0, 2.0]);
        assert!(m.partial_dot(&x, 3).is_err());
    }

    #[test]
    fn round_trip_through_section() {
        for kind in [
            LinearKind::Regression,
            LinearKind::Logistic,
            LinearKind::Poisson,
            LinearKind::SvmMargin,
        ] {
            let m = model(kind);
            let section = Section {
                name: "op.Linear".into(),
                checksum: 0,
                entries: m.to_entries(),
            };
            let q = LinearParams::from_entries(&section).unwrap();
            assert_eq!(m, q);
            assert_eq!(m.checksum(), q.checksum());
        }
    }
}
