//! Operator library for the PRETZEL reproduction.
//!
//! ML.Net pipelines are DAGs of *operators*: "data transformations and
//! featurizers (e.g., string tokenization, hashing, etc.), and ML models
//! (e.g., decision trees, linear models, SVMs, etc.)" (paper §1). PRETZEL's
//! evaluation build "supports about two dozen ML.Net operators, among which
//! linear models, tree-based models, clustering models (e.g., K-Means), PCA,
//! and several featurizers" (paper §5). This crate implements that operator
//! set from scratch.
//!
//! Every operator is split into:
//!
//! * **parameters** — an immutable, `Arc`-shared, checksummed object that can
//!   be serialized into a model-file section ([`pretzel_data::serde_bin`]).
//!   Parameter identity-by-checksum is what the Object Store dedups
//!   (paper §4.1.3).
//! * **kernel** — a pure function from input [`Vector`]s to an output
//!   [`Vector`], written so dense hot loops auto-vectorize (paper §2's
//!   "vectorize compute intensive operators").
//! * **annotations** — static operator properties ("1-to-1, 1-to-n,
//!   memory-bound, compute-bound, commutative and associative", paper
//!   §4.1.2) consumed by the Oven optimizer's rules.
//!
//! Both the white-box PRETZEL runtime and the black-box baseline execute the
//! *same kernels*; the systems differ only in how they organize parameters,
//! memory and scheduling — exactly the comparison the paper makes.
//!
//! [`Vector`]: pretzel_data::Vector

pub mod annotations;
pub mod bayes;
#[cfg(feature = "fault-op")]
pub mod fault;
pub mod feat;
pub mod kmeans;
pub mod linear;
pub mod op;
pub mod params;
pub mod pca;
pub mod synth;
pub mod text;
pub mod tree;

pub use annotations::{Annotations, Arity, Bound};
pub use op::{Op, OpKind};
