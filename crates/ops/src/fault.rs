//! Deliberately-faulting synthetic operator (feature `fault-op`).
//!
//! [`FaultParams`] is a Text→Text identity op that **panics** whenever the
//! input record contains a configured marker substring. It exists solely to
//! exercise the serving runtime's fault-containment boundary: the adversarial
//! workload salts a fraction of requests with the marker, and the ablation
//! harness asserts that those requests fail cleanly (and eventually quarantine
//! their plan) while every other request and plan keeps serving.
//!
//! The op is compiled out of release builds of the library unless the
//! `fault-op` feature is on; it is deliberately **excluded from
//! [`crate::OpKind::ALL`]** so registry-style iteration (tests, tools, the
//! synthetic model generator) never trips over it.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{Cursor, Section};
use pretzel_data::{ColRef, ColumnBatch, DataError, Result, Vector};

/// Fault-injector parameters: the marker substring that triggers a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParams {
    /// Records containing this substring panic the executing kernel.
    pub marker: Box<str>,
}

impl FaultParams {
    /// Creates a fault injector tripping on `marker`.
    pub fn new(marker: impl Into<Box<str>>) -> Self {
        FaultParams {
            marker: marker.into(),
        }
    }

    /// Identity-featurizer annotations: fusible and memory-bound, so stage
    /// formation treats the injector exactly like a real text featurizer.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    fn trip(&self, text: &str) {
        if !self.marker.is_empty() && text.contains(&*self.marker) {
            panic!("fault-op: marker `{}` in record", self.marker);
        }
    }

    /// Per-record kernel: panics on the marker, otherwise copies the text
    /// through unchanged.
    pub fn apply(&self, text: &str, out: &mut Vector) -> Result<()> {
        self.trip(text);
        match out {
            Vector::Text(s) => {
                s.clear();
                s.push_str(text);
                Ok(())
            }
            other => Err(DataError::Runtime(format!(
                "fault op output buffer variant mismatch: {:?}",
                other.column_type()
            ))),
        }
    }

    /// Batch kernel: identical semantics row by row — the panic fires on
    /// the first marked row, mid-batch, which is exactly the ugly case the
    /// containment boundary has to survive.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        if !matches!(
            input,
            ColumnBatch::Text { .. } | ColumnBatch::TextSpans { .. }
        ) {
            return Err(DataError::Runtime(format!(
                "fault op wants text batch, got {:?}",
                input.column_type()
            )));
        }
        out.reset();
        for r in 0..input.rows() {
            let ColRef::Text(text) = input.row(r) else {
                unreachable!("text batch rows are text");
            };
            self.trip(text);
            out.push_text(text)?;
        }
        Ok(())
    }
}

impl ParamBlob for FaultParams {
    const KIND: &'static str = "FaultInjector";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        pretzel_data::serde_bin::wire::put_str(&mut cfg, &self.marker);
        vec![("marker".into(), cfg)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let blob = section.entry("marker")?;
        let marker = Cursor::new(blob).str()?;
        Ok(FaultParams::new(marker))
    }

    fn heap_bytes(&self) -> usize {
        self.marker.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    #[test]
    fn passes_clean_text_through() {
        let p = FaultParams::new("☢");
        let mut out = Vector::with_type(ColumnType::Text);
        p.apply("a nice product", &mut out).unwrap();
        assert_eq!(out.as_text(), Some("a nice product"));
    }

    #[test]
    fn panics_on_marker() {
        let p = FaultParams::new("☢");
        let mut out = Vector::with_type(ColumnType::Text);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.apply("bad ☢ record", &mut out)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn batch_panics_mid_batch_on_first_marked_row() {
        let p = FaultParams::new("☢");
        let mut input = ColumnBatch::with_type(ColumnType::Text);
        input.push_text("fine").unwrap();
        input.push_text("also fine").unwrap();
        input.push_text("☢ boom").unwrap();
        let mut out = ColumnBatch::with_type(ColumnType::Text);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.eval_batch(&input, &mut out)
        }));
        assert!(r.is_err());
        assert_eq!(out.rows(), 2, "rows before the marker were copied");
    }

    #[test]
    fn empty_marker_never_trips() {
        let p = FaultParams::new("");
        let mut out = Vector::with_type(ColumnType::Text);
        p.apply("anything", &mut out).unwrap();
    }

    #[test]
    fn round_trip_through_section() {
        let p = FaultParams::new("☢FAULT☢");
        let section = Section {
            name: "op0.FaultInjector".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        let q = FaultParams::from_entries(&section).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.checksum(), q.checksum());
    }
}
