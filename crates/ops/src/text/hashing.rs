//! Feature-hashing vectorizer (dictionary-free n-gram featurizer).
//!
//! ML.Net's `HashingVectorizer`-style featurizer: instead of probing a
//! trained dictionary, every character n-gram is hashed into one of
//! `buckets` slots. No parameters beyond the configuration — the cheapest
//! featurizer to share, and a useful contrast to the dictionary-backed
//! [`crate::text::ngram`] operators in the memory experiments.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::hash::Fnv1a;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColRef, ColumnBatch, DataError, Result, Vector};

/// Parameters of the hashing vectorizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashingParams {
    /// N-gram length (character level).
    pub n: u32,
    /// Number of hash buckets (= output dimensionality).
    pub buckets: u32,
    /// Case-insensitive hashing.
    pub fold_case: bool,
}

impl HashingParams {
    /// Creates a hashing featurizer.
    pub fn new(n: u32, buckets: u32, fold_case: bool) -> Self {
        HashingParams {
            n,
            buckets,
            fold_case,
        }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.buckets as usize
    }

    /// Operator annotations: memory-bound featurizer, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    /// Streams the bucket index of every `n`-byte window of `text` — the
    /// one hashing loop both the per-record and the batch kernel run.
    #[inline]
    pub fn for_each_bucket(&self, text: &str, mut f: impl FnMut(u32)) {
        let bytes = text.as_bytes();
        let n = self.n as usize;
        if bytes.len() < n || self.buckets == 0 {
            return;
        }
        for w in bytes.windows(n) {
            let mut h = Fnv1a::new();
            for &b in w {
                let fb = if self.fold_case && b.is_ascii_uppercase() {
                    b | 0x20
                } else {
                    b
                };
                h.write(&[fb]);
            }
            f((h.finish() % u64::from(self.buckets)) as u32);
        }
    }

    /// Hashes every `n`-byte window of `text` into the output buckets.
    pub fn apply(&self, text: &str, out: &mut Vector) -> Result<()> {
        match out {
            Vector::Sparse { dim, .. } if *dim == self.buckets => {}
            other => {
                return Err(DataError::Runtime(format!(
                    "hashing output buffer mismatch: want sparse[{}], got {:?}",
                    self.buckets,
                    other.column_type()
                )))
            }
        }
        out.reset();
        self.for_each_bucket(text, |idx| out.sparse_accumulate(idx, 1.0));
        Ok(())
    }

    /// Batch kernel: every text row hashed into one CSR row (window order
    /// and duplicate-summing identical to [`Self::apply`]).
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        match out {
            ColumnBatch::Sparse { dim, .. } if *dim == self.buckets => {}
            other => {
                return Err(DataError::Runtime(format!(
                    "hashing output batch mismatch: want sparse[{}], got {:?}",
                    self.buckets,
                    other.column_type()
                )))
            }
        }
        out.reset();
        for r in 0..input.rows() {
            let ColRef::Text(text) = input.row(r) else {
                return Err(DataError::Runtime(format!(
                    "hashing vectorizer wants text batch, got {:?}",
                    input.column_type()
                )));
            };
            let mut row = out.begin_sparse_row()?;
            self.for_each_bucket(text, |idx| row.accumulate(idx, 1.0));
            row.finish();
        }
        Ok(())
    }
}

impl ParamBlob for HashingParams {
    const KIND: &'static str = "HashingVectorizer";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.n);
        wire::put_u32(&mut cfg, self.buckets);
        wire::put_u32(&mut cfg, u32::from(self.fold_case));
        vec![("config".into(), cfg)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cur = Cursor::new(section.entry("config")?);
        Ok(HashingParams {
            n: cur.u32()?,
            buckets: cur.u32()?,
            fold_case: cur.u32()? != 0,
        })
    }

    fn heap_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    #[test]
    fn total_mass_equals_window_count() {
        let p = HashingParams::new(3, 64, true);
        let text = "hello world";
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 64 });
        p.apply(text, &mut out).unwrap();
        let total: f32 = match &out {
            Vector::Sparse { values, .. } => values.iter().sum(),
            _ => unreachable!(),
        };
        assert_eq!(total, (text.len() - 2) as f32);
    }

    #[test]
    fn deterministic_and_case_folded() {
        let p = HashingParams::new(2, 16, true);
        let mut a = Vector::with_type(ColumnType::F32Sparse { len: 16 });
        let mut b = Vector::with_type(ColumnType::F32Sparse { len: 16 });
        p.apply("AbCd", &mut a).unwrap();
        p.apply("abcd", &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn short_text_is_empty_output() {
        let p = HashingParams::new(5, 8, false);
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 8 });
        p.apply("abc", &mut out).unwrap();
        assert_eq!(out.stored_len(), 0);
    }

    #[test]
    fn buffer_dim_checked() {
        let p = HashingParams::new(2, 8, false);
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 9 });
        assert!(p.apply("abc", &mut out).is_err());
    }

    #[test]
    fn round_trip_through_section() {
        let p = HashingParams::new(4, 1024, true);
        let section = Section {
            name: "op.Hash".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        assert_eq!(HashingParams::from_entries(&section).unwrap(), p);
    }
}
