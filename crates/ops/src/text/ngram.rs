//! Dictionary-based n-gram featurizers (CharNgram, WordNgram).
//!
//! These are the heavy featurizers of the SA pipeline: "Char and Word Ngrams
//! featurize input tokens by extracting n-grams" (paper Figure 1), with
//! trained dictionaries of about a million entries occupying tens of MBs
//! (paper Table 1) — which is why sharing their parameters across pipelines
//! (Figure 3) dominates the memory experiments.
//!
//! The kernel is allocation-free after warm-up: candidate n-grams are
//! hashed with streaming FNV-1a over case-folded bytes and probed against a
//! `hash → dictionary index` table; matches accumulate counts into a sparse
//! output vector. Distinct n-grams colliding on the 64-bit hash would share
//! a count slot; at dictionary sizes up to 2^20 the collision probability is
//! below 2^-24 and has no effect on the systems behaviour being measured.
//!
//! **Matching path** (the SA bottleneck, paper Figure 1/Table 1): by
//! default the kernels run a three-phase row loop —
//!
//! 1. **fold once**: the row's bytes are case-folded once into a pooled
//!    (thread-local) scratch buffer instead of branch-folding every byte
//!    of every window in the hot loop;
//! 2. **incremental window hashing** into a scratch ring: FNV-1a is
//!    prefix-extendable, so with `all_lengths = true` a start position's
//!    length-`k` hash extends its length-`k−1` hash — all lengths `1..=n`
//!    per position cost one pass (`O(n)` byte-steps per position instead
//!    of `O(n²)`). Hashes land grouped by length so emission order stays
//!    identical to the classic per-length window sweep;
//! 3. **bulk probing** of the [`pretzel_data::probe::FlatProbeTable`] in a
//!    tight loop that software-prefetches the slot a few windows ahead —
//!    the probe loop is ILP/cache-friendly instead of dependency-chained
//!    per window.
//!
//! The classic per-window `HashMap` kernel that served as the ablation
//! control for this path was retired once the ablation era closed; the
//! flat kernels are the only matching path. Their contract is unchanged:
//! same FNV-1a values, same first-index-wins duplicate semantics, same
//! per-row match order as the classic sweep (locked in by the
//! `ngram_probe` integration tests against an in-test reference).

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::hash::Fnv1a;
use pretzel_data::probe::FlatProbeTable;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::vector::Span;
use pretzel_data::{ColRef, ColumnBatch, DataError, Result, Vector};

/// Separator byte between tokens when hashing word n-grams.
const WORD_SEP: u8 = 0x1f;

/// How many windows ahead the bulk probe loop prefetches. Far enough to
/// cover a memory load's latency at one probe per iteration, near enough
/// that the prefetched line is still resident when its turn comes.
const PREFETCH_AHEAD: usize = 8;

#[inline]
fn fold(b: u8, fold_case: bool) -> u8 {
    if fold_case && b.is_ascii_uppercase() {
        b | 0x20
    } else {
        b
    }
}

/// Per-thread matching scratch: the case-folded row and the window-hash
/// ring, reused across rows so the three-phase kernel is allocation-free
/// after warm-up.
#[derive(Debug, Default)]
struct MatchScratch {
    /// The row's bytes, case-folded once.
    folded: Vec<u8>,
    /// Window hashes, grouped by n-gram length. Grow-only: every slot in
    /// `0..` the active length is overwritten by hash generation before
    /// the probe pass reads it, so stale tails are never re-zeroed.
    hashes: Vec<u64>,
    /// `(offset, len)` of each length group inside `hashes`, in ascending
    /// length order (the classic emission order).
    groups: Vec<(usize, usize)>,
}

/// Retention bound on the thread-local hash ring, in entries (8 MiB).
/// Typical rows need a few hundred slots; one pathological row (a frame
/// body can be up to 64 MiB of text) must not pin its high-water mark on
/// the executor thread forever.
const SCRATCH_RETAIN_HASHES: usize = 1 << 20;

/// Retention bound on the thread-local folded-row buffer, in bytes.
const SCRATCH_RETAIN_FOLDED: usize = 1 << 20;

/// Makes `hashes[..len]` addressable without re-zeroing the prefix on
/// every row (each active slot is written before it is read).
#[inline]
fn reserve_hashes(hashes: &mut Vec<u64>, len: usize) {
    if hashes.len() < len {
        hashes.resize(len, 0);
    }
}

impl MatchScratch {
    /// Releases capacity an outlier row grew beyond the retention bounds,
    /// so per-thread scratch stays sized for the steady-state row mix.
    #[inline]
    fn trim(&mut self) {
        if self.hashes.capacity() > SCRATCH_RETAIN_HASHES {
            self.hashes.truncate(SCRATCH_RETAIN_HASHES);
            self.hashes.shrink_to(SCRATCH_RETAIN_HASHES);
        }
        if self.folded.capacity() > SCRATCH_RETAIN_FOLDED {
            self.folded.truncate(SCRATCH_RETAIN_FOLDED);
            self.folded.shrink_to(SCRATCH_RETAIN_FOLDED);
        }
    }
}

std::thread_local! {
    static MATCH_SCRATCH: std::cell::RefCell<MatchScratch> =
        std::cell::RefCell::new(MatchScratch::default());
}

/// Runs `f` with the thread's matching scratch. A plain `borrow_mut` —
/// the kernels never re-enter (callbacks only accumulate), and this runs
/// once per row per kernel, so the borrow must not cost a 3-vec move the
/// way a take/put-back would. A hypothetical re-entrant kernel panics
/// loudly here instead of corrupting state.
#[inline]
fn with_scratch<R>(f: impl FnOnce(&mut MatchScratch) -> R) -> R {
    MATCH_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let out = f(&mut scratch);
        scratch.trim();
        out
    })
}

/// The row bytes the matching kernels hash: case-folded once into the
/// scratch buffer (one pass, no per-window branch) — or, when the
/// dictionary is case-sensitive, borrowed straight from the input with no
/// copy at all.
#[inline]
fn folded_bytes<'a>(folded: &'a mut Vec<u8>, text: &'a str, fold_case: bool) -> &'a [u8] {
    if fold_case {
        folded.clear();
        folded.extend(
            text.bytes()
                .map(|b| if b.is_ascii_uppercase() { b | 0x20 } else { b }),
        );
        folded
    } else {
        text.as_bytes()
    }
}

/// Probes one length group's hashes against the flat table in a tight
/// loop and streams the hit indices in window order. When the table is
/// large enough to spill cache, the loop prefetches [`PREFETCH_AHEAD`]
/// windows ahead so the probes' loads overlap; for cache-resident tables
/// the prefetch instruction would be pure overhead and is skipped.
#[inline]
fn probe_group(table: &FlatProbeTable, hashes: &[u64], f: &mut impl FnMut(u32)) {
    let n = hashes.len();
    if table.prefetch_pays() && n > PREFETCH_AHEAD {
        for j in 0..n - PREFETCH_AHEAD {
            table.prefetch(hashes[j + PREFETCH_AHEAD]);
            if let Some(idx) = table.probe(hashes[j]) {
                f(idx);
            }
        }
        for &h in &hashes[n - PREFETCH_AHEAD..] {
            if let Some(idx) = table.probe(h) {
                f(idx);
            }
        }
    } else {
        for &h in hashes {
            if let Some(idx) = table.probe(h) {
                f(idx);
            }
        }
    }
}

/// Fills `hashes[..windows]` with the FNV-1a hash of every length-`k` byte
/// window of `bytes`, monomorphized per small `k` so the byte steps fully
/// unroll (adjacent windows are independent, so the multiply chains of
/// several windows retire in parallel).
#[inline]
fn hash_exact_windows<const K: usize>(bytes: &[u8], hashes: &mut [u64]) {
    for (w, out) in bytes.windows(K).zip(hashes.iter_mut()) {
        let mut h = Fnv1a::new();
        for &b in w {
            h.push_byte(b);
        }
        *out = h.finish();
    }
}

/// Generic-`k` fallback of [`hash_exact_windows`].
fn hash_exact_windows_dyn(bytes: &[u8], k: usize, hashes: &mut [u64]) {
    for (w, out) in bytes.windows(k).zip(hashes.iter_mut()) {
        let mut h = Fnv1a::new();
        for &b in w {
            h.push_byte(b);
        }
        *out = h.finish();
    }
}

/// A trained n-gram dictionary: the keys (owned, for size realism and
/// serialization) plus the derived hash → index [`FlatProbeTable`] the
/// matching kernels bulk-probe. First insert per key wins, so dictionary
/// indices are stable across rebuilds.
#[derive(Debug, Clone)]
pub struct NgramDict {
    keys: Vec<Box<str>>,
    flat: FlatProbeTable,
    fold_case: bool,
}

impl PartialEq for NgramDict {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys && self.fold_case == other.fold_case
    }
}

impl NgramDict {
    /// Builds a dictionary from keys. Word n-gram keys use a single ASCII
    /// space between tokens (e.g. `"not good"`).
    ///
    /// Later duplicates (after case folding) are ignored, keeping the first
    /// index, so dictionary indices are stable.
    pub fn new(keys: Vec<Box<str>>, fold_case: bool) -> Self {
        let mut flat = FlatProbeTable::with_capacity(keys.len());
        for (i, k) in keys.iter().enumerate() {
            flat.insert_first(Self::hash_key(k, fold_case), i as u32);
        }
        NgramDict {
            keys,
            flat,
            fold_case,
        }
    }

    /// Number of dictionary entries (= featurizer output dimensionality).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The dictionary keys.
    pub fn keys(&self) -> &[Box<str>] {
        &self.keys
    }

    /// Probes a precomputed hash through the flat table (the matching
    /// path). First-index-wins for duplicate keys.
    #[inline]
    pub fn probe(&self, hash: u64) -> Option<u32> {
        self.flat.probe(hash)
    }

    /// The flat probe table (matching-kernel internals and tests).
    pub fn flat_table(&self) -> &FlatProbeTable {
        &self.flat
    }

    /// Hashes a dictionary key the same way the kernels hash input windows:
    /// tokens separated by `WORD_SEP`, bytes case-folded.
    pub fn hash_key(key: &str, fold_case: bool) -> u64 {
        let mut h = Fnv1a::new();
        let mut first = true;
        for tok in key.split(' ') {
            if !first {
                h.write(&[WORD_SEP]);
            }
            first = false;
            for &b in tok.as_bytes() {
                h.write(&[fold(b, fold_case)]);
            }
        }
        h.finish()
    }

    /// Heap bytes: key storage plus the flat probe table that serves
    /// matching.
    pub fn heap_bytes(&self) -> usize {
        let keys: usize = self.keys.iter().map(|k| k.len()).sum();
        keys + self.keys.capacity() * std::mem::size_of::<Box<str>>() + self.flat.heap_bytes()
    }
}

/// Parameters shared by CharNgram and WordNgram.
#[derive(Debug, Clone, PartialEq)]
pub struct NgramParams {
    /// Maximum n-gram length.
    pub n: u32,
    /// Extract all lengths `1..=n` (true) or exactly `n` (false).
    pub all_lengths: bool,
    /// Case-insensitive matching.
    pub fold_case: bool,
    /// The trained dictionary.
    pub dict: NgramDict,
}

impl NgramParams {
    /// Creates n-gram parameters over a dictionary.
    pub fn new(n: u32, all_lengths: bool, fold_case: bool, keys: Vec<Box<str>>) -> Self {
        NgramParams {
            n,
            all_lengths,
            fold_case,
            dict: NgramDict::new(keys, fold_case),
        }
    }

    /// Output dimensionality (dictionary size).
    pub fn dim(&self) -> usize {
        self.dict.len()
    }

    /// Operator annotations: memory-bound featurizer, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    /// Streams every dictionary hit in `text` at character level.
    ///
    /// This is the fusion hook (paper §2): a fused `ngram → dot-product`
    /// physical stage accumulates `weights[offset + idx]` directly in the
    /// callback and never materializes the sparse feature vector at all.
    ///
    /// Hits stream in the classic order — lengths ascending, window start
    /// positions ascending — so every consumer (sparse accumulation,
    /// fused f32 dot) sees the same match sequence the per-window sweep
    /// produced.
    #[inline]
    pub fn for_each_char_match(&self, text: &str, mut f: impl FnMut(u32)) {
        self.char_match_flat(text, &mut f);
    }

    /// Streams every dictionary hit at word level (`spans` over `text`).
    ///
    /// Fusion hook, see [`Self::for_each_char_match`].
    #[inline]
    pub fn for_each_word_match(&self, text: &str, spans: &[Span], mut f: impl FnMut(u32)) {
        self.word_match_flat(text, spans, &mut f);
    }

    /// Character kernel, flat path: fold once → hash every window of every
    /// length into the scratch ring (incrementally across lengths when
    /// `all_lengths`) → bulk-probe per length group with prefetch.
    ///
    /// The split hash-then-probe structure exists to overlap probe loads
    /// across windows, which only pays when the table spills cache; for a
    /// cache-resident table the exact-length kernel takes a fused
    /// single pass over the folded row instead (same hashes, same window
    /// order, no scratch-ring traffic).
    fn char_match_flat(&self, text: &str, f: &mut impl FnMut(u32)) {
        if !self.all_lengths && !self.dict.flat.prefetch_pays() {
            return self.char_match_flat_resident(text, f);
        }
        with_scratch(|s| {
            let MatchScratch {
                folded,
                hashes,
                groups,
            } = s;
            let bytes = folded_bytes(folded, text, self.fold_case);
            let m = bytes.len();
            groups.clear();
            if self.all_lengths {
                // One group per length 1..=n; group k starts at `off` and
                // holds the hashes of windows starting at 0..=(m-k).
                let n = self.n as usize;
                let mut off = 0usize;
                for k in 1..=n {
                    let cnt = m.saturating_sub(k - 1);
                    groups.push((off, cnt));
                    off += cnt;
                }
                reserve_hashes(hashes, off);
                // Incremental hashing: position i's length-k hash extends
                // its length-(k-1) hash by one byte — O(n) steps per
                // position for all n lengths.
                for i in 0..m {
                    let mut h = Fnv1a::new();
                    let kmax = n.min(m - i);
                    for k in 1..=kmax {
                        h.push_byte(bytes[i + k - 1]);
                        let (goff, _) = groups[k - 1];
                        hashes[goff + i] = h.finish();
                    }
                }
            } else {
                // Exact length: FNV cannot roll a window, so each window
                // hashes its k bytes — but over the pre-folded buffer, with
                // adjacent windows independent (ILP), into the same ring.
                let k = self.n as usize;
                let cnt = if k > 0 && m >= k { m - k + 1 } else { 0 };
                groups.push((0, cnt));
                reserve_hashes(hashes, cnt);
                let hashes = &mut hashes[..cnt];
                if cnt > 0 {
                    match k {
                        1 => hash_exact_windows::<1>(bytes, hashes),
                        2 => hash_exact_windows::<2>(bytes, hashes),
                        3 => hash_exact_windows::<3>(bytes, hashes),
                        4 => hash_exact_windows::<4>(bytes, hashes),
                        5 => hash_exact_windows::<5>(bytes, hashes),
                        _ => hash_exact_windows_dyn(bytes, k, hashes),
                    }
                }
            }
            for &(off, cnt) in groups.iter() {
                probe_group(&self.dict.flat, &hashes[off..off + cnt], f);
            }
        });
    }

    /// Exact-length character kernel over a cache-resident flat table:
    /// fold once, then hash + probe each window in one pass (adjacent
    /// windows stay independent, so the multiply chains still overlap) —
    /// no scratch ring, no prefetch, same emission order.
    fn char_match_flat_resident(&self, text: &str, f: &mut impl FnMut(u32)) {
        with_scratch(|s| {
            let bytes = folded_bytes(&mut s.folded, text, self.fold_case);
            let k = self.n as usize;
            if k == 0 || bytes.len() < k {
                return;
            }
            let table = &self.dict.flat;
            for w in bytes.windows(k) {
                let mut h = Fnv1a::new();
                for &b in w {
                    h.push_byte(b);
                }
                if let Some(idx) = table.probe(h.finish()) {
                    f(idx);
                }
            }
        });
    }

    /// Word kernel, flat path: fold the row once, extend each start
    /// token's hash across window lengths (separator + next token per
    /// step), then bulk-probe per length group with prefetch.
    fn word_match_flat(&self, text: &str, spans: &[Span], f: &mut impl FnMut(u32)) {
        with_scratch(|s| {
            let MatchScratch {
                folded,
                hashes,
                groups,
            } = s;
            let bytes = folded_bytes(folded, text, self.fold_case);
            let t = spans.len();
            groups.clear();
            let n = self.n as usize;
            let (k_lo, k_hi) = if self.all_lengths { (1, n) } else { (n, n) };
            let mut off = 0usize;
            for k in k_lo..=k_hi {
                let cnt = if k > 0 && t >= k { t - k + 1 } else { 0 };
                groups.push((off, cnt));
                off += cnt;
            }
            reserve_hashes(hashes, off);
            for i in 0..t {
                let mut h = Fnv1a::new();
                let kmax = k_hi.min(t - i);
                for k in 1..=kmax {
                    if k > 1 {
                        h.push_byte(WORD_SEP);
                    }
                    let sp = spans[i + k - 1];
                    for &b in &bytes[sp.start as usize..sp.end as usize] {
                        h.push_byte(b);
                    }
                    if k >= k_lo {
                        let (goff, _) = groups[k - k_lo];
                        hashes[goff + i] = h.finish();
                    }
                }
            }
            for &(off, cnt) in groups.iter() {
                probe_group(&self.dict.flat, &hashes[off..off + cnt], f);
            }
        });
    }

    /// Character-level extraction: hash every byte window of each length.
    ///
    /// `out` must be a sparse buffer of dimension [`Self::dim`]; it is
    /// cleared first.
    pub fn apply_char(&self, text: &str, out: &mut Vector) -> Result<()> {
        self.check_out(out)?;
        out.reset();
        self.for_each_char_match(text, |idx| out.sparse_accumulate(idx, 1.0));
        Ok(())
    }

    /// Word-level extraction: hash every token window of each length.
    ///
    /// `spans` index into `text`; `out` as for [`Self::apply_char`].
    pub fn apply_word(&self, text: &str, spans: &[Span], out: &mut Vector) -> Result<()> {
        self.check_out(out)?;
        out.reset();
        self.for_each_word_match(text, spans, |idx| out.sparse_accumulate(idx, 1.0));
        Ok(())
    }

    /// Batch character-level extraction: every text row into one CSR row.
    /// Per-row match order and duplicate-summing are exactly
    /// [`Self::apply_char`]'s, so rows are bitwise-identical.
    pub fn eval_batch_char(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        self.check_batch_out(out)?;
        out.reset();
        for r in 0..input.rows() {
            let ColRef::Text(text) = input.row(r) else {
                return Err(DataError::Runtime(format!(
                    "char ngram wants text batch, got {:?}",
                    input.column_type()
                )));
            };
            let mut row = out.begin_sparse_row()?;
            self.for_each_char_match(text, |idx| row.accumulate(idx, 1.0));
            row.finish();
        }
        Ok(())
    }

    /// Batch word-level extraction over parallel text and token batches.
    pub fn eval_batch_word(
        &self,
        text: &ColumnBatch,
        tokens: &ColumnBatch,
        out: &mut ColumnBatch,
    ) -> Result<()> {
        self.check_batch_out(out)?;
        out.reset();
        for r in 0..text.rows() {
            let (ColRef::Text(t), ColRef::Tokens(spans)) = (text.row(r), tokens.row(r)) else {
                return Err(DataError::Runtime(format!(
                    "word ngram wants text+token batches, got {:?}+{:?}",
                    text.column_type(),
                    tokens.column_type()
                )));
            };
            let mut row = out.begin_sparse_row()?;
            self.for_each_word_match(t, spans, |idx| row.accumulate(idx, 1.0));
            row.finish();
        }
        Ok(())
    }

    fn check_batch_out(&self, out: &ColumnBatch) -> Result<()> {
        match out {
            ColumnBatch::Sparse { dim, .. } if *dim as usize == self.dim() => Ok(()),
            other => Err(DataError::Runtime(format!(
                "ngram output batch mismatch: want sparse[{}], got {:?}",
                self.dim(),
                other.column_type()
            ))),
        }
    }

    fn check_out(&self, out: &Vector) -> Result<()> {
        match out {
            Vector::Sparse { dim, .. } if *dim as usize == self.dim() => Ok(()),
            other => Err(DataError::Runtime(format!(
                "ngram output buffer mismatch: want sparse[{}], got {:?}",
                self.dim(),
                other.column_type()
            ))),
        }
    }
}

impl ParamBlob for NgramParams {
    const KIND: &'static str = "Ngram";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.n);
        wire::put_u32(&mut cfg, u32::from(self.all_lengths));
        wire::put_u32(&mut cfg, u32::from(self.fold_case));
        let mut keys = Vec::new();
        wire::put_u32(&mut keys, self.dict.len() as u32);
        for k in self.dict.keys() {
            wire::put_str(&mut keys, k);
        }
        vec![("config".into(), cfg), ("dictionary".into(), keys)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cfg = Cursor::new(section.entry("config")?);
        let n = cfg.u32()?;
        let all_lengths = cfg.u32()? != 0;
        let fold_case = cfg.u32()? != 0;
        let mut cur = Cursor::new(section.entry("dictionary")?);
        let count = cur.u32()? as usize;
        let mut keys = Vec::with_capacity(count.min(1 << 22));
        for _ in 0..count {
            keys.push(cur.str()?.into_boxed_str());
        }
        Ok(NgramParams::new(n, all_lengths, fold_case, keys))
    }

    fn heap_bytes(&self) -> usize {
        self.dict.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::tokenizer::TokenizerParams;
    use pretzel_data::ColumnType;

    fn keys(v: &[&str]) -> Vec<Box<str>> {
        v.iter().map(|s| Box::from(*s)).collect()
    }

    fn sparse_pairs(v: &Vector) -> Vec<(u32, f32)> {
        match v {
            Vector::Sparse {
                indices, values, ..
            } => indices
                .iter()
                .copied()
                .zip(values.iter().copied())
                .collect(),
            _ => panic!("not sparse"),
        }
    }

    #[test]
    fn char_trigrams_count_matches() {
        let p = NgramParams::new(3, false, true, keys(&["abc", "bcd", "zzz"]));
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 3 });
        p.apply_char("xabcdabc", &mut out).unwrap();
        // Windows: xab abc bcd cda dab abc -> abc ×2, bcd ×1.
        assert_eq!(sparse_pairs(&out), vec![(0, 2.0), (1, 1.0)]);
    }

    #[test]
    fn char_fold_case_matches_uppercase() {
        let p = NgramParams::new(2, false, true, keys(&["ab"]));
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 1 });
        p.apply_char("AB", &mut out).unwrap();
        assert_eq!(sparse_pairs(&out), vec![(0, 1.0)]);

        let exact = NgramParams::new(2, false, false, keys(&["ab"]));
        let mut out2 = Vector::with_type(ColumnType::F32Sparse { len: 1 });
        exact.apply_char("AB", &mut out2).unwrap();
        assert_eq!(sparse_pairs(&out2), vec![]);
    }

    #[test]
    fn word_unigrams_and_bigrams() {
        let p = NgramParams::new(2, true, true, keys(&["nice", "nice product", "bad"]));
        let tok = TokenizerParams::whitespace_punct();
        let text = "a nice product";
        let mut toks = Vector::with_type(ColumnType::TokenList);
        tok.apply(text, &mut toks).unwrap();
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 3 });
        p.apply_word(text, toks.as_tokens().unwrap(), &mut out)
            .unwrap();
        assert_eq!(sparse_pairs(&out), vec![(0, 1.0), (1, 1.0)]);
    }

    #[test]
    fn word_exact_length_only() {
        let p = NgramParams::new(2, false, true, keys(&["nice", "nice product"]));
        let tok = TokenizerParams::whitespace_punct();
        let text = "nice product";
        let mut toks = Vector::with_type(ColumnType::TokenList);
        tok.apply(text, &mut toks).unwrap();
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 2 });
        p.apply_word(text, toks.as_tokens().unwrap(), &mut out)
            .unwrap();
        // Only the bigram; the unigram "nice" must not fire with
        // all_lengths = false.
        assert_eq!(sparse_pairs(&out), vec![(1, 1.0)]);
    }

    #[test]
    fn short_input_yields_empty_output() {
        let p = NgramParams::new(3, false, true, keys(&["abc"]));
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 1 });
        p.apply_char("ab", &mut out).unwrap();
        assert_eq!(sparse_pairs(&out), vec![]);
    }

    #[test]
    fn output_buffer_dim_checked() {
        let p = NgramParams::new(3, false, true, keys(&["abc"]));
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 2 });
        assert!(p.apply_char("abc", &mut out).is_err());
    }

    #[test]
    fn duplicate_keys_keep_first_index() {
        let d = NgramDict::new(keys(&["AB", "ab"]), true);
        assert_eq!(d.probe(NgramDict::hash_key("ab", true)), Some(0));
    }

    #[test]
    fn round_trip_through_section_preserves_behaviour() {
        let p = NgramParams::new(2, true, true, keys(&["good", "not good"]));
        let section = Section {
            name: "op2.Ngram".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        let q = NgramParams::from_entries(&section).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.checksum(), q.checksum());
        assert!(q
            .dict
            .probe(NgramDict::hash_key("not good", true))
            .is_some());
    }

    #[test]
    fn heap_bytes_scales_with_dictionary() {
        let small = NgramParams::new(3, false, true, keys(&["abc"]));
        let big_keys: Vec<Box<str>> = (0..1000).map(|i| format!("k{i:04}").into()).collect();
        let big = NgramParams::new(3, false, true, big_keys);
        assert!(big.heap_bytes() > small.heap_bytes() * 100);
    }
}
