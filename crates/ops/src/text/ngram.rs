//! Dictionary-based n-gram featurizers (CharNgram, WordNgram).
//!
//! These are the heavy featurizers of the SA pipeline: "Char and Word Ngrams
//! featurize input tokens by extracting n-grams" (paper Figure 1), with
//! trained dictionaries of about a million entries occupying tens of MBs
//! (paper Table 1) — which is why sharing their parameters across pipelines
//! (Figure 3) dominates the memory experiments.
//!
//! The kernel is allocation-free: candidate n-grams are *hashed in place*
//! (streaming FNV-1a over case-folded bytes) and probed against a
//! `hash → dictionary index` map; matches accumulate counts into a sparse
//! output vector. Distinct n-grams colliding on the 64-bit hash would share
//! a count slot; at dictionary sizes up to 2^20 the collision probability is
//! below 2^-24 and has no effect on the systems behaviour being measured.

use crate::annotations::Annotations;
use crate::params::{hashmap_bytes, ParamBlob};
use pretzel_data::hash::Fnv1a;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::vector::Span;
use pretzel_data::{ColRef, ColumnBatch, DataError, Result, Vector};
use std::collections::HashMap;

/// Separator byte between tokens when hashing word n-grams.
const WORD_SEP: u8 = 0x1f;

#[inline]
fn fold(b: u8, fold_case: bool) -> u8 {
    if fold_case && b.is_ascii_uppercase() {
        b | 0x20
    } else {
        b
    }
}

/// A trained n-gram dictionary: the keys (owned, for size realism and
/// serialization) plus a derived hash → index probe table.
#[derive(Debug, Clone)]
pub struct NgramDict {
    keys: Vec<Box<str>>,
    // Keys are already FNV-1a hashes; a pass-through hasher avoids paying
    // SipHash on every probe of the hottest loop in the SA workload.
    map: HashMap<u64, u32, pretzel_data::hash::PrehashedBuild>,
    fold_case: bool,
}

impl PartialEq for NgramDict {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys && self.fold_case == other.fold_case
    }
}

impl NgramDict {
    /// Builds a dictionary from keys. Word n-gram keys use a single ASCII
    /// space between tokens (e.g. `"not good"`).
    ///
    /// Later duplicates (after case folding) are ignored, keeping the first
    /// index, so dictionary indices are stable.
    pub fn new(keys: Vec<Box<str>>, fold_case: bool) -> Self {
        let mut map: HashMap<u64, u32, pretzel_data::hash::PrehashedBuild> =
            HashMap::with_capacity_and_hasher(keys.len(), Default::default());
        for (i, k) in keys.iter().enumerate() {
            let h = Self::hash_key(k, fold_case);
            map.entry(h).or_insert(i as u32);
        }
        NgramDict {
            keys,
            map,
            fold_case,
        }
    }

    /// Number of dictionary entries (= featurizer output dimensionality).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The dictionary keys.
    pub fn keys(&self) -> &[Box<str>] {
        &self.keys
    }

    /// Probes a precomputed hash.
    #[inline]
    pub fn probe(&self, hash: u64) -> Option<u32> {
        self.map.get(&hash).copied()
    }

    /// Hashes a dictionary key the same way the kernels hash input windows:
    /// tokens separated by `WORD_SEP`, bytes case-folded.
    pub fn hash_key(key: &str, fold_case: bool) -> u64 {
        let mut h = Fnv1a::new();
        let mut first = true;
        for tok in key.split(' ') {
            if !first {
                h.write(&[WORD_SEP]);
            }
            first = false;
            for &b in tok.as_bytes() {
                h.write(&[fold(b, fold_case)]);
            }
        }
        h.finish()
    }

    /// Heap bytes: key storage plus the probe table.
    pub fn heap_bytes(&self) -> usize {
        let keys: usize = self.keys.iter().map(|k| k.len()).sum();
        keys + self.keys.capacity() * std::mem::size_of::<Box<str>>()
            + hashmap_bytes(self.map.len(), self.map.capacity())
    }
}

/// Parameters shared by CharNgram and WordNgram.
#[derive(Debug, Clone, PartialEq)]
pub struct NgramParams {
    /// Maximum n-gram length.
    pub n: u32,
    /// Extract all lengths `1..=n` (true) or exactly `n` (false).
    pub all_lengths: bool,
    /// Case-insensitive matching.
    pub fold_case: bool,
    /// The trained dictionary.
    pub dict: NgramDict,
}

impl NgramParams {
    /// Creates n-gram parameters over a dictionary.
    pub fn new(n: u32, all_lengths: bool, fold_case: bool, keys: Vec<Box<str>>) -> Self {
        NgramParams {
            n,
            all_lengths,
            fold_case,
            dict: NgramDict::new(keys, fold_case),
        }
    }

    /// Output dimensionality (dictionary size).
    pub fn dim(&self) -> usize {
        self.dict.len()
    }

    /// Operator annotations: memory-bound featurizer, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    /// Streams every dictionary hit in `text` at character level.
    ///
    /// This is the fusion hook (paper §2): a fused `ngram → dot-product`
    /// physical stage accumulates `weights[offset + idx]` directly in the
    /// callback and never materializes the sparse feature vector at all.
    #[inline]
    pub fn for_each_char_match(&self, text: &str, mut f: impl FnMut(u32)) {
        let bytes = text.as_bytes();
        for k in self.lengths() {
            let k = k as usize;
            if bytes.len() < k {
                continue;
            }
            for w in bytes.windows(k) {
                let mut h = Fnv1a::new();
                for &b in w {
                    h.write(&[fold(b, self.fold_case)]);
                }
                if let Some(idx) = self.dict.probe(h.finish()) {
                    f(idx);
                }
            }
        }
    }

    /// Streams every dictionary hit at word level (`spans` over `text`).
    ///
    /// Fusion hook, see [`Self::for_each_char_match`].
    #[inline]
    pub fn for_each_word_match(&self, text: &str, spans: &[Span], mut f: impl FnMut(u32)) {
        let bytes = text.as_bytes();
        for k in self.lengths() {
            let k = k as usize;
            if spans.len() < k {
                continue;
            }
            for w in spans.windows(k) {
                let mut h = Fnv1a::new();
                for (ti, sp) in w.iter().enumerate() {
                    if ti > 0 {
                        h.write(&[WORD_SEP]);
                    }
                    for &b in &bytes[sp.start as usize..sp.end as usize] {
                        h.write(&[fold(b, self.fold_case)]);
                    }
                }
                if let Some(idx) = self.dict.probe(h.finish()) {
                    f(idx);
                }
            }
        }
    }

    /// Character-level extraction: hash every byte window of each length.
    ///
    /// `out` must be a sparse buffer of dimension [`Self::dim`]; it is
    /// cleared first.
    pub fn apply_char(&self, text: &str, out: &mut Vector) -> Result<()> {
        self.check_out(out)?;
        out.reset();
        self.for_each_char_match(text, |idx| out.sparse_accumulate(idx, 1.0));
        Ok(())
    }

    /// Word-level extraction: hash every token window of each length.
    ///
    /// `spans` index into `text`; `out` as for [`Self::apply_char`].
    pub fn apply_word(&self, text: &str, spans: &[Span], out: &mut Vector) -> Result<()> {
        self.check_out(out)?;
        out.reset();
        self.for_each_word_match(text, spans, |idx| out.sparse_accumulate(idx, 1.0));
        Ok(())
    }

    /// Batch character-level extraction: every text row into one CSR row.
    /// Per-row match order and duplicate-summing are exactly
    /// [`Self::apply_char`]'s, so rows are bitwise-identical.
    pub fn eval_batch_char(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        self.check_batch_out(out)?;
        out.reset();
        for r in 0..input.rows() {
            let ColRef::Text(text) = input.row(r) else {
                return Err(DataError::Runtime(format!(
                    "char ngram wants text batch, got {:?}",
                    input.column_type()
                )));
            };
            let mut row = out.begin_sparse_row()?;
            self.for_each_char_match(text, |idx| row.accumulate(idx, 1.0));
            row.finish();
        }
        Ok(())
    }

    /// Batch word-level extraction over parallel text and token batches.
    pub fn eval_batch_word(
        &self,
        text: &ColumnBatch,
        tokens: &ColumnBatch,
        out: &mut ColumnBatch,
    ) -> Result<()> {
        self.check_batch_out(out)?;
        out.reset();
        for r in 0..text.rows() {
            let (ColRef::Text(t), ColRef::Tokens(spans)) = (text.row(r), tokens.row(r)) else {
                return Err(DataError::Runtime(format!(
                    "word ngram wants text+token batches, got {:?}+{:?}",
                    text.column_type(),
                    tokens.column_type()
                )));
            };
            let mut row = out.begin_sparse_row()?;
            self.for_each_word_match(t, spans, |idx| row.accumulate(idx, 1.0));
            row.finish();
        }
        Ok(())
    }

    fn lengths(&self) -> std::ops::RangeInclusive<u32> {
        if self.all_lengths {
            1..=self.n
        } else {
            self.n..=self.n
        }
    }

    fn check_batch_out(&self, out: &ColumnBatch) -> Result<()> {
        match out {
            ColumnBatch::Sparse { dim, .. } if *dim as usize == self.dim() => Ok(()),
            other => Err(DataError::Runtime(format!(
                "ngram output batch mismatch: want sparse[{}], got {:?}",
                self.dim(),
                other.column_type()
            ))),
        }
    }

    fn check_out(&self, out: &Vector) -> Result<()> {
        match out {
            Vector::Sparse { dim, .. } if *dim as usize == self.dim() => Ok(()),
            other => Err(DataError::Runtime(format!(
                "ngram output buffer mismatch: want sparse[{}], got {:?}",
                self.dim(),
                other.column_type()
            ))),
        }
    }
}

impl ParamBlob for NgramParams {
    const KIND: &'static str = "Ngram";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.n);
        wire::put_u32(&mut cfg, u32::from(self.all_lengths));
        wire::put_u32(&mut cfg, u32::from(self.fold_case));
        let mut keys = Vec::new();
        wire::put_u32(&mut keys, self.dict.len() as u32);
        for k in self.dict.keys() {
            wire::put_str(&mut keys, k);
        }
        vec![("config".into(), cfg), ("dictionary".into(), keys)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cfg = Cursor::new(section.entry("config")?);
        let n = cfg.u32()?;
        let all_lengths = cfg.u32()? != 0;
        let fold_case = cfg.u32()? != 0;
        let mut cur = Cursor::new(section.entry("dictionary")?);
        let count = cur.u32()? as usize;
        let mut keys = Vec::with_capacity(count.min(1 << 22));
        for _ in 0..count {
            keys.push(cur.str()?.into_boxed_str());
        }
        Ok(NgramParams::new(n, all_lengths, fold_case, keys))
    }

    fn heap_bytes(&self) -> usize {
        self.dict.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::tokenizer::TokenizerParams;
    use pretzel_data::ColumnType;

    fn keys(v: &[&str]) -> Vec<Box<str>> {
        v.iter().map(|s| Box::from(*s)).collect()
    }

    fn sparse_pairs(v: &Vector) -> Vec<(u32, f32)> {
        match v {
            Vector::Sparse {
                indices, values, ..
            } => indices
                .iter()
                .copied()
                .zip(values.iter().copied())
                .collect(),
            _ => panic!("not sparse"),
        }
    }

    #[test]
    fn char_trigrams_count_matches() {
        let p = NgramParams::new(3, false, true, keys(&["abc", "bcd", "zzz"]));
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 3 });
        p.apply_char("xabcdabc", &mut out).unwrap();
        // Windows: xab abc bcd cda dab abc -> abc ×2, bcd ×1.
        assert_eq!(sparse_pairs(&out), vec![(0, 2.0), (1, 1.0)]);
    }

    #[test]
    fn char_fold_case_matches_uppercase() {
        let p = NgramParams::new(2, false, true, keys(&["ab"]));
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 1 });
        p.apply_char("AB", &mut out).unwrap();
        assert_eq!(sparse_pairs(&out), vec![(0, 1.0)]);

        let exact = NgramParams::new(2, false, false, keys(&["ab"]));
        let mut out2 = Vector::with_type(ColumnType::F32Sparse { len: 1 });
        exact.apply_char("AB", &mut out2).unwrap();
        assert_eq!(sparse_pairs(&out2), vec![]);
    }

    #[test]
    fn word_unigrams_and_bigrams() {
        let p = NgramParams::new(2, true, true, keys(&["nice", "nice product", "bad"]));
        let tok = TokenizerParams::whitespace_punct();
        let text = "a nice product";
        let mut toks = Vector::with_type(ColumnType::TokenList);
        tok.apply(text, &mut toks).unwrap();
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 3 });
        p.apply_word(text, toks.as_tokens().unwrap(), &mut out)
            .unwrap();
        assert_eq!(sparse_pairs(&out), vec![(0, 1.0), (1, 1.0)]);
    }

    #[test]
    fn word_exact_length_only() {
        let p = NgramParams::new(2, false, true, keys(&["nice", "nice product"]));
        let tok = TokenizerParams::whitespace_punct();
        let text = "nice product";
        let mut toks = Vector::with_type(ColumnType::TokenList);
        tok.apply(text, &mut toks).unwrap();
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 2 });
        p.apply_word(text, toks.as_tokens().unwrap(), &mut out)
            .unwrap();
        // Only the bigram; the unigram "nice" must not fire with
        // all_lengths = false.
        assert_eq!(sparse_pairs(&out), vec![(1, 1.0)]);
    }

    #[test]
    fn short_input_yields_empty_output() {
        let p = NgramParams::new(3, false, true, keys(&["abc"]));
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 1 });
        p.apply_char("ab", &mut out).unwrap();
        assert_eq!(sparse_pairs(&out), vec![]);
    }

    #[test]
    fn output_buffer_dim_checked() {
        let p = NgramParams::new(3, false, true, keys(&["abc"]));
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 2 });
        assert!(p.apply_char("abc", &mut out).is_err());
    }

    #[test]
    fn duplicate_keys_keep_first_index() {
        let d = NgramDict::new(keys(&["AB", "ab"]), true);
        assert_eq!(d.probe(NgramDict::hash_key("ab", true)), Some(0));
    }

    #[test]
    fn round_trip_through_section_preserves_behaviour() {
        let p = NgramParams::new(2, true, true, keys(&["good", "not good"]));
        let section = Section {
            name: "op2.Ngram".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        let q = NgramParams::from_entries(&section).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.checksum(), q.checksum());
        assert!(q
            .dict
            .probe(NgramDict::hash_key("not good", true))
            .is_some());
    }

    #[test]
    fn heap_bytes_scales_with_dictionary() {
        let small = NgramParams::new(3, false, true, keys(&["abc"]));
        let big_keys: Vec<Box<str>> = (0..1000).map(|i| format!("k{i:04}").into()).collect();
        let big = NgramParams::new(3, false, true, big_keys);
        assert!(big.heap_bytes() > small.heap_bytes() * 100);
    }
}
