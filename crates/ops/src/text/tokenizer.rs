//! Tokenizer: splits text into token spans.
//!
//! The SA pipeline's first featurizer: "Tokenizer extracts tokens (e.g.,
//! words) from the input string" (paper Figure 1). The output is a list of
//! byte spans into the input text, not owned strings — downstream n-gram
//! featurizers hash the spans in place, keeping the prediction path
//! allocation-free (paper §3, end-to-end optimization (1)).

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::vector::Span;
use pretzel_data::{ColRef, ColumnBatch, DataError, Result, Vector};

/// Tokenizer parameters: the delimiter byte set.
#[derive(Debug, Clone)]
pub struct TokenizerParams {
    /// Delimiter bytes, sorted and deduplicated (serialized form).
    pub delims: Vec<u8>,
    // Derived 256-entry lookup table; rebuilt on deserialization.
    table: [bool; 256],
}

impl PartialEq for TokenizerParams {
    fn eq(&self, other: &Self) -> bool {
        self.delims == other.delims
    }
}

impl Eq for TokenizerParams {}

impl TokenizerParams {
    /// Creates a tokenizer splitting on the given delimiter bytes.
    pub fn new(delims: impl IntoIterator<Item = u8>) -> Self {
        let mut d: Vec<u8> = delims.into_iter().collect();
        d.sort_unstable();
        d.dedup();
        let mut table = [false; 256];
        for &b in &d {
            table[b as usize] = true;
        }
        TokenizerParams { delims: d, table }
    }

    /// The default word tokenizer: whitespace and common punctuation.
    ///
    /// All 250 SA pipelines share one Tokenize configuration (paper
    /// Figure 3), which is what makes this object fully shareable.
    pub fn whitespace_punct() -> Self {
        TokenizerParams::new(*b" \t\r\n.,;:!?()[]\"'")
    }

    /// Operator annotations: memory-bound featurizer, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    /// True if byte `b` is a delimiter.
    #[inline]
    pub fn is_delim(&self, b: u8) -> bool {
        self.table[b as usize]
    }

    /// Tokenizes `text` into spans appended to `out`.
    ///
    /// `out` must be a `Tokens` buffer; it is cleared first.
    pub fn apply(&self, text: &str, out: &mut Vector) -> Result<()> {
        let spans = match out {
            Vector::Tokens(t) => t,
            other => {
                return Err(DataError::Runtime(format!(
                    "tokenizer output buffer variant mismatch: {:?}",
                    other.column_type()
                )))
            }
        };
        spans.clear();
        self.tokenize_append(text, spans);
        Ok(())
    }

    /// The core span scan, appending to `spans` — shared by the per-record
    /// and the columnar batch kernel so both emit identical spans.
    fn tokenize_append(&self, text: &str, spans: &mut Vec<Span>) {
        let bytes = text.as_bytes();
        let mut start: Option<usize> = None;
        for (i, &b) in bytes.iter().enumerate() {
            if self.is_delim(b) {
                if let Some(s) = start.take() {
                    spans.push(Span::new(s as u32, i as u32));
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s) = start {
            spans.push(Span::new(s as u32, bytes.len() as u32));
        }
    }

    /// Batch kernel: tokenizes every text row into one packed token batch.
    /// Spans stay relative to each row's own text, so downstream batch
    /// featurizers slice rows zero-copy exactly like the per-record path.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        if !matches!(
            input,
            ColumnBatch::Text { .. } | ColumnBatch::TextSpans { .. }
        ) {
            return Err(DataError::Runtime(format!(
                "tokenizer wants text batch, got {:?}",
                input.column_type()
            )));
        }
        out.reset();
        for r in 0..input.rows() {
            let ColRef::Text(text) = input.row(r) else {
                unreachable!("text batch rows are text");
            };
            out.push_tokens_with(|spans| self.tokenize_append(text, spans))?;
        }
        Ok(())
    }
}

impl ParamBlob for TokenizerParams {
    const KIND: &'static str = "Tokenizer";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.delims.len() as u32);
        cfg.extend_from_slice(&self.delims);
        vec![("delims".into(), cfg)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let blob = section.entry("delims")?;
        let mut cur = Cursor::new(blob);
        let n = cur.u32()? as usize;
        if blob.len() < 4 + n {
            return Err(DataError::Codec("truncated tokenizer delims".into()));
        }
        Ok(TokenizerParams::new(blob[4..4 + n].iter().copied()))
    }

    fn heap_bytes(&self) -> usize {
        self.delims.capacity() + std::mem::size_of::<[bool; 256]>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    fn tokens_of(p: &TokenizerParams, text: &str) -> Vec<String> {
        let mut out = Vector::with_type(ColumnType::TokenList);
        p.apply(text, &mut out).unwrap();
        out.as_tokens()
            .unwrap()
            .iter()
            .map(|s| s.slice(text).to_string())
            .collect()
    }

    #[test]
    fn splits_on_whitespace_and_punct() {
        let p = TokenizerParams::whitespace_punct();
        assert_eq!(
            tokens_of(&p, "This is a nice product."),
            vec!["This", "is", "a", "nice", "product"]
        );
    }

    #[test]
    fn handles_leading_trailing_and_repeated_delims() {
        let p = TokenizerParams::whitespace_punct();
        assert_eq!(tokens_of(&p, "  hello,,  world  "), vec!["hello", "world"]);
        assert_eq!(tokens_of(&p, ""), Vec::<String>::new());
        assert_eq!(tokens_of(&p, " ., "), Vec::<String>::new());
    }

    #[test]
    fn single_token_without_delims() {
        let p = TokenizerParams::whitespace_punct();
        assert_eq!(tokens_of(&p, "word"), vec!["word"]);
    }

    #[test]
    fn spans_reference_original_text() {
        let p = TokenizerParams::whitespace_punct();
        let text = "ab cd";
        let mut out = Vector::with_type(ColumnType::TokenList);
        p.apply(text, &mut out).unwrap();
        let spans = out.as_tokens().unwrap();
        assert_eq!(spans[0], Span::new(0, 2));
        assert_eq!(spans[1], Span::new(3, 5));
    }

    #[test]
    fn delims_are_sorted_and_deduped() {
        let p = TokenizerParams::new(*b"ba ab");
        assert_eq!(p.delims, vec![b' ', b'a', b'b']);
    }

    #[test]
    fn round_trip_through_section() {
        let p = TokenizerParams::whitespace_punct();
        let section = Section {
            name: "op1.Tokenizer".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        let q = TokenizerParams::from_entries(&section).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.checksum(), q.checksum());
        assert_eq!(tokens_of(&q, "a b"), vec!["a", "b"]);
    }

    #[test]
    fn wrong_buffer_variant_is_error() {
        let p = TokenizerParams::whitespace_punct();
        let mut out = Vector::with_type(ColumnType::Text);
        assert!(p.apply("x", &mut out).is_err());
    }
}
