//! CSV ingestion operator.
//!
//! Flour programs start with `CSV.FromText(',').WithSchema<T>().Select(col)`
//! (paper Listing 1). This operator implements that prefix: it parses one
//! CSV line and either selects a text field (Sentiment Analysis) or decodes
//! all numeric fields into a dense vector (Attendee Count's 40-dimensional
//! structured input, paper Table 1).

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColRef, ColumnBatch, ColumnType, DataError, Result, Vector};

/// What the parser extracts from each line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvOutput {
    /// Select field `index` as raw text.
    TextField {
        /// Zero-based field index to select.
        index: u32,
    },
    /// Parse all fields as `f32` into a dense vector of length `len`.
    DenseFields {
        /// Expected number of numeric fields.
        len: u32,
    },
}

/// Parameters of the CSV parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvParams {
    /// Field separator byte (e.g. `b','`).
    pub separator: u8,
    /// Extraction mode.
    pub output: CsvOutput,
}

impl CsvParams {
    /// Parser that selects text field `index` from comma-separated lines.
    pub fn select_text(index: u32) -> Self {
        CsvParams {
            separator: b',',
            output: CsvOutput::TextField { index },
        }
    }

    /// Parser that decodes `len` comma-separated floats.
    pub fn dense(len: u32) -> Self {
        CsvParams {
            separator: b',',
            output: CsvOutput::DenseFields { len },
        }
    }

    /// Output column type.
    pub fn output_type(&self) -> ColumnType {
        match self.output {
            CsvOutput::TextField { .. } => ColumnType::Text,
            CsvOutput::DenseFields { len } => ColumnType::F32Dense { len: len as usize },
        }
    }

    /// Operator annotations: memory-bound featurizer, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    /// Parses `line` into `out`.
    ///
    /// `out` must already be of the output variant (pooled buffers are typed
    /// by the stage schema); contents are overwritten.
    pub fn apply(&self, line: &str, out: &mut Vector) -> Result<()> {
        match (self.output, out) {
            (CsvOutput::TextField { index }, Vector::Text(dst)) => {
                let field = split_field(line, self.separator, index).ok_or_else(|| {
                    DataError::Runtime(format!("csv line has no field {index}: `{line}`"))
                })?;
                dst.clear();
                dst.push_str(field);
                Ok(())
            }
            (CsvOutput::DenseFields { len }, Vector::Dense(dst)) => {
                if dst.len() != len as usize {
                    return Err(DataError::Runtime(format!(
                        "dense csv output buffer has len {}, expected {len}",
                        dst.len()
                    )));
                }
                let mut count = 0usize;
                for (i, field) in line.split(self.separator as char).enumerate() {
                    if i >= len as usize {
                        break;
                    }
                    dst[i] = field.trim().parse::<f32>().map_err(|e| {
                        DataError::Runtime(format!("bad numeric field {i} `{field}`: {e}"))
                    })?;
                    count += 1;
                }
                if count < len as usize {
                    return Err(DataError::Runtime(format!(
                        "csv line has {count} fields, expected {len}"
                    )));
                }
                Ok(())
            }
            (_, out) => Err(DataError::Runtime(format!(
                "csv output buffer variant mismatch: {:?}",
                out.column_type()
            ))),
        }
    }

    /// Batch kernel: parses every text row of the chunk (field selection
    /// and numeric parsing identical to [`Self::apply`]).
    ///
    /// Field selection does not copy: the output batch becomes a
    /// `TextSpans` view borrowing the input's shared buffer, with one
    /// `(start, end)` pair per row — selecting a field is pure offset
    /// arithmetic over bytes the ingest path already packed.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        if out.column_type() != self.output_type() {
            return Err(DataError::Runtime(format!(
                "csv output batch variant mismatch: {:?}",
                out.column_type()
            )));
        }
        if let CsvOutput::TextField { index } = self.output {
            if let Some(source) = input.shared_text() {
                let source = std::sync::Arc::clone(source);
                let base = source.as_ptr() as usize;
                let spans = out.begin_text_spans(std::sync::Arc::clone(&source))?;
                for r in 0..input.rows() {
                    let ColRef::Text(line) = input.row(r) else {
                        unreachable!("text batch rows are text");
                    };
                    let field = split_field(line, self.separator, index).ok_or_else(|| {
                        DataError::Runtime(format!("csv line has no field {index}: `{line}`"))
                    })?;
                    // `field` is a subslice of the shared buffer, so its
                    // offset from the buffer base is the borrowed span.
                    let start = field.as_ptr() as usize - base;
                    spans.push((start as u32, (start + field.len()) as u32));
                }
                return Ok(());
            }
        }
        out.reset();
        for r in 0..input.rows() {
            let ColRef::Text(line) = input.row(r) else {
                return Err(DataError::Runtime(format!(
                    "csv parser wants text batch, got {:?}",
                    input.column_type()
                )));
            };
            match self.output {
                CsvOutput::TextField { index } => {
                    let field = split_field(line, self.separator, index).ok_or_else(|| {
                        DataError::Runtime(format!("csv line has no field {index}: `{line}`"))
                    })?;
                    out.push_text(field)?;
                }
                CsvOutput::DenseFields { len } => {
                    let dst = out.push_dense_row()?;
                    let mut count = 0usize;
                    for (i, field) in line.split(self.separator as char).enumerate() {
                        if i >= len as usize {
                            break;
                        }
                        dst[i] = field.trim().parse::<f32>().map_err(|e| {
                            DataError::Runtime(format!("bad numeric field {i} `{field}`: {e}"))
                        })?;
                        count += 1;
                    }
                    if count < len as usize {
                        return Err(DataError::Runtime(format!(
                            "csv line has {count} fields, expected {len}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

fn split_field(line: &str, sep: u8, index: u32) -> Option<&str> {
    line.split(sep as char).nth(index as usize)
}

impl ParamBlob for CsvParams {
    const KIND: &'static str = "CsvParse";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.separator as u32);
        match self.output {
            CsvOutput::TextField { index } => {
                wire::put_u32(&mut cfg, 0);
                wire::put_u32(&mut cfg, index);
            }
            CsvOutput::DenseFields { len } => {
                wire::put_u32(&mut cfg, 1);
                wire::put_u32(&mut cfg, len);
            }
        }
        vec![("config".into(), cfg)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cur = Cursor::new(section.entry("config")?);
        let separator = cur.u32()? as u8;
        let tag = cur.u32()?;
        let arg = cur.u32()?;
        let output = match tag {
            0 => CsvOutput::TextField { index: arg },
            1 => CsvOutput::DenseFields { len: arg },
            t => return Err(DataError::Codec(format!("bad csv output tag {t}"))),
        };
        Ok(CsvParams { separator, output })
    }

    fn heap_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_text_field() {
        let p = CsvParams::select_text(1);
        let mut out = Vector::with_type(ColumnType::Text);
        p.apply("5,what a great product,US", &mut out).unwrap();
        assert_eq!(out.as_text().unwrap(), "what a great product");
    }

    #[test]
    fn select_missing_field_is_error() {
        let p = CsvParams::select_text(3);
        let mut out = Vector::with_type(ColumnType::Text);
        assert!(p.apply("a,b", &mut out).is_err());
    }

    #[test]
    fn dense_fields_parse() {
        let p = CsvParams::dense(4);
        let mut out = Vector::with_type(ColumnType::F32Dense { len: 4 });
        p.apply("1.5, -2, 0, 3e1", &mut out).unwrap();
        assert_eq!(out.as_dense().unwrap(), &[1.5, -2.0, 0.0, 30.0]);
    }

    #[test]
    fn dense_rejects_short_lines_and_garbage() {
        let p = CsvParams::dense(3);
        let mut out = Vector::with_type(ColumnType::F32Dense { len: 3 });
        assert!(p.apply("1,2", &mut out).is_err());
        assert!(p.apply("1,x,3", &mut out).is_err());
    }

    #[test]
    fn wrong_buffer_variant_is_error() {
        let p = CsvParams::select_text(0);
        let mut out = Vector::with_type(ColumnType::F32Scalar);
        assert!(p.apply("a,b", &mut out).is_err());
    }

    #[test]
    fn round_trip_through_section() {
        for p in [CsvParams::select_text(2), CsvParams::dense(40)] {
            let entries = p.to_entries();
            let section = Section {
                name: "op0.CsvParse".into(),
                checksum: 0,
                entries,
            };
            let q = CsvParams::from_entries(&section).unwrap();
            assert_eq!(p, q);
            assert_eq!(p.checksum(), q.checksum());
        }
    }

    #[test]
    fn batch_field_selection_borrows_spans_zero_copy() {
        let p = CsvParams::select_text(1);
        let mut input = ColumnBatch::with_type(ColumnType::Text);
        input.push_text("5,what a great product,US").unwrap();
        input.push_text("1,,UK").unwrap();
        input.push_text("3,ok,DE").unwrap();
        let mut out = ColumnBatch::with_type(ColumnType::Text);
        p.eval_batch(&input, &mut out).unwrap();
        assert_eq!(out.rows(), 3);
        // Same strings the per-record path extracts…
        for (r, want) in ["what a great product", "", "ok"].iter().enumerate() {
            let mut v = Vector::with_type(ColumnType::Text);
            let ColRef::Text(line) = input.row(r) else {
                unreachable!()
            };
            p.apply(line, &mut v).unwrap();
            assert_eq!(v.as_text().unwrap(), *want);
            match out.row(r) {
                ColRef::Text(s) => assert_eq!(s, *want),
                _ => unreachable!(),
            }
        }
        // …but borrowed, not copied: the output shares the input's buffer.
        assert!(std::sync::Arc::ptr_eq(
            out.shared_text().unwrap(),
            input.shared_text().unwrap()
        ));
        // A missing field still errors like the per-record path.
        let p3 = CsvParams::select_text(3);
        let mut out2 = ColumnBatch::with_type(ColumnType::Text);
        assert!(p3.eval_batch(&input, &mut out2).is_err());
    }

    #[test]
    fn checksums_distinguish_configs() {
        assert_ne!(
            CsvParams::select_text(0).checksum(),
            CsvParams::select_text(1).checksum()
        );
    }
}
