//! Text featurizers: CSV parsing, tokenization, n-grams, feature hashing.

pub mod csv;
pub mod hashing;
pub mod ngram;
pub mod tokenizer;
