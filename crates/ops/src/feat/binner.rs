//! Quantile binner.
//!
//! Maps each dimension of a dense vector onto the index of the training
//! quantile bin it falls into — the discretization featurizer tree models
//! are often trained behind. 1-to-1, memory-bound, fusible.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// Binner parameters: per-dimension ascending bin upper bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnerParams {
    /// `bounds[d]` holds the ascending upper bounds of dimension `d`'s bins.
    /// A value `x` maps to the first bin whose bound is `>= x`, or to
    /// `bounds[d].len()` if above all bounds.
    pub bounds: Vec<Vec<f32>>,
}

impl BinnerParams {
    /// Creates a binner from per-dimension bounds.
    pub fn new(bounds: Vec<Vec<f32>>) -> Self {
        BinnerParams { bounds }
    }

    /// Input/output dimensionality.
    pub fn dim(&self) -> usize {
        self.bounds.len()
    }

    /// Operator annotations: memory-bound featurizer, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    /// Bins `input` into `out` (dense → dense of bin indices as `f32`).
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        match (input, out) {
            (Vector::Dense(x), Vector::Dense(y))
                if x.len() == self.dim() && y.len() == self.dim() =>
            {
                for d in 0..x.len() {
                    let bs = &self.bounds[d];
                    // partition_point: count of bounds < x ⇒ bin index.
                    let bin = bs.partition_point(|&b| b < x[d]);
                    y[d] = bin as f32;
                }
                Ok(())
            }
            (input, _) => Err(DataError::Runtime(format!(
                "binner wants dense[{}], got {:?}",
                self.dim(),
                input.column_type()
            ))),
        }
    }

    /// Batch kernel: bins the chunk column-by-column so each dimension's
    /// bound table stays cache-resident across rows (per-element math
    /// identical to [`Self::apply`]).
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let dim = self.dim();
        let (x, in_dim, rows) = input.as_dense().ok_or_else(|| self.batch_err(input))?;
        if in_dim != dim || out.column_type() != (pretzel_data::ColumnType::F32Dense { len: dim }) {
            return Err(self.batch_err(input));
        }
        let y = out.fill_dense(rows)?;
        for (d, bs) in self.bounds.iter().enumerate() {
            for r in 0..rows {
                let bin = bs.partition_point(|&b| b < x[r * dim + d]);
                y[r * dim + d] = bin as f32;
            }
        }
        Ok(())
    }

    fn batch_err(&self, input: &ColumnBatch) -> DataError {
        DataError::Runtime(format!(
            "binner wants dense[{}] batch, got {:?}",
            self.dim(),
            input.column_type()
        ))
    }
}

impl ParamBlob for BinnerParams {
    const KIND: &'static str = "Binner";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut blob = Vec::new();
        wire::put_u32(&mut blob, self.bounds.len() as u32);
        for bs in &self.bounds {
            wire::put_f32s(&mut blob, bs);
        }
        vec![("bounds".into(), blob)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cur = Cursor::new(section.entry("bounds")?);
        let n = cur.u32()? as usize;
        let mut bounds = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            bounds.push(cur.f32s()?);
        }
        Ok(BinnerParams::new(bounds))
    }

    fn heap_bytes(&self) -> usize {
        self.bounds.capacity() * std::mem::size_of::<Vec<f32>>()
            + self.bounds.iter().map(|b| b.capacity() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    #[test]
    fn bins_by_partition_point() {
        let p = BinnerParams::new(vec![vec![0.0, 1.0, 2.0], vec![10.0]]);
        let x = Vector::Dense(vec![1.5, 5.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 2 });
        p.apply(&x, &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[2.0, 0.0]);
    }

    #[test]
    fn boundary_values_map_to_lower_bin() {
        let p = BinnerParams::new(vec![vec![1.0, 2.0]]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 1 });
        p.apply(&Vector::Dense(vec![1.0]), &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[0.0]);
        p.apply(&Vector::Dense(vec![2.5]), &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[2.0]);
    }

    #[test]
    fn round_trip_through_section() {
        let p = BinnerParams::new(vec![vec![0.5], vec![], vec![1.0, 2.0]]);
        let section = Section {
            name: "op.Binner".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        assert_eq!(BinnerParams::from_entries(&section).unwrap(), p);
    }

    #[test]
    fn dim_mismatch_is_error() {
        let p = BinnerParams::new(vec![vec![0.0]]);
        let x = Vector::Dense(vec![1.0, 2.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 1 });
        assert!(p.apply(&x, &mut y).is_err());
    }
}
