//! Vector normalization (L1 / L2 / max-abs).
//!
//! The paper's canonical n-to-1 aggregate: "a Normalizer requires the L2
//! norm of the complete vector" (§4.1.2), which makes it a pipeline breaker
//! in the stage-formation rules.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::batch::ColRef;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// Norm used for scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// Divide by the sum of absolute values.
    L1,
    /// Divide by the Euclidean norm.
    L2,
    /// Divide by the maximum absolute value.
    MaxAbs,
}

/// Normalizer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizerParams {
    /// Which norm to scale by.
    pub kind: NormKind,
    /// Input/output dimensionality.
    pub dim: u32,
}

impl NormalizerParams {
    /// Creates a normalizer.
    pub fn new(kind: NormKind, dim: u32) -> Self {
        NormalizerParams { kind, dim }
    }

    /// Operator annotations: aggregate / pipeline breaker.
    pub fn annotations(&self) -> Annotations {
        Annotations::aggregate()
    }

    /// Normalizes `input` into `out` (both dense or both sparse of
    /// dimension `dim`). A zero vector is passed through unchanged.
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        match (input, out) {
            (Vector::Dense(x), Vector::Dense(y)) => {
                if x.len() != self.dim as usize || y.len() != self.dim as usize {
                    return Err(self.err(input));
                }
                let norm = self.norm_dense(x);
                let inv = if norm > 0.0 { 1.0 / norm } else { 1.0 };
                for (o, &v) in y.iter_mut().zip(x.iter()) {
                    *o = v * inv;
                }
                Ok(())
            }
            (
                Vector::Sparse {
                    indices,
                    values,
                    dim,
                },
                Vector::Sparse {
                    indices: oi,
                    values: ov,
                    dim: od,
                },
            ) => {
                if *dim != self.dim || *od != self.dim {
                    return Err(self.err(input));
                }
                let norm = self.norm_values(values);
                let inv = if norm > 0.0 { 1.0 / norm } else { 1.0 };
                oi.clear();
                ov.clear();
                oi.extend_from_slice(indices);
                ov.extend(values.iter().map(|&v| v * inv));
                Ok(())
            }
            _ => Err(self.err(input)),
        }
    }

    /// Batch kernel: normalizes every row of the chunk, preserving the
    /// input layout (dense rows stay dense, CSR rows stay CSR). Row math is
    /// identical to [`Self::apply`].
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let dim = self.dim as usize;
        match input {
            ColumnBatch::Dense { dim: in_dim, .. } => {
                if *in_dim != dim || out.column_type() != input.column_type() {
                    return Err(self.batch_err(input));
                }
                let (x, _, rows) = input.as_dense().expect("checked dense");
                let y = out.fill_dense(rows)?;
                for (xr, yr) in x.chunks_exact(dim).zip(y.chunks_exact_mut(dim)) {
                    let norm = self.norm_values(xr);
                    let inv = if norm > 0.0 { 1.0 / norm } else { 1.0 };
                    for (o, &v) in yr.iter_mut().zip(xr.iter()) {
                        *o = v * inv;
                    }
                }
                Ok(())
            }
            ColumnBatch::Sparse { dim: in_dim, .. } => {
                if *in_dim != self.dim || out.column_type() != input.column_type() {
                    return Err(self.batch_err(input));
                }
                out.reset();
                for r in 0..input.rows() {
                    let ColRef::Sparse {
                        indices, values, ..
                    } = input.row(r)
                    else {
                        unreachable!("sparse batch rows are sparse");
                    };
                    let norm = self.norm_values(values);
                    let inv = if norm > 0.0 { 1.0 / norm } else { 1.0 };
                    let mut row = out.begin_sparse_row()?;
                    // Input indices are sorted+unique, so each accumulate
                    // appends at the row tail: O(nnz) copy, same values as
                    // the per-record kernel.
                    for (&i, &v) in indices.iter().zip(values) {
                        row.accumulate(i, v * inv);
                    }
                    row.finish();
                }
                Ok(())
            }
            _ => Err(self.batch_err(input)),
        }
    }

    fn batch_err(&self, input: &ColumnBatch) -> DataError {
        DataError::Runtime(format!(
            "normalizer wants matching dense/sparse[{}] batch, got {:?}",
            self.dim,
            input.column_type()
        ))
    }

    fn norm_dense(&self, x: &[f32]) -> f32 {
        self.norm_values(x)
    }

    fn norm_values(&self, x: &[f32]) -> f32 {
        match self.kind {
            NormKind::L1 => x.iter().map(|v| v.abs()).sum(),
            NormKind::L2 => x.iter().map(|v| v * v).sum::<f32>().sqrt(),
            NormKind::MaxAbs => x.iter().fold(0.0f32, |m, v| m.max(v.abs())),
        }
    }

    fn err(&self, input: &Vector) -> DataError {
        DataError::Runtime(format!(
            "normalizer wants matching dense/sparse[{}], got {:?}",
            self.dim,
            input.column_type()
        ))
    }
}

impl ParamBlob for NormalizerParams {
    const KIND: &'static str = "Normalizer";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        let tag = match self.kind {
            NormKind::L1 => 0,
            NormKind::L2 => 1,
            NormKind::MaxAbs => 2,
        };
        wire::put_u32(&mut cfg, tag);
        wire::put_u32(&mut cfg, self.dim);
        vec![("config".into(), cfg)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cur = Cursor::new(section.entry("config")?);
        let kind = match cur.u32()? {
            0 => NormKind::L1,
            1 => NormKind::L2,
            2 => NormKind::MaxAbs,
            t => return Err(DataError::Codec(format!("bad norm kind {t}"))),
        };
        Ok(NormalizerParams::new(kind, cur.u32()?))
    }

    fn heap_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    #[test]
    fn l2_normalizes_to_unit_norm() {
        let p = NormalizerParams::new(NormKind::L2, 2);
        let x = Vector::Dense(vec![3.0, 4.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 2 });
        p.apply(&x, &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[0.6, 0.8]);
    }

    #[test]
    fn l1_and_maxabs() {
        let x = Vector::Dense(vec![-1.0, 3.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 2 });
        NormalizerParams::new(NormKind::L1, 2)
            .apply(&x, &mut y)
            .unwrap();
        assert_eq!(y.as_dense().unwrap(), &[-0.25, 0.75]);
        NormalizerParams::new(NormKind::MaxAbs, 2)
            .apply(&x, &mut y)
            .unwrap();
        assert_eq!(y.as_dense().unwrap(), &[-1.0 / 3.0, 1.0]);
    }

    #[test]
    fn zero_vector_passes_through() {
        let p = NormalizerParams::new(NormKind::L2, 3);
        let x = Vector::Dense(vec![0.0; 3]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 3 });
        p.apply(&x, &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn sparse_normalization() {
        let p = NormalizerParams::new(NormKind::L2, 4);
        let mut x = Vector::with_type(ColumnType::F32Sparse { len: 4 });
        x.sparse_accumulate(1, 3.0);
        x.sparse_accumulate(3, 4.0);
        let mut y = Vector::with_type(ColumnType::F32Sparse { len: 4 });
        p.apply(&x, &mut y).unwrap();
        assert_eq!(y.to_dense(4).unwrap(), vec![0.0, 0.6, 0.0, 0.8]);
    }

    #[test]
    fn dim_mismatch_is_error() {
        let p = NormalizerParams::new(NormKind::L2, 3);
        let x = Vector::Dense(vec![1.0, 2.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 3 });
        assert!(p.apply(&x, &mut y).is_err());
    }

    #[test]
    fn round_trip_through_section() {
        for kind in [NormKind::L1, NormKind::L2, NormKind::MaxAbs] {
            let p = NormalizerParams::new(kind, 100);
            let section = Section {
                name: "op.Norm".into(),
                checksum: 0,
                entries: p.to_entries(),
            };
            assert_eq!(NormalizerParams::from_entries(&section).unwrap(), p);
        }
    }
}
