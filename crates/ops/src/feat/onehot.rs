//! One-hot encoder for low-cardinality categorical dimensions.
//!
//! Expands selected dimensions of a dense input into one-hot indicator
//! blocks (categories learned at training time), passing the remaining
//! dimensions through. 1-to-1 in the column sense, memory-bound, fusible.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// One-hot parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotParams {
    /// Input dimensionality.
    pub input_dim: u32,
    /// `(dim, cardinality)` pairs: input dimension `dim` expands into
    /// `cardinality` indicator slots. Values are clamped to the cardinality
    /// (unknown categories map to the last slot).
    pub encoded: Vec<(u32, u32)>,
}

impl OneHotParams {
    /// Creates a one-hot encoder.
    pub fn new(input_dim: u32, mut encoded: Vec<(u32, u32)>) -> Self {
        encoded.sort_unstable();
        encoded.dedup_by_key(|(d, _)| *d);
        OneHotParams { input_dim, encoded }
    }

    /// Output dimensionality: pass-through dims + indicator blocks.
    pub fn output_dim(&self) -> usize {
        let pass = self.input_dim as usize - self.encoded.len();
        pass + self.encoded.iter().map(|&(_, c)| c as usize).sum::<usize>()
    }

    /// Operator annotations: memory-bound featurizer, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    /// Encodes one dense row into its one-hot expansion. `y` must be
    /// zeroed and sized [`Self::output_dim`]. Shared by the per-record and
    /// batch kernels, so their bitwise agreement rests on one
    /// implementation.
    fn encode_row(&self, x: &[f32], y: &mut [f32]) {
        let mut w = 0usize;
        let mut enc_iter = self.encoded.iter().peekable();
        for (d, &v) in x.iter().enumerate() {
            if let Some(&&(ed, card)) = enc_iter.peek() {
                if ed as usize == d {
                    enc_iter.next();
                    let slot = (v.max(0.0) as usize).min(card as usize - 1);
                    y[w + slot] = 1.0;
                    w += card as usize;
                    continue;
                }
            }
            y[w] = v;
            w += 1;
        }
    }

    /// Encodes `input` (dense) into `out` (dense of [`Self::output_dim`]).
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        match (input, out) {
            (Vector::Dense(x), Vector::Dense(y))
                if x.len() == self.input_dim as usize && y.len() == self.output_dim() =>
            {
                y.fill(0.0);
                self.encode_row(x, y);
                Ok(())
            }
            (input, _) => Err(DataError::Runtime(format!(
                "onehot wants dense[{}] -> dense[{}], got {:?}",
                self.input_dim,
                self.output_dim(),
                input.column_type()
            ))),
        }
    }

    /// Batch kernel: expands every row of the chunk through the same
    /// [`Self::encode_row`] as the per-record kernel.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let in_dim = self.input_dim as usize;
        let out_dim = self.output_dim();
        let (x, got_dim, rows) = input.as_dense().ok_or_else(|| self.batch_err(input))?;
        if got_dim != in_dim
            || out.column_type() != (pretzel_data::ColumnType::F32Dense { len: out_dim })
        {
            return Err(self.batch_err(input));
        }
        let y = out.fill_dense(rows)?;
        for (xr, yr) in x.chunks_exact(in_dim).zip(y.chunks_exact_mut(out_dim)) {
            self.encode_row(xr, yr);
        }
        Ok(())
    }

    fn batch_err(&self, input: &ColumnBatch) -> DataError {
        DataError::Runtime(format!(
            "onehot wants dense[{}] -> dense[{}] batch, got {:?}",
            self.input_dim,
            self.output_dim(),
            input.column_type()
        ))
    }
}

impl ParamBlob for OneHotParams {
    const KIND: &'static str = "OneHot";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.input_dim);
        wire::put_u32(&mut cfg, self.encoded.len() as u32);
        for &(d, c) in &self.encoded {
            wire::put_u32(&mut cfg, d);
            wire::put_u32(&mut cfg, c);
        }
        vec![("config".into(), cfg)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cur = Cursor::new(section.entry("config")?);
        let input_dim = cur.u32()?;
        let n = cur.u32()? as usize;
        let mut encoded = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let d = cur.u32()?;
            let c = cur.u32()?;
            if c == 0 || d >= input_dim {
                return Err(DataError::Codec(format!(
                    "bad onehot entry (dim {d}, card {c})"
                )));
            }
            encoded.push((d, c));
        }
        Ok(OneHotParams::new(input_dim, encoded))
    }

    fn heap_bytes(&self) -> usize {
        self.encoded.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    #[test]
    fn encodes_and_passes_through() {
        // dims: 0 pass, 1 encoded (card 3), 2 pass.
        let p = OneHotParams::new(3, vec![(1, 3)]);
        assert_eq!(p.output_dim(), 5);
        let x = Vector::Dense(vec![7.0, 2.0, -4.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 5 });
        p.apply(&x, &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[7.0, 0.0, 0.0, 1.0, -4.0]);
    }

    #[test]
    fn out_of_range_categories_clamp() {
        let p = OneHotParams::new(1, vec![(0, 2)]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 2 });
        p.apply(&Vector::Dense(vec![9.0]), &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[0.0, 1.0]);
        p.apply(&Vector::Dense(vec![-3.0]), &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[1.0, 0.0]);
    }

    #[test]
    fn round_trip_through_section() {
        let p = OneHotParams::new(10, vec![(2, 4), (7, 2)]);
        let section = Section {
            name: "op.OneHot".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        assert_eq!(OneHotParams::from_entries(&section).unwrap(), p);
    }

    #[test]
    fn rejects_corrupt_entries() {
        let p = OneHotParams::new(3, vec![(1, 3)]);
        let mut entries = p.to_entries();
        // Rewrite with dim >= input_dim.
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, 3);
        wire::put_u32(&mut cfg, 1);
        wire::put_u32(&mut cfg, 5);
        wire::put_u32(&mut cfg, 2);
        entries[0].1 = cfg;
        let section = Section {
            name: "op.OneHot".into(),
            checksum: 0,
            entries,
        };
        assert!(OneHotParams::from_entries(&section).is_err());
    }
}
