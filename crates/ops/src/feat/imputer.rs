//! Missing-value imputer.
//!
//! Replaces NaN entries with per-dimension fill values learned at training
//! time (means, medians). Production structured-data pipelines (Attendee
//! Count) start with one of these; it is a 1-to-1 memory-bound featurizer
//! that fuses with its neighbours.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// Imputer parameters: the per-dimension fill values.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputerParams {
    /// Value substituted for NaN at each dimension.
    pub fill: Vec<f32>,
}

impl ImputerParams {
    /// Creates an imputer.
    pub fn new(fill: Vec<f32>) -> Self {
        ImputerParams { fill }
    }

    /// Input/output dimensionality.
    pub fn dim(&self) -> usize {
        self.fill.len()
    }

    /// Operator annotations: memory-bound featurizer, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::featurizer()
    }

    /// Copies `input` to `out`, replacing NaNs with fill values.
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        match (input, out) {
            (Vector::Dense(x), Vector::Dense(y))
                if x.len() == self.dim() && y.len() == self.dim() =>
            {
                for i in 0..x.len() {
                    y[i] = if x[i].is_nan() { self.fill[i] } else { x[i] };
                }
                Ok(())
            }
            (input, _) => Err(DataError::Runtime(format!(
                "imputer wants dense[{}], got {:?}",
                self.dim(),
                input.column_type()
            ))),
        }
    }

    /// Batch kernel: NaN replacement over the chunk's row-major matrix.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let dim = self.dim();
        let (x, in_dim, rows) = input.as_dense().ok_or_else(|| self.batch_err(input))?;
        if in_dim != dim || out.column_type() != (pretzel_data::ColumnType::F32Dense { len: dim }) {
            return Err(self.batch_err(input));
        }
        let y = out.fill_dense(rows)?;
        for (xr, yr) in x.chunks_exact(dim).zip(y.chunks_exact_mut(dim)) {
            for i in 0..dim {
                yr[i] = if xr[i].is_nan() { self.fill[i] } else { xr[i] };
            }
        }
        Ok(())
    }

    fn batch_err(&self, input: &ColumnBatch) -> DataError {
        DataError::Runtime(format!(
            "imputer wants dense[{}] batch, got {:?}",
            self.dim(),
            input.column_type()
        ))
    }
}

impl ParamBlob for ImputerParams {
    const KIND: &'static str = "Imputer";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut f = Vec::new();
        wire::put_f32s(&mut f, &self.fill);
        vec![("fill".into(), f)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        Ok(ImputerParams::new(
            Cursor::new(section.entry("fill")?).f32s()?,
        ))
    }

    fn heap_bytes(&self) -> usize {
        self.fill.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    #[test]
    fn replaces_only_nans() {
        let p = ImputerParams::new(vec![9.0, 8.0, 7.0]);
        let x = Vector::Dense(vec![1.0, f32::NAN, 3.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 3 });
        p.apply(&x, &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[1.0, 8.0, 3.0]);
    }

    #[test]
    fn preserves_infinities() {
        let p = ImputerParams::new(vec![0.0]);
        let x = Vector::Dense(vec![f32::INFINITY]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 1 });
        p.apply(&x, &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[f32::INFINITY]);
    }

    #[test]
    fn dim_mismatch_is_error() {
        let p = ImputerParams::new(vec![0.0; 2]);
        let x = Vector::Dense(vec![1.0; 3]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 2 });
        assert!(p.apply(&x, &mut y).is_err());
    }

    #[test]
    fn round_trip_through_section() {
        let p = ImputerParams::new(vec![1.0, -2.5]);
        let section = Section {
            name: "op.Imputer".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        assert_eq!(ImputerParams::from_entries(&section).unwrap(), p);
    }
}
