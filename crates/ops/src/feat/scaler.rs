//! Affine per-dimension scaler (standardization).
//!
//! `y[i] = (x[i] - offset[i]) * scale[i]` — the mean/variance normalizer of
//! the Attendee Count pipelines' structured features. A 1-to-1, fusible,
//! compute-bound operator; its dense kernel is the textbook candidate for
//! SIMD vectorization (paper §4.1.2, OutputGraphValidatorStep labelling).

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// Scaler parameters: per-dimension offset and scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalerParams {
    /// Subtracted before scaling (e.g. the training mean).
    pub offset: Vec<f32>,
    /// Multiplied after offsetting (e.g. 1/σ).
    pub scale: Vec<f32>,
}

impl ScalerParams {
    /// Creates a scaler.
    ///
    /// # Panics
    ///
    /// Panics if `offset` and `scale` have different lengths — a
    /// construction-time bug, not a data condition.
    pub fn new(offset: Vec<f32>, scale: Vec<f32>) -> Self {
        assert_eq!(offset.len(), scale.len(), "offset/scale length mismatch");
        ScalerParams { offset, scale }
    }

    /// Input/output dimensionality.
    pub fn dim(&self) -> usize {
        self.offset.len()
    }

    /// Operator annotations: compute-bound, vectorizable, fusible.
    pub fn annotations(&self) -> Annotations {
        Annotations::compute()
    }

    /// Applies the affine map to one dense row. Shared by the per-record,
    /// batch, and borrowed-row kernels, so their bitwise agreement rests on
    /// one implementation; the single pass over three slices runs the
    /// explicit 8-wide affine kernel (AVX2 or its identical scalar twin —
    /// the map is elementwise, so the paths are trivially bitwise-equal).
    #[inline]
    pub(crate) fn scale_row(&self, x: &[f32], y: &mut [f32]) {
        pretzel_data::simd::scale_into(x, &self.offset, &self.scale, y);
    }

    /// Applies the affine map from `input` into `out` (dense → dense).
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        match (input, out) {
            (Vector::Dense(x), Vector::Dense(y))
                if x.len() == self.dim() && y.len() == self.dim() =>
            {
                self.scale_row(x, y);
                Ok(())
            }
            (input, _) => Err(DataError::Runtime(format!(
                "scaler wants dense[{}], got {:?}",
                self.dim(),
                input.column_type()
            ))),
        }
    }

    /// Batch kernel: one flat pass over the chunk's row-major matrix — the
    /// textbook columnar win (per-row loops identical to [`Self::apply`],
    /// so scores stay bitwise-equal).
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let dim = self.dim();
        let (x, in_dim, rows) = input.as_dense().ok_or_else(|| self.batch_err(input))?;
        if in_dim != dim || out.column_type() != (pretzel_data::ColumnType::F32Dense { len: dim }) {
            return Err(self.batch_err(input));
        }
        let y = out.fill_dense(rows)?;
        for (xr, yr) in x.chunks_exact(dim).zip(y.chunks_exact_mut(dim)) {
            self.scale_row(xr, yr);
        }
        Ok(())
    }

    fn batch_err(&self, input: &ColumnBatch) -> DataError {
        DataError::Runtime(format!(
            "scaler wants dense[{}] batch, got {:?}",
            self.dim(),
            input.column_type()
        ))
    }
}

impl ParamBlob for ScalerParams {
    const KIND: &'static str = "Scaler";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut off = Vec::new();
        wire::put_f32s(&mut off, &self.offset);
        let mut sc = Vec::new();
        wire::put_f32s(&mut sc, &self.scale);
        vec![("offset".into(), off), ("scale".into(), sc)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let offset = Cursor::new(section.entry("offset")?).f32s()?;
        let scale = Cursor::new(section.entry("scale")?).f32s()?;
        if offset.len() != scale.len() {
            return Err(DataError::Codec(
                "scaler offset/scale length mismatch".into(),
            ));
        }
        Ok(ScalerParams { offset, scale })
    }

    fn heap_bytes(&self) -> usize {
        (self.offset.capacity() + self.scale.capacity()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    #[test]
    fn affine_map() {
        let p = ScalerParams::new(vec![1.0, 2.0], vec![2.0, 0.5]);
        let x = Vector::Dense(vec![3.0, 4.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 2 });
        p.apply(&x, &mut y).unwrap();
        assert_eq!(y.as_dense().unwrap(), &[4.0, 1.0]);
    }

    #[test]
    fn dim_mismatch_is_error() {
        let p = ScalerParams::new(vec![0.0; 3], vec![1.0; 3]);
        let x = Vector::Dense(vec![1.0, 2.0]);
        let mut y = Vector::with_type(ColumnType::F32Dense { len: 3 });
        assert!(p.apply(&x, &mut y).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn construction_checks_lengths() {
        let _ = ScalerParams::new(vec![0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn round_trip_through_section() {
        let p = ScalerParams::new(vec![1.5, -2.0], vec![0.1, 10.0]);
        let section = Section {
            name: "op.Scaler".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        let q = ScalerParams::from_entries(&section).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.checksum(), q.checksum());
    }

    #[test]
    fn corrupt_section_rejected() {
        let p = ScalerParams::new(vec![1.0], vec![2.0]);
        let mut entries = p.to_entries();
        // Make lengths disagree.
        let mut sc = Vec::new();
        wire::put_f32s(&mut sc, &[1.0, 2.0]);
        entries[1].1 = sc;
        let section = Section {
            name: "op.Scaler".into(),
            checksum: 0,
            entries,
        };
        assert!(ScalerParams::from_entries(&section).is_err());
    }
}
