//! Concat: merges several feature vectors into one.
//!
//! "Concat generates a unique feature vector which is then scored by a
//! Logistic Regression predictor" (paper Figure 1). Concat is the
//! archetypal *pipeline breaker*: "operations following a Concat require the
//! full feature vector to be available" (paper §4.1.2). It is also the
//! operator PRETZEL's optimizer loves to delete — when a linear model is
//! pushed through it, "the latter stage can be removed if not containing
//! any other additional transformation".

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::batch::{ColRef, SparseRowMut};
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// Concat parameters: the dimensionalities of the inputs, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcatParams {
    /// Input dimensionalities; output dim is their sum.
    pub input_dims: Vec<u32>,
}

impl ConcatParams {
    /// Creates a Concat over inputs of the given dimensionalities.
    pub fn new(input_dims: Vec<u32>) -> Self {
        ConcatParams { input_dims }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.input_dims.iter().map(|&d| d as usize).sum()
    }

    /// Offset of input `i` within the output index space.
    pub fn offset(&self, i: usize) -> usize {
        self.input_dims[..i].iter().map(|&d| d as usize).sum()
    }

    /// Operator annotations: many-to-one merge, pipeline breaker.
    pub fn annotations(&self) -> Annotations {
        Annotations::merge()
    }

    /// Concatenates `inputs` into a sparse output of dimension
    /// [`Self::dim`]. Dense, sparse and scalar inputs are accepted.
    pub fn apply(&self, inputs: &[&Vector], out: &mut Vector) -> Result<()> {
        if inputs.len() != self.input_dims.len() {
            return Err(DataError::Runtime(format!(
                "concat expects {} inputs, got {}",
                self.input_dims.len(),
                inputs.len()
            )));
        }
        match out {
            Vector::Sparse { dim, .. } if *dim as usize == self.dim() => {}
            other => {
                return Err(DataError::Runtime(format!(
                    "concat output buffer mismatch: want sparse[{}], got {:?}",
                    self.dim(),
                    other.column_type()
                )))
            }
        }
        out.reset();
        let mut offset = 0u32;
        for (i, input) in inputs.iter().enumerate() {
            let want = self.input_dims[i];
            match input {
                Vector::Dense(v) => {
                    if v.len() != want as usize {
                        return Err(self.dim_err(i, want, v.len()));
                    }
                    for (j, &x) in v.iter().enumerate() {
                        if x != 0.0 {
                            out.sparse_accumulate(offset + j as u32, x);
                        }
                    }
                }
                Vector::Sparse {
                    indices,
                    values,
                    dim,
                } => {
                    if *dim != want {
                        return Err(self.dim_err(i, want, *dim as usize));
                    }
                    for (&idx, &x) in indices.iter().zip(values) {
                        out.sparse_accumulate(offset + idx, x);
                    }
                }
                Vector::Scalar(x) => {
                    if want != 1 {
                        return Err(self.dim_err(i, want, 1));
                    }
                    if *x != 0.0 {
                        out.sparse_accumulate(offset, *x);
                    }
                }
                other => {
                    return Err(DataError::Runtime(format!(
                        "concat input {i} is not numeric: {:?}",
                        other.column_type()
                    )))
                }
            }
            offset += want;
        }
        Ok(())
    }

    /// Batch kernel: concatenates every row of the input batches into rows
    /// of one CSR output (accumulation order identical to [`Self::apply`]).
    pub fn eval_batch(&self, inputs: &[&ColumnBatch], out: &mut ColumnBatch) -> Result<()> {
        if inputs.len() != self.input_dims.len() {
            return Err(DataError::Runtime(format!(
                "concat expects {} inputs, got {}",
                self.input_dims.len(),
                inputs.len()
            )));
        }
        match out {
            ColumnBatch::Sparse { dim, .. } if *dim as usize == self.dim() => {}
            other => {
                return Err(DataError::Runtime(format!(
                    "concat output batch mismatch: want sparse[{}], got {:?}",
                    self.dim(),
                    other.column_type()
                )))
            }
        }
        out.reset();
        let rows = inputs.first().map_or(0, |b| b.rows());
        for r in 0..rows {
            let mut row = out.begin_sparse_row()?;
            let mut offset = 0u32;
            for (i, input) in inputs.iter().enumerate() {
                let want = self.input_dims[i];
                self.accumulate_row(&mut row, i, want, offset, input.row(r))?;
                offset += want;
            }
            row.finish();
        }
        Ok(())
    }

    fn accumulate_row(
        &self,
        row: &mut SparseRowMut<'_>,
        i: usize,
        want: u32,
        offset: u32,
        input: ColRef<'_>,
    ) -> Result<()> {
        match input {
            ColRef::Dense(v) => {
                if v.len() != want as usize {
                    return Err(self.dim_err(i, want, v.len()));
                }
                for (j, &x) in v.iter().enumerate() {
                    if x != 0.0 {
                        row.accumulate(offset + j as u32, x);
                    }
                }
            }
            ColRef::Sparse {
                indices,
                values,
                dim,
            } => {
                if dim != want {
                    return Err(self.dim_err(i, want, dim as usize));
                }
                for (&idx, &x) in indices.iter().zip(values) {
                    row.accumulate(offset + idx, x);
                }
            }
            ColRef::Scalar(x) => {
                if want != 1 {
                    return Err(self.dim_err(i, want, 1));
                }
                if x != 0.0 {
                    row.accumulate(offset, x);
                }
            }
            other => {
                return Err(DataError::Runtime(format!(
                    "concat input {i} is not numeric: {:?}",
                    other.column_type()
                )))
            }
        }
        Ok(())
    }

    fn dim_err(&self, i: usize, want: u32, got: usize) -> DataError {
        DataError::Runtime(format!("concat input {i} has dim {got}, expected {want}"))
    }
}

impl ParamBlob for ConcatParams {
    const KIND: &'static str = "Concat";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32s(&mut cfg, &self.input_dims);
        vec![("dims".into(), cfg)]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cur = Cursor::new(section.entry("dims")?);
        Ok(ConcatParams::new(cur.u32s()?))
    }

    fn heap_bytes(&self) -> usize {
        self.input_dims.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    fn sparse(dim: usize, pairs: &[(u32, f32)]) -> Vector {
        let mut v = Vector::with_type(ColumnType::F32Sparse { len: dim });
        for &(i, x) in pairs {
            v.sparse_accumulate(i, x);
        }
        v
    }

    #[test]
    fn concat_mixed_inputs() {
        let p = ConcatParams::new(vec![3, 2, 1]);
        assert_eq!(p.dim(), 6);
        assert_eq!(p.offset(0), 0);
        assert_eq!(p.offset(2), 5);
        let dense = Vector::Dense(vec![1.0, 0.0, 2.0]);
        let sp = sparse(2, &[(1, 5.0)]);
        let sc = Vector::Scalar(7.0);
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 6 });
        p.apply(&[&dense, &sp, &sc], &mut out).unwrap();
        assert_eq!(out.to_dense(6).unwrap(), vec![1.0, 0.0, 2.0, 0.0, 5.0, 7.0]);
    }

    #[test]
    fn arity_mismatch_is_error() {
        let p = ConcatParams::new(vec![2, 2]);
        let a = Vector::Dense(vec![1.0, 2.0]);
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 4 });
        assert!(p.apply(&[&a], &mut out).is_err());
    }

    #[test]
    fn input_dim_mismatch_is_error() {
        let p = ConcatParams::new(vec![2]);
        let a = Vector::Dense(vec![1.0, 2.0, 3.0]);
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 2 });
        assert!(p.apply(&[&a], &mut out).is_err());
    }

    #[test]
    fn text_input_rejected() {
        let p = ConcatParams::new(vec![1]);
        let t = Vector::Text("x".into());
        let mut out = Vector::with_type(ColumnType::F32Sparse { len: 1 });
        assert!(p.apply(&[&t], &mut out).is_err());
    }

    #[test]
    fn round_trip_through_section() {
        let p = ConcatParams::new(vec![10, 20, 30]);
        let section = Section {
            name: "op.Concat".into(),
            checksum: 0,
            entries: p.to_entries(),
        };
        assert_eq!(ConcatParams::from_entries(&section).unwrap(), p);
    }
}
