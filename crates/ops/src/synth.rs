//! Deterministic parameter synthesis ("training" substitute).
//!
//! The paper's pipelines are trained on production data we do not have
//! (Amazon reviews for SA, an internal event record for AC). The systems
//! experiments do not depend on model *accuracy* — only on parameter shapes,
//! sizes and sharing structure — so we synthesize parameters from seeds:
//! every function here is a pure function of its seed, which makes
//! workloads reproducible bit-for-bit across runs and machines, and lets
//! the workload generator give *identical* seeds to operators that the
//! paper observes being shared across pipelines (Figure 3).

use crate::bayes::NaiveBayesParams;
use crate::feat::binner::BinnerParams;
use crate::feat::imputer::ImputerParams;
use crate::feat::scaler::ScalerParams;
use crate::kmeans::KMeansParams;
use crate::linear::{LinearKind, LinearParams};
use crate::pca::PcaParams;
use crate::text::ngram::NgramParams;
use crate::tree::{EnsembleMode, EnsembleParams, MulticlassTreeParams, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generates a pseudo-word of 3–9 lowercase letters.
pub fn word(rng: &mut StdRng) -> String {
    const CONS: &[u8] = b"bcdfghjklmnprstvwz";
    const VOWS: &[u8] = b"aeiou";
    let syllables = rng.gen_range(1..=3);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push(CONS[rng.gen_range(0..CONS.len())] as char);
        w.push(VOWS[rng.gen_range(0..VOWS.len())] as char);
        if rng.gen_bool(0.3) {
            w.push(CONS[rng.gen_range(0..CONS.len())] as char);
        }
    }
    w
}

/// A synthetic vocabulary of `size` distinct pseudo-words.
pub fn vocabulary(seed: u64, size: usize) -> Vec<String> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(size);
    let mut seen = std::collections::HashSet::with_capacity(size);
    while out.len() < size {
        let mut w = word(&mut r);
        // Suffix a digit on collision so the vocabulary always reaches the
        // requested size.
        while !seen.insert(w.clone()) {
            w.push(char::from(b'0' + (out.len() % 10) as u8));
        }
        out.push(w);
    }
    out
}

/// Character n-gram dictionary: `entries` random `n`-letter strings.
pub fn char_ngram(seed: u64, n: u32, entries: usize) -> NgramParams {
    let mut r = rng(seed);
    let mut keys = Vec::with_capacity(entries);
    let mut seen = std::collections::HashSet::with_capacity(entries);
    while keys.len() < entries {
        let k: String = (0..n)
            .map(|_| (b'a' + r.gen_range(0..26u8)) as char)
            .collect();
        if seen.insert(k.clone()) {
            keys.push(k.into_boxed_str());
        }
        if seen.len() >= 26usize.saturating_pow(n) {
            break; // alphabet exhausted for tiny n
        }
    }
    NgramParams::new(n, false, true, keys)
}

/// Word n-gram dictionary over a shared vocabulary: `entries` n-grams of
/// length `1..=n` drawn from `vocab`.
pub fn word_ngram(seed: u64, n: u32, entries: usize, vocab: &[String]) -> NgramParams {
    let mut r = rng(seed);
    let mut keys = Vec::with_capacity(entries);
    let mut seen = std::collections::HashSet::with_capacity(entries);
    while keys.len() < entries && seen.len() < entries * 8 {
        let k = r.gen_range(1..=n) as usize;
        let gram: Vec<&str> = (0..k)
            .map(|_| vocab[r.gen_range(0..vocab.len())].as_str())
            .collect();
        let key = gram.join(" ");
        if seen.insert(key.clone()) {
            keys.push(key.into_boxed_str());
        }
    }
    NgramParams::new(n, true, true, keys)
}

/// Linear model with weights in `[-1, 1] / sqrt(dim)`.
pub fn linear(seed: u64, dim: usize, kind: LinearKind) -> LinearParams {
    let mut r = rng(seed);
    let scale = 1.0 / (dim.max(1) as f32).sqrt();
    let weights = (0..dim).map(|_| r.gen_range(-1.0..1.0) * scale).collect();
    LinearParams::new(kind, weights, r.gen_range(-0.5..0.5))
}

/// Complete binary decision tree of the given depth.
///
/// Nodes are numbered in BFS order so every child index exceeds its
/// parent's — the forward-ordering invariant [`Tree::validate`] requires.
pub fn tree(seed: u64, input_dim: usize, depth: u32) -> Tree {
    let mut r = rng(seed);
    let internal = (1usize << depth) - 1;
    let leaves = 1usize << depth;
    let mut t = Tree {
        features: Vec::with_capacity(internal),
        thresholds: Vec::with_capacity(internal),
        left: Vec::with_capacity(internal),
        right: Vec::with_capacity(internal),
        leaf_values: Vec::with_capacity(leaves),
    };
    if depth == 0 {
        return Tree::leaf(r.gen_range(-1.0..1.0));
    }
    for i in 0..internal {
        t.features.push(r.gen_range(0..input_dim as u32));
        t.thresholds.push(r.gen_range(-1.0..1.0));
        let (l, rr) = (2 * i + 1, 2 * i + 2);
        t.left.push(if l < internal {
            l as i32
        } else {
            !((l - internal) as i32)
        });
        t.right.push(if rr < internal {
            rr as i32
        } else {
            !((rr - internal) as i32)
        });
    }
    for _ in 0..leaves {
        t.leaf_values.push(r.gen_range(-1.0..1.0));
    }
    t
}

/// Tree ensemble of `n_trees` trees of the given depth.
pub fn ensemble(
    seed: u64,
    input_dim: usize,
    n_trees: usize,
    depth: u32,
    mode: EnsembleMode,
) -> EnsembleParams {
    let mut r = rng(seed);
    let trees = (0..n_trees)
        .map(|i| tree(seed.wrapping_add(i as u64 + 1), input_dim, depth))
        .collect();
    let weights = (0..n_trees).map(|_| r.gen_range(0.1..1.0)).collect();
    EnsembleParams::new(trees, weights, mode, input_dim as u32)
        .expect("synthesized ensemble is structurally valid")
}

/// One-vs-all multiclass classifier.
pub fn multiclass(
    seed: u64,
    input_dim: usize,
    classes: usize,
    trees_per_class: usize,
    depth: u32,
) -> MulticlassTreeParams {
    let per_class = (0..classes)
        .map(|c| {
            ensemble(
                seed.wrapping_add(0x1000 * (c as u64 + 1)),
                input_dim,
                trees_per_class,
                depth,
                EnsembleMode::Sum,
            )
        })
        .collect();
    MulticlassTreeParams::new(per_class).expect("synthesized multiclass is valid")
}

/// K-Means model with centroids in `[-1, 1]^dim`.
pub fn kmeans(seed: u64, k: usize, dim: usize) -> KMeansParams {
    let mut r = rng(seed);
    let centroids = (0..k * dim).map(|_| r.gen_range(-1.0..1.0)).collect();
    KMeansParams::new(centroids, k as u32, dim as u32).expect("synthesized kmeans is valid")
}

/// PCA projector with random orthogonal-ish components.
pub fn pca(seed: u64, m: usize, dim: usize) -> PcaParams {
    let mut r = rng(seed);
    let mean = (0..dim).map(|_| r.gen_range(-1.0..1.0)).collect();
    let scale = 1.0 / (dim as f32).sqrt();
    let components = (0..m * dim)
        .map(|_| r.gen_range(-1.0..1.0) * scale)
        .collect();
    PcaParams::new(mean, components, m as u32, dim as u32).expect("synthesized pca is valid")
}

/// Standardizing scaler.
pub fn scaler(seed: u64, dim: usize) -> ScalerParams {
    let mut r = rng(seed);
    let offset = (0..dim).map(|_| r.gen_range(-2.0..2.0)).collect();
    let scale = (0..dim).map(|_| r.gen_range(0.2..2.0)).collect();
    ScalerParams::new(offset, scale)
}

/// Mean imputer.
pub fn imputer(seed: u64, dim: usize) -> ImputerParams {
    let mut r = rng(seed);
    ImputerParams::new((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect())
}

/// Quantile binner with `bins` bins per dimension.
pub fn binner(seed: u64, dim: usize, bins: usize) -> BinnerParams {
    let mut r = rng(seed);
    let bounds = (0..dim)
        .map(|_| {
            let mut b: Vec<f32> = (0..bins - 1).map(|_| r.gen_range(-2.0..2.0)).collect();
            b.sort_by(f32::total_cmp);
            b
        })
        .collect();
    BinnerParams::new(bounds)
}

/// Multinomial naive Bayes over `dim` features.
pub fn naive_bayes(seed: u64, classes: usize, dim: usize) -> NaiveBayesParams {
    let mut r = rng(seed);
    let log_prior = (0..classes).map(|_| r.gen_range(-3.0..0.0f32)).collect();
    let log_lik = (0..classes * dim)
        .map(|_| r.gen_range(-8.0..0.0f32))
        .collect();
    NaiveBayesParams::new(log_prior, log_lik, dim as u32).expect("synthesized NB is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamBlob;

    #[test]
    fn synthesis_is_deterministic() {
        assert_eq!(
            linear(7, 32, LinearKind::Logistic),
            linear(7, 32, LinearKind::Logistic)
        );
        assert_eq!(char_ngram(3, 3, 100), char_ngram(3, 3, 100));
        let v = vocabulary(1, 50);
        assert_eq!(word_ngram(9, 2, 40, &v), word_ngram(9, 2, 40, &v));
        assert_eq!(kmeans(5, 4, 8), kmeans(5, 4, 8));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            linear(1, 32, LinearKind::Logistic).checksum(),
            linear(2, 32, LinearKind::Logistic).checksum()
        );
    }

    #[test]
    fn vocabulary_is_distinct_and_sized() {
        let v = vocabulary(42, 500);
        assert_eq!(v.len(), 500);
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn char_dict_reaches_requested_size() {
        let p = char_ngram(11, 3, 1000);
        assert_eq!(p.dim(), 1000);
    }

    #[test]
    fn tiny_alphabet_saturates_gracefully() {
        // 26 possible 1-grams; asking for more must not loop forever.
        let p = char_ngram(11, 1, 100);
        assert!(p.dim() <= 26);
    }

    #[test]
    fn synthesized_trees_validate() {
        for depth in 0..6 {
            let t = tree(depth as u64, 16, depth);
            t.validate(16).unwrap();
            assert_eq!(t.leaves(), 1usize << depth);
        }
    }

    #[test]
    fn ensemble_and_multiclass_are_usable() {
        use pretzel_data::{ColumnType, Vector};
        let e = ensemble(3, 8, 5, 3, EnsembleMode::Average);
        let mut out = Vector::Scalar(0.0);
        e.apply(&Vector::Dense(vec![0.1; 8]), &mut out).unwrap();
        let mc = multiclass(4, 8, 3, 2, 2);
        let mut scores = Vector::with_type(ColumnType::F32Dense { len: 3 });
        mc.apply(&Vector::Dense(vec![0.1; 8]), &mut scores).unwrap();
        assert_eq!(scores.as_dense().unwrap().len(), 3);
    }

    #[test]
    fn binner_bounds_are_sorted() {
        let b = binner(6, 4, 8);
        for bs in &b.bounds {
            assert!(bs.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
