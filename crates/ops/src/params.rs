//! Shared machinery for operator parameters.
//!
//! Parameters are the shareable half of an operator: immutable, checksummed
//! and serializable into one model-file section (paper §2: "each directory
//! stores operator parameters"). The checksum of the serialized form is the
//! Object Store's dedup key (paper §4.1.3).

use pretzel_data::serde_bin::{section_checksum, Section};
use pretzel_data::Result;

/// A parameter object that can round-trip through a model-file section.
pub trait ParamBlob: Sized {
    /// Operator-kind tag stored in the section name (e.g. `"WordNgram"`).
    const KIND: &'static str;

    /// Serializes the logical fields (derived lookup structures excluded).
    fn to_entries(&self) -> Vec<(String, Vec<u8>)>;

    /// Reconstructs the parameters (rebuilding derived lookup structures).
    fn from_entries(section: &Section) -> Result<Self>;

    /// Heap bytes held by this parameter object, including derived
    /// structures; used by the memory experiments.
    fn heap_bytes(&self) -> usize;

    /// Dedup checksum over the serialized form.
    fn checksum(&self) -> u64 {
        section_checksum(&self.to_entries())
    }
}

/// Estimated heap bytes of a `HashMap<u64, u32>` with `len` entries.
///
/// `std::collections::HashMap` does not expose its allocation size; this
/// approximates it as capacity × (key + value + control byte), which is the
/// hashbrown layout to within a constant.
pub fn hashmap_bytes(len: usize, capacity: usize) -> usize {
    let slots = capacity.max(len);
    slots * (8 + 4 + 1)
}
