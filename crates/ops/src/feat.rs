//! Vector-space featurizers: concatenation, normalization, scaling,
//! imputation, binning and one-hot encoding.

pub mod binner;
pub mod concat;
pub mod imputer;
pub mod normalizer;
pub mod onehot;
pub mod scaler;
