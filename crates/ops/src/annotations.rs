//! Static operator properties consumed by the Oven optimizer.
//!
//! The paper: "Transformation classes are annotated (e.g., 1-to-1, 1-to-n,
//! memory-bound, compute-bound, commutative and associative) to ease the
//! optimization process: no dynamic compilation is necessary since the set
//! of operators is fixed and manual annotation is sufficient to generate
//! properly optimized plans" (§4.1.2). These annotations drive:
//!
//! * **stage formation**: memory-bound 1-to-1 chains fuse into a single pass
//!   (Tupleware's hybrid approach); compute-bound operators run
//!   one-at-a-time so SIMD can be exploited;
//! * **pipeline breaking**: operators that need the materialized full input
//!   (Concat, aggregates like L2 normalization) end a stage;
//! * **model pushdown**: commutative+associative reducers (linear model dot
//!   products) can be pushed *through* Concat and evaluated per-branch.

/// Input/output cardinality of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// One input column, one output column.
    OneToOne,
    /// Several input columns merged into one output (e.g., Concat).
    ManyToOne,
}

/// Dominant resource of an operator's kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Dominated by memory traffic (most featurizers): fuse for locality.
    Memory,
    /// Dominated by arithmetic (matrix/vector math): isolate for SIMD.
    Compute,
}

/// The full annotation record for an operator class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotations {
    /// Input/output cardinality.
    pub arity: Arity,
    /// Dominant resource.
    pub bound: Bound,
    /// True if the operator must see its input fully materialized
    /// (pipeline breaker: ends the current stage).
    pub breaker: bool,
    /// True if the operator is a commutative+associative reduction over its
    /// input elements, and can therefore be pushed through Concat
    /// (the linear-model pushdown of §4.1.2).
    pub assoc_reducer: bool,
    /// True if the dense kernel is profitably SIMD-vectorizable.
    pub vectorizable: bool,
}

impl Annotations {
    /// Annotation for fusible, memory-bound 1-to-1 featurizers.
    pub const fn featurizer() -> Self {
        Annotations {
            arity: Arity::OneToOne,
            bound: Bound::Memory,
            breaker: false,
            assoc_reducer: false,
            vectorizable: false,
        }
    }

    /// Annotation for compute-bound vector/matrix kernels.
    pub const fn compute() -> Self {
        Annotations {
            arity: Arity::OneToOne,
            bound: Bound::Compute,
            breaker: false,
            assoc_reducer: false,
            vectorizable: true,
        }
    }

    /// Annotation for pipeline-breaking aggregates (Normalizer et al.).
    pub const fn aggregate() -> Self {
        Annotations {
            arity: Arity::OneToOne,
            bound: Bound::Compute,
            breaker: true,
            assoc_reducer: false,
            vectorizable: true,
        }
    }

    /// Annotation for Concat-like merges.
    pub const fn merge() -> Self {
        Annotations {
            arity: Arity::ManyToOne,
            bound: Bound::Memory,
            breaker: true,
            assoc_reducer: false,
            vectorizable: false,
        }
    }

    /// Annotation for linear reducers (dot products) that push through
    /// Concat.
    pub const fn linear_reducer() -> Self {
        Annotations {
            arity: Arity::OneToOne,
            bound: Bound::Compute,
            breaker: false,
            assoc_reducer: true,
            vectorizable: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_encode_paper_properties() {
        let f = Annotations::featurizer();
        assert_eq!(f.arity, Arity::OneToOne);
        assert_eq!(f.bound, Bound::Memory);
        assert!(!f.breaker);

        let m = Annotations::merge();
        assert_eq!(m.arity, Arity::ManyToOne);
        assert!(m.breaker, "Concat requires the materialized feature vector");

        let l = Annotations::linear_reducer();
        assert!(l.assoc_reducer, "dot products push through Concat");
        assert!(l.vectorizable);

        let a = Annotations::aggregate();
        assert!(a.breaker, "L2 normalization needs the complete vector");
        assert!(!a.assoc_reducer);
    }
}
