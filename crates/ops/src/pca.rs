//! PCA projector.
//!
//! The "dimensionality reduction step" of the AC pipelines (paper §5):
//! projects a centered input onto `m` learned principal components.
//! Compute-bound matrix-vector product; auto-vectorizes.

use crate::annotations::Annotations;
use crate::params::ParamBlob;
use pretzel_data::serde_bin::{wire, Cursor, Section};
use pretzel_data::{ColumnBatch, DataError, Result, Vector};

/// PCA parameters: mean vector plus row-major component matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaParams {
    /// Training mean subtracted before projection (length `dim`).
    pub mean: Vec<f32>,
    /// Components, `m * dim` row-major.
    pub components: Vec<f32>,
    /// Number of output components.
    pub m: u32,
    /// Input dimensionality.
    pub dim: u32,
}

impl PcaParams {
    /// Creates a projector; validates matrix shapes.
    pub fn new(mean: Vec<f32>, components: Vec<f32>, m: u32, dim: u32) -> Result<Self> {
        if mean.len() != dim as usize || components.len() != (m as usize) * (dim as usize) || m == 0
        {
            return Err(DataError::Codec(format!(
                "pca shapes: mean {}, comps {}, m {m}, dim {dim}",
                mean.len(),
                components.len()
            )));
        }
        Ok(PcaParams {
            mean,
            components,
            m,
            dim,
        })
    }

    /// Operator annotations: compute-bound, vectorizable.
    pub fn annotations(&self) -> Annotations {
        Annotations::compute()
    }

    /// Projects one dense row onto the components. Shared by the
    /// per-record, batch, and borrowed-row kernels, so their bitwise
    /// agreement rests on one implementation; each centered dot runs the
    /// explicit 8-lane kernel (AVX2 or its lane-identical scalar twin).
    #[inline]
    pub(crate) fn project_row(&self, x: &[f32], y: &mut [f32]) {
        let d = self.dim as usize;
        for (c, slot) in y.iter_mut().enumerate() {
            let row = &self.components[c * d..(c + 1) * d];
            *slot = pretzel_data::simd::centered_dot(x, &self.mean, row);
        }
    }

    /// Projects `input` (dense `dim`) into `out` (dense `m`).
    pub fn apply(&self, input: &Vector, out: &mut Vector) -> Result<()> {
        let x = match input {
            Vector::Dense(x) if x.len() == self.dim as usize => x,
            other => {
                return Err(DataError::Runtime(format!(
                    "pca wants dense[{}], got {:?}",
                    self.dim,
                    other.column_type()
                )))
            }
        };
        match out {
            Vector::Dense(y) if y.len() == self.m as usize => {
                self.project_row(x, y);
                Ok(())
            }
            other => Err(DataError::Runtime(format!(
                "pca output wants dense[{}], got {:?}",
                self.m,
                other.column_type()
            ))),
        }
    }

    /// Batch kernel: projects every row of the chunk through the same
    /// [`Self::project_row`] as the per-record kernel; the component
    /// matrix stays cache-hot across rows.
    pub fn eval_batch(&self, input: &ColumnBatch, out: &mut ColumnBatch) -> Result<()> {
        let d = self.dim as usize;
        let m = self.m as usize;
        let (x, in_dim, rows) = input.as_dense().ok_or_else(|| {
            DataError::Runtime(format!(
                "pca wants dense[{}] batch, got {:?}",
                self.dim,
                input.column_type()
            ))
        })?;
        if in_dim != d || out.column_type() != (pretzel_data::ColumnType::F32Dense { len: m }) {
            return Err(DataError::Runtime(format!(
                "pca wants dense[{d}] -> dense[{m}] batch, got {:?} -> {:?}",
                input.column_type(),
                out.column_type()
            )));
        }
        let y = out.fill_dense(rows)?;
        for (xr, yr) in x.chunks_exact(d).zip(y.chunks_exact_mut(m)) {
            self.project_row(xr, yr);
        }
        Ok(())
    }
}

impl ParamBlob for PcaParams {
    const KIND: &'static str = "Pca";

    fn to_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut cfg = Vec::new();
        wire::put_u32(&mut cfg, self.m);
        wire::put_u32(&mut cfg, self.dim);
        let mut mean = Vec::new();
        wire::put_f32s(&mut mean, &self.mean);
        let mut comps = Vec::new();
        wire::put_f32s(&mut comps, &self.components);
        vec![
            ("config".into(), cfg),
            ("mean".into(), mean),
            ("components".into(), comps),
        ]
    }

    fn from_entries(section: &Section) -> Result<Self> {
        let mut cfg = Cursor::new(section.entry("config")?);
        let m = cfg.u32()?;
        let dim = cfg.u32()?;
        let mean = Cursor::new(section.entry("mean")?).f32s()?;
        let components = Cursor::new(section.entry("components")?).f32s()?;
        PcaParams::new(mean, components, m, dim)
    }

    fn heap_bytes(&self) -> usize {
        (self.mean.capacity() + self.components.capacity()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_data::ColumnType;

    fn model() -> PcaParams {
        // Project 3D onto 2 axes after centering at (1,1,1).
        PcaParams::new(
            vec![1.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            2,
            3,
        )
        .unwrap()
    }

    #[test]
    fn centered_projection() {
        let m = model();
        let mut out = Vector::with_type(ColumnType::F32Dense { len: 2 });
        m.apply(&Vector::Dense(vec![2.0, 5.0, 0.0]), &mut out)
            .unwrap();
        assert_eq!(out.as_dense().unwrap(), &[1.0, -1.0]);
    }

    #[test]
    fn shape_validation() {
        assert!(PcaParams::new(vec![0.0; 2], vec![0.0; 6], 2, 3).is_err());
        assert!(PcaParams::new(vec![0.0; 3], vec![0.0; 5], 2, 3).is_err());
        assert!(PcaParams::new(vec![0.0; 3], vec![], 0, 3).is_err());
    }

    #[test]
    fn io_mismatch_is_error() {
        let m = model();
        let mut out = Vector::with_type(ColumnType::F32Dense { len: 3 });
        assert!(m
            .apply(&Vector::Dense(vec![0.0, 0.0, 0.0]), &mut out)
            .is_err());
    }

    #[test]
    fn round_trip_through_section() {
        let m = model();
        let section = Section {
            name: "op.Pca".into(),
            checksum: 0,
            entries: m.to_entries(),
        };
        let q = PcaParams::from_entries(&section).unwrap();
        assert_eq!(m, q);
        assert_eq!(m.checksum(), q.checksum());
    }
}
