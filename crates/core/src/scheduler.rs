//! Event-based scheduling of physical stages over shared executors.
//!
//! "Each core runs an Executor instance whereby all Executors pull work
//! from a shared pair of queues: one low priority queue for newly submitted
//! plans, and one high priority queue for already started stages. ...
//! Two priority queues allow started pipelines to be scheduled earlier and
//! therefore return memory quickly" (paper §4.2.2).
//!
//! The unit of scheduling is a *chunk event*: `(plan, records[a..b],
//! stage k)`. Executing it runs stage `k` for every record in the chunk and
//! re-enqueues `(…, stage k+1)` at high priority; the final stage writes
//! results and releases the chunk's working sets back to their pool.
//! Working sets are leased lazily when a chunk's first stage runs, per the
//! paper ("vectors are requested per pipeline and lazily fulfilled when a
//! pipeline's first stage is being evaluated").
//!
//! **Reservation-based scheduling**: a plan may reserve its own executor
//! (and vector pool); its events bypass the shared queues entirely,
//! emulating container-style isolation while still sharing parameters
//! (paper §4.2.2).
//!
//! **Sharded execution plane** (`SchedulerConfig::sharded`, the default):
//! instead of one shared queue pair that every executor contends on, each
//! executor owns its own [`DualQueue`] and vector-pool arena; submissions
//! round-robin chunks across the worker queues, and a worker that runs dry
//! *steals* — randomized two-choice victim selection, preferring the
//! victim's low queue (stage-0 chunks whose working sets the thief leases
//! from its **own** arena) over its high queue (started chunks whose
//! buffers live in the victim's arena and go home via lock-free cross-core
//! return). Stolen chunks re-enter the *thief's* queue for later stages,
//! so a chunk migrates at most once per dry spell. Reserved executors stay
//! outside the steal set. `sharded = false` keeps the original
//! shared-everything plane as the measured ablation control; scores and
//! cache hit/miss counts are bitwise-identical either way.

use crate::lifecycle::GatePass;
use crate::object_store::MaterializationCache;
use crate::physical::{ExecCtx, ModelPlan, SourceRef};
use crate::telemetry::{MetricsRegistry, PlanRecorder, PoolCounters};
use parking_lot::{Condvar, Mutex};
use pretzel_data::pool::VectorPool;
use pretzel_data::{ColumnBatch, DataError, Result, Vector};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One prediction request record.
#[derive(Debug, Clone)]
pub enum Record {
    /// A text line (CSV payload).
    Text(String),
    /// A dense numeric record.
    Dense(Vec<f32>),
    /// A sparse numeric record (pre-featurized payload).
    Sparse {
        /// Sorted, unique element indices.
        indices: Vec<u32>,
        /// Values parallel to `indices`.
        values: Vec<f32>,
        /// Logical dimensionality.
        dim: u32,
    },
}

impl Record {
    /// Borrows the record as a [`SourceRef`].
    pub fn as_source(&self) -> SourceRef<'_> {
        match self {
            Record::Text(s) => SourceRef::Text(s),
            Record::Dense(x) => SourceRef::Dense(x),
            Record::Sparse {
                indices,
                values,
                dim,
            } => SourceRef::Sparse {
                indices,
                values,
                dim: *dim,
            },
        }
    }
}

/// A whole request's source rows assembled into one [`ColumnBatch`]
/// (wire-to-columnar ingest), plus one content hash per row.
///
/// The scheduler's chunks share this read-only; when the last chunk drops
/// its reference, the batch buffer returns to its *home* pool (the
/// FrontEnd's ingest pool), so wire-assembled buffers recirculate instead
/// of draining the pool one request at a time.
#[derive(Debug)]
pub struct AssembledBatch {
    rows: ColumnBatch,
    hashes: Vec<u64>,
    home: Option<Arc<VectorPool>>,
}

impl AssembledBatch {
    /// Wraps assembled rows and their parallel content hashes; `home` is
    /// the pool the batch buffer returns to when the request completes.
    ///
    /// `hashes` may be **empty** (the ingest path skips hashing when no
    /// cache will consume it); consumers then hash rows on demand through
    /// [`Self::hash_of`].
    pub fn new(rows: ColumnBatch, hashes: Vec<u64>, home: Option<Arc<VectorPool>>) -> Result<Self> {
        if !hashes.is_empty() && hashes.len() != rows.rows() {
            return Err(DataError::Runtime(format!(
                "assembled batch has {} rows but {} hashes",
                rows.rows(),
                hashes.len()
            )));
        }
        Ok(AssembledBatch { rows, hashes, home })
    }

    /// Content hash of row `i`: the ingest-time hash when recorded,
    /// otherwise computed from the packed row (same bytes, same shared
    /// helpers, same value).
    pub fn hash_of(&self, i: usize) -> u64 {
        if self.hashes.is_empty() {
            pretzel_data::ingest::hash_row(self.rows.row(i))
        } else {
            self.hashes[i]
        }
    }

    /// The assembled source rows.
    pub fn rows(&self) -> &ColumnBatch {
        &self.rows
    }

    /// Number of assembled rows.
    pub fn len(&self) -> usize {
        self.rows.rows()
    }

    /// True if the request holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Per-row content hashes, parallel to the rows.
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Disassembles the batch into `(rows, hashes, home pool)` without
    /// running the drop-return — the zero-copy single-chunk path *moves*
    /// the rows into the chunk's slot 0 and returns them to `home` itself
    /// when the chunk releases its working set.
    pub(crate) fn into_parts(self) -> (ColumnBatch, Vec<u64>, Option<Arc<VectorPool>>) {
        let mut this = std::mem::ManuallyDrop::new(self);
        let rows = std::mem::replace(&mut this.rows, ColumnBatch::Scalar(Vec::new()));
        let hashes = std::mem::take(&mut this.hashes);
        let home = this.home.take();
        (rows, hashes, home)
    }
}

impl Drop for AssembledBatch {
    fn drop(&mut self) {
        if let Some(pool) = self.home.take() {
            pool.release_batch(std::mem::replace(
                &mut self.rows,
                ColumnBatch::Scalar(Vec::new()),
            ));
        }
    }
}

/// The source rows a submitted batch executes over: staged `Record`s (the
/// classic path, and the `wire_columnar = false` ablation control) or a
/// wire-assembled [`AssembledBatch`].
#[derive(Debug, Clone)]
enum BatchInput {
    /// One owned `Record` per row.
    Records(Arc<Vec<Record>>),
    /// All rows packed in one column batch.
    Assembled(Arc<AssembledBatch>),
    /// The rows themselves were *moved* into the chunk's slot 0 (zero-copy
    /// single-chunk ingest); only their count and ingest-time hashes
    /// remain addressable here.
    Moved(Arc<MovedMeta>),
}

/// What survives of a moved assembled batch: its shape and hashes. The
/// rows live in the (single) chunk's slot 0.
#[derive(Debug)]
struct MovedMeta {
    len: usize,
    hashes: Vec<u64>,
}

/// A moved batch riding its chunk task to stage 0, where it becomes
/// slot 0 outright instead of being bulk-copied into a leased batch.
struct MovedSource {
    rows: ColumnBatch,
    home: Option<Arc<VectorPool>>,
}

/// Where a chunk's slot 0 goes when the working set releases.
enum SlotZero {
    /// Leased from the executor pool like every other slot (the default).
    Leased,
    /// The moved request batch: returns to its home ingest pool (or is
    /// dropped when it had none) instead of the executor pool.
    Moved { home: Option<Arc<VectorPool>> },
}

impl BatchInput {
    fn len(&self) -> usize {
        match self {
            BatchInput::Records(r) => r.len(),
            BatchInput::Assembled(a) => a.len(),
            BatchInput::Moved(m) => m.len,
        }
    }

    /// Borrows row `i` as a source record.
    fn source_at(&self, i: usize) -> Result<SourceRef<'_>> {
        match self {
            BatchInput::Records(r) => Ok(r[i].as_source()),
            BatchInput::Assembled(a) => SourceRef::from_row(a.rows.row(i)),
            BatchInput::Moved(_) => Err(DataError::Runtime(
                "moved batch rows live in the chunk working set".into(),
            )),
        }
    }

    /// Content hash of row `i` (assembled inputs carry theirs from ingest
    /// when recorded; staged records and unhashed assemblies hash on
    /// demand, as the pre-assembler path always did).
    fn hash_at(&self, i: usize) -> u64 {
        match self {
            BatchInput::Records(r) => r[i].as_source().content_hash(),
            BatchInput::Assembled(a) => a.hash_of(i),
            // Moves only happen with ingest-time hashes present whenever a
            // cache could consume them (see `prepare_assembled`).
            BatchInput::Moved(m) => m.hashes.get(i).copied().unwrap_or(0),
        }
    }
}

/// Continuation invoked when a batch's last chunk completes (the reactor
/// FrontEnd's completion routing — no thread blocks on the handle).
type CompletionFn = Box<dyn FnOnce(Result<Vec<f32>>) + Send + 'static>;

/// Shared state of one in-flight batch request.
struct BatchState {
    results: Mutex<Vec<f32>>,
    error: Mutex<Option<DataError>>,
    remaining_chunks: AtomicUsize,
    done: Condvar,
    done_lock: Mutex<bool>,
    completed_at: Mutex<Option<std::time::Instant>>,
    /// The submission's hold on its plan's lifecycle gate, released when
    /// the last chunk completes — `undeploy` drains against exactly this.
    gate: Mutex<Option<GatePass>>,
    /// Registered by [`BatchHandle::on_complete`]; taken (under
    /// `done_lock`) by the completing chunk and invoked with the harvest.
    watcher: Mutex<Option<CompletionFn>>,
}

impl std::fmt::Debug for BatchState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchState")
            .field(
                "remaining_chunks",
                &self.remaining_chunks.load(Ordering::Relaxed),
            )
            .field("done", &*self.done_lock.lock())
            .finish()
    }
}

impl BatchState {
    /// Takes the final outcome: the first error if any chunk failed, the
    /// scores otherwise. Call only after `done` is observed.
    fn harvest(&self) -> Result<Vec<f32>> {
        if let Some(err) = self.error.lock().take() {
            return Err(err);
        }
        Ok(std::mem::take(&mut *self.results.lock()))
    }
}

/// Handle for awaiting a submitted batch.
#[derive(Debug)]
pub struct BatchHandle {
    state: Arc<BatchState>,
}

impl BatchHandle {
    /// Blocks until every chunk completed; returns the per-record scores.
    pub fn wait(self) -> Result<Vec<f32>> {
        self.wait_timed().map(|(scores, _)| scores)
    }

    /// Like [`Self::wait`], also returning *when* the last chunk finished —
    /// load generators use this to measure request latency without
    /// inflating it by their own harvesting delay.
    pub fn wait_timed(self) -> Result<(Vec<f32>, std::time::Instant)> {
        let mut done = self.state.done_lock.lock();
        while !*done {
            self.state.done.wait(&mut done);
        }
        drop(done);
        let at = self
            .state
            .completed_at
            .lock()
            .unwrap_or_else(std::time::Instant::now);
        self.state.harvest().map(|scores| (scores, at))
    }

    /// Registers a continuation invoked (once, from the executor thread
    /// that completes the last chunk) with the batch's outcome — the
    /// non-blocking alternative to [`Self::wait`] that lets a reactor
    /// route completions back to itself instead of parking a thread per
    /// in-flight request. If the batch already completed, `f` runs
    /// immediately on the caller.
    pub fn on_complete(self, f: impl FnOnce(Result<Vec<f32>>) + Send + 'static) {
        let mut f = Some(f);
        {
            let done = self.state.done_lock.lock();
            if !*done {
                // The completing chunk takes the watcher under `done_lock`
                // after setting `done`, so exactly one side runs it.
                *self.state.watcher.lock() = Some(Box::new(f.take().expect("unconsumed")));
            }
        }
        if let Some(f) = f {
            f(self.state.harvest());
        }
    }
}

/// The working set a chunk carries between its stage events.
///
/// `Columnar` is the default data plane: one [`ColumnBatch`] per plan slot
/// for the whole chunk (with sub-plan materialization on, cacheable steps
/// probe the cache at chunk granularity). `Records` is the per-record
/// fallback — one vector working set per record — used when columnar
/// execution is disabled, and kept as the measured baseline for the
/// columnar and cache×columnar ablations.
enum ChunkWorkingSet {
    /// Not leased yet (before the chunk's first stage runs).
    Unleased,
    /// Per-record vector working sets.
    Records(Vec<Vec<Vector>>),
    /// One columnar batch per plan slot.
    Columnar(Vec<ColumnBatch>),
}

/// Telemetry riding on a chunk event: the plan's recorder (resolved once
/// per submission) plus the enqueue instant and priority class of the
/// *current* wait, re-stamped on every re-enqueue. Absent entirely when
/// `RuntimeConfig::telemetry` is off, so the off leg performs zero clock
/// reads.
struct TaskMeter {
    rec: Arc<PlanRecorder>,
    enqueued_at: Instant,
    /// True once the chunk re-enters at high priority (started pipeline).
    high: bool,
}

/// A chunk event: one contiguous range of a batch at one stage.
struct ChunkTask {
    /// Per-plan telemetry recorder + queue-wait stamp, when enabled.
    meter: Option<TaskMeter>,
    /// The plan's runtime id, carried so a contained fault can be
    /// attributed to the plan (fault hook + quarantine policy).
    plan_id: u32,
    plan: Arc<ModelPlan>,
    input: BatchInput,
    range: (usize, usize),
    stage: usize,
    /// Working set, leased lazily at the chunk's first stage.
    working: ChunkWorkingSet,
    /// Pool the working set came from (returned there on completion).
    lease_pool: Option<Arc<VectorPool>>,
    /// A moved assembled batch riding along to stage 0 (zero-copy
    /// single-chunk ingest); taken there to become slot 0.
    moved: Option<MovedSource>,
    /// Where slot 0 returns on release (diverges from `lease_pool` only
    /// after a move).
    slot_zero: SlotZero,
    state: Arc<BatchState>,
}

/// The shared pair of priority queues.
#[derive(Debug, Default)]
struct QueueInner {
    high: VecDeque<ChunkTask>,
    low: VecDeque<ChunkTask>,
    closed: bool,
}

impl std::fmt::Debug for ChunkTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkTask")
            .field("range", &self.range)
            .field("stage", &self.stage)
            .finish()
    }
}

#[derive(Debug, Default)]
struct DualQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
}

impl DualQueue {
    fn push_high(&self, t: ChunkTask) {
        self.inner.lock().high.push_back(t);
        self.cv.notify_one();
    }

    fn push_low(&self, t: ChunkTask) {
        self.inner.lock().low.push_back(t);
        self.cv.notify_one();
    }

    /// Enqueues at low priority unless the queue was closed, in which case
    /// the task is handed back so the submitter can fall over to the shared
    /// queue (a reserved queue closes when its plan is unreserved; its
    /// executor may already have exited).
    fn try_push_low(&self, t: ChunkTask) -> Option<ChunkTask> {
        let mut g = self.inner.lock();
        if g.closed {
            return Some(t);
        }
        g.low.push_back(t);
        self.cv.notify_one();
        None
    }

    /// Pops the next event, preferring the high-priority queue; returns
    /// `None` once closed and drained.
    fn pop(&self) -> Option<ChunkTask> {
        let mut g = self.inner.lock();
        loop {
            if let Some(t) = g.high.pop_front() {
                return Some(t);
            }
            if let Some(t) = g.low.pop_front() {
                return Some(t);
            }
            if g.closed {
                return None;
            }
            self.cv.wait(&mut g);
        }
    }

    /// Non-blocking owner pop, same priority order as [`Self::pop`].
    fn try_pop(&self) -> Option<ChunkTask> {
        let mut g = self.inner.lock();
        if let Some(t) = g.high.pop_front() {
            return Some(t);
        }
        g.low.pop_front()
    }

    /// Steals one event for another worker. Priority is *inverted*
    /// relative to the owner: the low queue first — a stage-0 chunk has no
    /// working set yet, so the thief leases from its own arena and keeps
    /// locality — falling back to a started chunk, whose buffers return to
    /// the victim's arena through the lock-free cross-core return path.
    fn steal(&self) -> Option<ChunkTask> {
        let mut g = self.inner.lock();
        if let Some(t) = g.low.pop_front() {
            return Some(t);
        }
        g.high.pop_front()
    }

    /// Queued event count (a snapshot; used for two-choice victim ranking).
    fn approx_len(&self) -> usize {
        let g = self.inner.lock();
        g.high.len() + g.low.len()
    }

    /// Parks the owner until new work, a close, or `timeout`. Returns
    /// `true` when the queue is closed *and* drained — the owner's signal
    /// to exit (its queue can no longer grow: submissions stop before
    /// close, and workers only re-push to their own queue).
    fn park(&self, timeout: std::time::Duration) -> bool {
        let mut g = self.inner.lock();
        if !g.high.is_empty() || !g.low.is_empty() {
            return false;
        }
        if g.closed {
            return true;
        }
        self.cv.wait_for(&mut g, timeout);
        g.closed && g.high.is_empty() && g.low.is_empty()
    }

    fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }
}

/// How long a dry sharded worker parks before rescanning the steal set.
/// Short enough that a newly-loaded victim is noticed quickly, long enough
/// that idle workers cost ~zero CPU.
const STEAL_RESCAN_PARK: std::time::Duration = std::time::Duration::from_micros(200);

/// Scheduler counters exposed to benchmarks and tests.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Stage events executed.
    pub stage_events: AtomicU64,
    /// Records fully scored.
    pub records_done: AtomicU64,
    /// Chunk events taken from another worker's queue (sharded plane).
    pub steals: AtomicU64,
}

/// One plan's reserved executor: its private queue, pool and thread
/// handle, so [`Scheduler::unreserve`] can close the queue and join the
/// thread, and deploy-time warming can reach the pool.
#[derive(Debug)]
struct ReservedExec {
    queue: Arc<DualQueue>,
    pool: Arc<VectorPool>,
    handle: Option<JoinHandle<()>>,
}

/// How many working sets deploy-time warming pre-leases per executor pool:
/// one for the chunk in flight plus one for a chunk whose lease is still
/// queued between stages.
const WARM_WORKING_SETS: usize = 2;

/// Construction parameters of a [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Executor thread count.
    pub n_executors: usize,
    /// Pool (vs allocate) working-set buffers.
    pub pooling: bool,
    /// Records per chunk event.
    pub chunk_size: usize,
    /// Columnar (vs per-record) working sets.
    pub columnar: bool,
    /// Sub-plan materialization cache, if enabled.
    pub cache: Option<Arc<MaterializationCache>>,
    /// Per-executor run queues + work stealing + lock-free pool arenas
    /// (vs the shared-everything plane, kept as the ablation control).
    pub sharded: bool,
    /// Telemetry plane: per-plan queue-wait and stage-execution recording
    /// plus cache-probe timing on each executor's `ExecCtx`. `None` (the
    /// overhead ablation control) records nothing and reads no clocks.
    pub telemetry: Option<Arc<MetricsRegistry>>,
}

/// Callback invoked on the faulting executor's thread after a panic was
/// contained: receives the faulting plan's id. The runtime installs its
/// fault policy here (sliding-window counting → quarantine → alias
/// rollback); the scheduler itself only contains and attributes.
pub type FaultHook = Arc<dyn Fn(u32) + Send + Sync>;

/// The hook cell shared between the scheduler handle and its executor
/// threads. A cell (rather than a constructor argument) because the
/// runtime builds the scheduler before the policy state the hook captures.
#[derive(Clone, Default)]
struct FaultHookCell(Arc<Mutex<Option<FaultHook>>>);

impl std::fmt::Debug for FaultHookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultHookCell")
    }
}

/// The submission plane: where unreserved chunks go and executors pull.
#[derive(Debug)]
enum Plane {
    /// One queue pair every executor blocks on (ablation control).
    Shared(Arc<DualQueue>),
    /// One queue pair per executor; chunks round-robin across workers and
    /// dry workers steal from each other.
    Sharded {
        workers: Vec<Arc<DualQueue>>,
        next: AtomicUsize,
    },
}

impl Plane {
    /// Enqueues a new chunk at low priority.
    fn push_low(&self, t: ChunkTask) {
        match self {
            Plane::Shared(q) => q.push_low(t),
            Plane::Sharded { workers, next } => {
                let i = next.fetch_add(1, Ordering::Relaxed) % workers.len();
                workers[i].push_low(t);
            }
        }
    }

    fn close(&self) {
        match self {
            Plane::Shared(q) => q.close(),
            Plane::Sharded { workers, .. } => {
                for q in workers {
                    q.close();
                }
            }
        }
    }
}

/// The stage scheduler: executors, run queues, reservations.
#[derive(Debug)]
pub struct Scheduler {
    plane: Plane,
    executors: Vec<JoinHandle<()>>,
    /// The per-executor pools, kept visible so deploy-time plan warming
    /// can pre-lease working sets ("allocated per Executor to improve
    /// locality", paper §4.2.1 — warming fills each executor's own pool).
    exec_pools: Vec<Arc<VectorPool>>,
    /// The shared arena behind every per-core arena in sharded mode:
    /// arena-dry acquires refill from it, arena-full releases spill to it.
    fallback_pool: Option<Arc<VectorPool>>,
    reserved: Mutex<std::collections::HashMap<u32, ReservedExec>>,
    stats: Arc<SchedStats>,
    pooling: bool,
    chunk_size: usize,
    columnar: bool,
    cache: Option<Arc<MaterializationCache>>,
    /// Telemetry registry shared with the runtime (None = telemetry off).
    telemetry: Option<Arc<MetricsRegistry>>,
    /// Fault-policy callback cell, shared with every executor thread.
    fault_hook: FaultHookCell,
}

impl Scheduler {
    /// Starts `n_executors` executor threads, each with its own vector
    /// pool, on the sharded plane. See [`Self::with_config`].
    pub fn new(
        n_executors: usize,
        pooling: bool,
        chunk_size: usize,
        columnar: bool,
        cache: Option<Arc<MaterializationCache>>,
    ) -> Self {
        Self::with_config(SchedulerConfig {
            n_executors,
            pooling,
            chunk_size,
            columnar,
            cache,
            sharded: true,
            telemetry: None,
        })
    }

    /// Starts the executor threads described by `cfg`.
    ///
    /// With `columnar` set (the default data plane), each chunk leases one
    /// columnar working set and stages execute whole-chunk batch kernels;
    /// otherwise chunks carry per-record working sets and stages loop over
    /// records (the pre-columnar behaviour, kept for the ablation). Sub-plan
    /// materialization composes with columnar execution: cacheable steps
    /// run the chunk-level cache probe (per-row hash probe, miss sub-batch)
    /// inside [`PhysicalStage::execute_batch`].
    ///
    /// With `sharded` set (the default plane), each executor owns a run
    /// queue and a lock-free pool arena fronting one shared fallback
    /// arena; see the module docs for the steal policy.
    ///
    /// [`PhysicalStage::execute_batch`]: crate::physical::PhysicalStage::execute_batch
    pub fn with_config(cfg: SchedulerConfig) -> Self {
        let n = cfg.n_executors.max(1);
        let stats = Arc::new(SchedStats::default());
        let fault_hook = FaultHookCell::default();
        let fallback_pool = (cfg.sharded && cfg.pooling).then(|| Arc::new(VectorPool::arena()));
        let exec_pools: Vec<Arc<VectorPool>> = (0..n)
            .map(|_| Arc::new(build_pool(cfg.pooling, fallback_pool.as_ref())))
            .collect();
        let (plane, executors) = if cfg.sharded {
            let workers: Vec<Arc<DualQueue>> =
                (0..n).map(|_| Arc::new(DualQueue::default())).collect();
            let executors = exec_pools
                .iter()
                .enumerate()
                .map(|(i, pool)| {
                    let queues = workers.clone();
                    let stats = Arc::clone(&stats);
                    let cache = cfg.cache.clone();
                    let pool = Arc::clone(pool);
                    let columnar = cfg.columnar;
                    let telemetry = cfg.telemetry.clone();
                    let hook = fault_hook.clone();
                    std::thread::Builder::new()
                        .name(format!("pretzel-exec-{i}"))
                        .spawn(move || {
                            sharded_worker_loop(
                                i, queues, stats, pool, columnar, cache, telemetry, hook,
                            )
                        })
                        .expect("spawn executor")
                })
                .collect();
            (
                Plane::Sharded {
                    workers,
                    next: AtomicUsize::new(0),
                },
                executors,
            )
        } else {
            let shared = Arc::new(DualQueue::default());
            let executors = exec_pools
                .iter()
                .enumerate()
                .map(|(i, pool)| {
                    let queue = Arc::clone(&shared);
                    let stats = Arc::clone(&stats);
                    let cache = cfg.cache.clone();
                    let pool = Arc::clone(pool);
                    let columnar = cfg.columnar;
                    let telemetry = cfg.telemetry.clone();
                    let hook = fault_hook.clone();
                    std::thread::Builder::new()
                        .name(format!("pretzel-exec-{i}"))
                        .spawn(move || {
                            executor_loop(queue, stats, pool, columnar, cache, telemetry, hook)
                        })
                        .expect("spawn executor")
                })
                .collect();
            (Plane::Shared(shared), executors)
        };
        Scheduler {
            plane,
            executors,
            exec_pools,
            fallback_pool,
            reserved: Mutex::new(std::collections::HashMap::new()),
            stats,
            pooling: cfg.pooling,
            chunk_size: cfg.chunk_size.max(1),
            columnar: cfg.columnar,
            cache: cfg.cache,
            telemetry: cfg.telemetry,
            fault_hook,
        }
    }

    /// Installs the fault-policy callback invoked (on the faulting
    /// executor's thread) each time a panic is contained, with the
    /// faulting plan's id. Replaces any previous hook; executors pick the
    /// new hook up on their next contained fault.
    pub fn set_fault_hook(&self, hook: FaultHook) {
        *self.fault_hook.0.lock() = Some(hook);
    }

    /// Scheduler counters.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// True if chunks execute over columnar working sets (regardless of
    /// whether sub-plan materialization is enabled — the two compose).
    pub fn columnar(&self) -> bool {
        self.columnar
    }

    /// Reserves a dedicated executor (with its own pool and queue) for
    /// `plan_id`. Parameters and physical stages remain shared.
    pub fn reserve(&self, plan_id: u32) {
        let mut reserved = self.reserved.lock();
        if reserved.contains_key(&plan_id) {
            return;
        }
        let queue = Arc::new(DualQueue::default());
        let stats = Arc::clone(&self.stats);
        let columnar = self.columnar;
        let cache = self.cache.clone();
        let telemetry = self.telemetry.clone();
        let hook = self.fault_hook.clone();
        let pool = Arc::new(build_pool(self.pooling, self.fallback_pool.as_ref()));
        let q = Arc::clone(&queue);
        let p = Arc::clone(&pool);
        let handle = std::thread::Builder::new()
            .name(format!("pretzel-reserved-{plan_id}"))
            .spawn(move || executor_loop(q, stats, p, columnar, cache, telemetry, hook))
            .expect("spawn reserved executor");
        reserved.insert(
            plan_id,
            ReservedExec {
                queue,
                pool,
                handle: Some(handle),
            },
        );
    }

    /// Deploy-time plan warming for the batch engine: pre-leases the
    /// pools that will actually serve `plan_id` — its dedicated pool when
    /// the plan is reserved, the shared executor pools otherwise — with
    /// the plan's working-set and scratch buffers, sized from training
    /// statistics, so the first post-deploy (or post-swap) chunk pays no
    /// pool misses. The same upfront-payment discipline the
    /// request-response pool gets at registration (paper §4.2.1), without
    /// parking working sets in pools the plan's chunks never lease from.
    pub fn warm_plan(&self, plan_id: u32, plan: &ModelPlan) {
        if !self.pooling {
            return;
        }
        let reserved = self.reserved.lock();
        let own_reserved = reserved.get(&plan_id).map(|r| &r.pool);
        let pools: Vec<&Arc<VectorPool>> = match own_reserved {
            Some(pool) => vec![pool],
            None => self.exec_pools.iter().collect(),
        };
        for pool in pools {
            let defs = plan
                .slots
                .iter()
                .chain(plan.stages.iter().flat_map(|s| s.scratch.iter()));
            for def in defs {
                if self.columnar {
                    pool.warm_batches(def.ty, self.chunk_size, def.max_stored, WARM_WORKING_SETS);
                } else {
                    pool.warm_sized(def.ty, def.max_stored, self.chunk_size * WARM_WORKING_SETS);
                }
            }
        }
    }

    /// Aggregate lease hit/miss counters across every executor pool (shared
    /// and reserved) — the observable the deploy-time warming tests gate on.
    pub fn pool_stats(&self) -> PoolCounters {
        let reserved = self.reserved.lock();
        let mut agg = PoolCounters::default();
        for pool in self
            .exec_pools
            .iter()
            .chain(reserved.values().map(|r| &r.pool))
        {
            agg.hits += pool.stats().hits();
            agg.misses += pool.stats().misses();
        }
        agg
    }

    /// Outstanding leases across every executor pool (shared and
    /// reserved): acquisitions minus returns, where a buffer dropped on a
    /// full size class counts as returned. At quiescence this is the
    /// number of leased buffers that never came home — the unwind-safety
    /// observable: a contained fault that leaked its chunk's working set
    /// shows up here even though hit/miss ratios look healthy.
    pub fn pool_outstanding(&self) -> i64 {
        let reserved = self.reserved.lock();
        let mut out = 0i64;
        for pool in self
            .exec_pools
            .iter()
            .chain(reserved.values().map(|r| &r.pool))
        {
            let s = pool.stats();
            out += (s.hits() + s.misses()) as i64;
            out -= (s.released() + s.dropped()) as i64;
        }
        out
    }

    /// Tears down a plan's reservation: removes the queue from the routing
    /// map (new submissions fall back to the shared queue), signals
    /// shutdown, lets the dedicated executor drain its remaining events,
    /// and joins the thread — the reverse of [`Self::reserve`], so churned
    /// reserved plans no longer leak a thread and pool forever.
    ///
    /// Returns `true` if a reservation existed.
    pub fn unreserve(&self, plan_id: u32) -> bool {
        let slot = self.reserved.lock().remove(&plan_id);
        let Some(mut res) = slot else {
            return false;
        };
        res.queue.close();
        if let Some(handle) = res.handle.take() {
            let _ = handle.join();
        }
        true
    }

    /// Number of live reservations (tests and the admin surface).
    pub fn reserved_count(&self) -> usize {
        self.reserved.lock().len()
    }

    /// Submits a batch of records for `plan`; chunks enter the low-priority
    /// queue (new pipelines) and climb to high priority as they progress.
    pub fn submit_batch(
        &self,
        plan_id: u32,
        plan: Arc<ModelPlan>,
        records: Vec<Record>,
    ) -> BatchHandle {
        self.submit_input(
            plan_id,
            plan,
            BatchInput::Records(Arc::new(records)),
            None,
            None,
        )
    }

    /// [`Self::submit_batch`] carrying the submission's lifecycle gate
    /// pass; the pass is released when the batch's last chunk completes,
    /// which is the event `undeploy`'s drain waits for.
    pub fn submit_batch_gated(
        &self,
        plan_id: u32,
        plan: Arc<ModelPlan>,
        records: Vec<Record>,
        gate: GatePass,
    ) -> BatchHandle {
        self.submit_input(
            plan_id,
            plan,
            BatchInput::Records(Arc::new(records)),
            Some(gate),
            None,
        )
    }

    /// Submits a wire-assembled request batch: the rows the FrontEnd built
    /// straight from the wire become the rows chunks bulk-load from —
    /// no `Record` round-trip. A request that fits one chunk skips even
    /// the bulk load: its batch is *moved* into the chunk's slot 0.
    pub fn submit_assembled(
        &self,
        plan_id: u32,
        plan: Arc<ModelPlan>,
        input: AssembledBatch,
    ) -> BatchHandle {
        let (input, moved) = self.prepare_assembled(input);
        self.submit_input(plan_id, plan, input, None, moved)
    }

    /// [`Self::submit_assembled`] carrying a lifecycle gate pass.
    pub fn submit_assembled_gated(
        &self,
        plan_id: u32,
        plan: Arc<ModelPlan>,
        input: AssembledBatch,
        gate: GatePass,
    ) -> BatchHandle {
        let (input, moved) = self.prepare_assembled(input);
        self.submit_input(plan_id, plan, input, Some(gate), moved)
    }

    /// Zero-copy decision for an assembled submission: a non-empty request
    /// that fits one columnar chunk moves its batch into slot 0 outright.
    /// The move is skipped when a materialization cache is configured but
    /// the assembly carries no ingest-time hashes — hashing on demand
    /// needs the rows addressable from the input, which a move gives up.
    fn prepare_assembled(&self, input: AssembledBatch) -> (BatchInput, Option<MovedSource>) {
        let n = input.len();
        let movable = self.columnar
            && n > 0
            && n <= self.chunk_size
            && (self.cache.is_none() || !input.hashes().is_empty());
        if movable {
            let (rows, hashes, home) = input.into_parts();
            (
                BatchInput::Moved(Arc::new(MovedMeta { len: n, hashes })),
                Some(MovedSource { rows, home }),
            )
        } else {
            (BatchInput::Assembled(Arc::new(input)), None)
        }
    }

    fn submit_input(
        &self,
        plan_id: u32,
        plan: Arc<ModelPlan>,
        input: BatchInput,
        gate: Option<GatePass>,
        mut moved: Option<MovedSource>,
    ) -> BatchHandle {
        let n = input.len();
        let n_chunks = n.div_ceil(self.chunk_size).max(1);
        let state = Arc::new(BatchState {
            results: Mutex::new(vec![0.0; n]),
            error: Mutex::new(None),
            remaining_chunks: AtomicUsize::new(n_chunks),
            done: Condvar::new(),
            done_lock: Mutex::new(n == 0),
            completed_at: Mutex::new((n == 0).then(std::time::Instant::now)),
            // Empty batches complete synchronously: the pass (if any) drops
            // here rather than waiting for a chunk that will never run.
            gate: Mutex::new(if n == 0 { None } else { gate }),
            watcher: Mutex::new(None),
        });
        if n == 0 {
            return BatchHandle { state };
        }
        let reserved_queue = {
            let reserved = self.reserved.lock();
            reserved.get(&plan_id).map(|r| Arc::clone(&r.queue))
        };
        // One recorder resolution per submission (not per chunk): the map
        // read amortizes over the whole batch, and each chunk's hot-path
        // recording is then shard-local atomics only.
        let recorder = self.telemetry.as_ref().map(|t| t.plan_recorder(plan_id));
        if let Some(rec) = &recorder {
            rec.note_batch_request();
        }
        let mut start = 0usize;
        while start < n {
            let end = (start + self.chunk_size).min(n);
            let task = ChunkTask {
                meter: recorder.as_ref().map(|rec| TaskMeter {
                    rec: Arc::clone(rec),
                    enqueued_at: Instant::now(),
                    high: false,
                }),
                plan_id,
                plan: Arc::clone(&plan),
                input: input.clone(),
                range: (start, end),
                stage: 0,
                working: ChunkWorkingSet::Unleased,
                lease_pool: None,
                // A movable submission is single-chunk by construction, so
                // the take hands the rows to the only task there is.
                moved: moved.take(),
                slot_zero: SlotZero::Leased,
                state: Arc::clone(&state),
            };
            match &reserved_queue {
                // A reserved queue that closed between routing and push
                // (the plan was unreserved concurrently) hands the task
                // back; it then runs on the general plane instead of
                // being lost.
                Some(q) => {
                    if let Some(task) = q.try_push_low(task) {
                        self.plane.push_low(task);
                    }
                }
                None => self.plane.push_low(task),
            }
            start = end;
        }
        BatchHandle { state }
    }

    /// Closes the queues and joins every executor.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.plane.close();
        let mut reserved: Vec<ReservedExec> =
            self.reserved.lock().drain().map(|(_, r)| r).collect();
        for r in &reserved {
            r.queue.close();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        for r in &mut reserved {
            if let Some(h) = r.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Builds one executor's pool ("vector pools are allocated per Executor to
/// improve locality", paper §4.2.1); the scheduler keeps a handle so
/// deploy-time warming and stats can reach it. On the sharded plane each
/// executor fronts the scheduler-wide fallback arena with a lock-free
/// arena of its own; on the shared plane (and for the ablation control)
/// each executor gets the mutex-backed pool.
fn build_pool(pooling: bool, fallback: Option<&Arc<VectorPool>>) -> VectorPool {
    if !pooling {
        return VectorPool::disabled();
    }
    match fallback {
        Some(global) => VectorPool::arena().with_fallback(Arc::clone(global)),
        None => VectorPool::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn executor_loop(
    queue: Arc<DualQueue>,
    stats: Arc<SchedStats>,
    pool: Arc<VectorPool>,
    columnar: bool,
    cache: Option<Arc<MaterializationCache>>,
    telemetry: Option<Arc<MetricsRegistry>>,
    fault_hook: FaultHookCell,
) {
    let mut ctx = ExecCtx::new(Arc::clone(&pool));
    if let Some(c) = cache {
        ctx = ctx.with_cache(c);
    }
    if let Some(t) = telemetry {
        ctx = ctx.with_telemetry(t);
    }
    while let Some(task) = queue.pop() {
        run_chunk_stage(task, &queue, &pool, &mut ctx, &stats, columnar, &fault_hook);
    }
}

/// One sharded-plane worker: drain the own queue, then try stealing, then
/// park briefly and rescan. Chunks always re-enter the queue of the worker
/// that ran their last stage — including stolen ones, which re-enter the
/// THIEF's queue — so once submissions stop, a queue that is closed and
/// empty can never refill and the worker exits.
#[allow(clippy::too_many_arguments)]
fn sharded_worker_loop(
    idx: usize,
    queues: Vec<Arc<DualQueue>>,
    stats: Arc<SchedStats>,
    pool: Arc<VectorPool>,
    columnar: bool,
    cache: Option<Arc<MaterializationCache>>,
    telemetry: Option<Arc<MetricsRegistry>>,
    fault_hook: FaultHookCell,
) {
    let mut ctx = ExecCtx::new(Arc::clone(&pool));
    if let Some(c) = cache {
        ctx = ctx.with_cache(c);
    }
    if let Some(t) = telemetry {
        ctx = ctx.with_telemetry(t);
    }
    let own = Arc::clone(&queues[idx]);
    // Per-worker xorshift state, seeded from the worker index so workers
    // probe victims in different orders.
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(idx as u64 + 1) | 1;
    loop {
        if let Some(task) = own.try_pop() {
            run_chunk_stage(task, &own, &pool, &mut ctx, &stats, columnar, &fault_hook);
            continue;
        }
        if let Some(task) = steal_from(&queues, idx, &mut rng) {
            stats.steals.fetch_add(1, Ordering::Relaxed);
            run_chunk_stage(task, &own, &pool, &mut ctx, &stats, columnar, &fault_hook);
            continue;
        }
        // Nothing local and every probed victim was dry: park on the own
        // queue (a push wakes the worker immediately) with a short timeout
        // so the steal set gets rescanned even without a local push.
        if own.park(STEAL_RESCAN_PARK) {
            return;
        }
    }
}

/// Two-choice steal: probe two distinct victims, try the longer queue
/// first, then the other. Steals prefer the victim's LOW queue — stage-0
/// chunks have not leased buffers yet, so stolen new work leases from the
/// thief's own arena and stays local, while started (HIGH) chunks carry
/// leases whose buffers would travel home over the cross-core return
/// path. The own queue at `idx` is never probed.
fn steal_from(queues: &[Arc<DualQueue>], idx: usize, rng: &mut u64) -> Option<ChunkTask> {
    let n = queues.len();
    if n <= 1 {
        return None;
    }
    let mut pick = || {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let r = (*rng as usize) % (n - 1);
        if r >= idx {
            r + 1
        } else {
            r
        }
    };
    let a = pick();
    let mut b = pick();
    if n > 2 {
        while b == a {
            b = pick();
        }
    }
    let (first, second) = if queues[a].approx_len() >= queues[b].approx_len() {
        (a, b)
    } else {
        (b, a)
    };
    queues[first].steal().or_else(|| queues[second].steal())
}

#[allow(clippy::too_many_arguments)]
fn run_chunk_stage(
    mut task: ChunkTask,
    queue: &Arc<DualQueue>,
    pool: &Arc<VectorPool>,
    ctx: &mut ExecCtx,
    stats: &Arc<SchedStats>,
    columnar: bool,
    fault_hook: &FaultHookCell,
) {
    let (start, end) = task.range;
    let n = end - start;
    // Queue wait: elapsed since this event entered its queue, attributed
    // to the priority class it waited in. The same stamp then re-opens as
    // the stage-execution clock (stage 0 charges its lazy lease + load to
    // the stage, which is where that work happens).
    let stage_start = task.meter.as_ref().map(|m| {
        let now = Instant::now();
        m.rec
            .record_queue_wait(m.high, now.duration_since(m.enqueued_at).as_nanos() as u64);
        now
    });
    // Lazy lease: acquired from THIS executor's pool at the first stage.
    // Columnar chunks lease ONE batch per plan slot; per-record chunks
    // lease one vector per slot per record.
    if task.stage == 0 {
        let types = task.plan.slot_types();
        task.lease_pool = Some(Arc::clone(pool));
        if columnar {
            if let Some(m) = task.moved.take() {
                // Zero-copy single-chunk ingest: the wire-assembled batch
                // *is* slot 0 — nothing leased for it, nothing copied.
                if m.rows.column_type() != types[0] {
                    let err = DataError::Runtime(format!(
                        "plan takes {} sources, request assembled {} rows",
                        types[0],
                        m.rows.column_type()
                    ));
                    if let Some(home) = m.home {
                        home.release_batch(m.rows);
                    }
                    finish_chunk_error(task, err);
                    return;
                }
                let mut slots: Vec<ColumnBatch> = Vec::with_capacity(types.len());
                slots.push(m.rows);
                for &t in &types[1..] {
                    slots.push(pool.acquire_batch(t, n));
                }
                task.slot_zero = SlotZero::Moved { home: m.home };
                task.working = ChunkWorkingSet::Columnar(slots);
            } else {
                let mut slots: Vec<ColumnBatch> =
                    types.iter().map(|&t| pool.acquire_batch(t, n)).collect();
                // Wire-assembled inputs bulk-copy their row range into
                // slot 0 (one extend per backing buffer); staged records
                // append one row each, as before.
                let loaded = match &task.input {
                    BatchInput::Records(records) => records[start..end]
                        .iter()
                        .try_for_each(|r| r.as_source().load_into_batch(&mut slots[0])),
                    BatchInput::Assembled(a) => slots[0].extend_from_range(a.rows(), start, end),
                    BatchInput::Moved(_) => unreachable!("moved source taken above"),
                };
                task.working = ChunkWorkingSet::Columnar(slots);
                if let Err(e) = loaded {
                    finish_chunk_error(task, e);
                    return;
                }
            }
        } else {
            let mut leases: Vec<Vec<Vector>> = (0..n)
                .map(|_| types.iter().map(|&t| pool.acquire(t)).collect())
                .collect();
            let mut loaded = Ok(());
            for (i, lease) in leases.iter_mut().enumerate() {
                loaded = task
                    .input
                    .source_at(start + i)
                    .and_then(|src| src.load_into(&mut lease[0]));
                if loaded.is_err() {
                    break;
                }
            }
            task.working = ChunkWorkingSet::Records(leases);
            if let Err(e) = loaded {
                finish_chunk_error(task, e);
                return;
            }
        }
    }
    let stage = &task.plan.stages[task.stage];
    // The fault containment boundary: operator code below this point runs
    // under `catch_unwind`, so a panicking kernel fails its own chunk with
    // a clean `ExecutionFault` instead of killing the executor thread and
    // every queue behind it. `AssertUnwindSafe` is justified because every
    // piece of state the closure can leave inconsistent is recovered on
    // the panic path: stranded scratch drains back to the pool
    // (`recover_scratch`), the chunk's leased working set returns through
    // `finish_chunk_error` → `release_leases`, and the gate pass drops in
    // `complete_chunk` — nothing else outlives the chunk.
    let outcome = match &mut task.working {
        ChunkWorkingSet::Columnar(slots) => {
            // Chunk-level cache probe inputs: one source hash per row
            // (mirrors the per-record branch below, which hashes each
            // record before its stage runs).
            if ctx.cache.is_some() && stage.has_cacheable_steps() {
                ctx.source_hashes.clear();
                match &task.input {
                    BatchInput::Records(records) => ctx.source_hashes.extend(
                        records[start..end]
                            .iter()
                            .map(|r| r.as_source().content_hash()),
                    ),
                    // Assembled inputs carry their hashes from ingest
                    // (computed over the same bytes with the same shared
                    // helpers, so cache keys are identical); an unhashed
                    // assembly — built while no cache was configured —
                    // hashes its rows here instead.
                    BatchInput::Assembled(a) => {
                        if a.hashes().is_empty() {
                            ctx.source_hashes.extend((start..end).map(|i| a.hash_of(i)));
                        } else {
                            ctx.source_hashes.extend_from_slice(&a.hashes()[start..end]);
                        }
                    }
                    // A moved batch always carries ingest-time hashes when
                    // a cache is configured (`prepare_assembled` refuses
                    // the move otherwise).
                    BatchInput::Moved(m) => {
                        ctx.source_hashes.extend_from_slice(&m.hashes[start..end]);
                    }
                }
            }
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                stage.execute_batch(slots, n, ctx)
            })) {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(payload) => Some(contain_panic(ctx, payload)),
            }
        }
        ChunkWorkingSet::Records(leases) => {
            let mut failed = None;
            for (i, lease) in leases.iter_mut().enumerate() {
                if ctx.cache.is_some() {
                    ctx.source_hash = task.input.hash_at(start + i);
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    stage.execute(lease, ctx)
                })) {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        failed = Some(e);
                        break;
                    }
                    Err(payload) => {
                        failed = Some(contain_panic(ctx, payload));
                        break;
                    }
                }
            }
            failed
        }
        ChunkWorkingSet::Unleased => unreachable!("working set leased at stage 0"),
    };
    if let Some(err) = outcome {
        if matches!(err, DataError::ExecutionFault(_)) {
            if let (Some(m), Some(t0)) = (&task.meter, stage_start) {
                m.rec.record_fault(t0.elapsed().as_nanos() as u64);
            }
            let hook = fault_hook.0.lock().clone();
            if let Some(hook) = hook {
                hook(task.plan_id);
            }
        }
        finish_chunk_error(task, err);
        return;
    }
    stats.stage_events.fetch_add(1, Ordering::Relaxed);
    if let (Some(m), Some(t0)) = (&task.meter, stage_start) {
        m.rec.record_stage(t0.elapsed().as_nanos() as u64, n as u64);
    }

    if task.stage + 1 < task.plan.stages.len() {
        task.stage += 1;
        if let Some(m) = &mut task.meter {
            m.enqueued_at = Instant::now();
            m.high = true;
        }
        // Started pipelines re-enter at high priority so they finish and
        // return their working sets quickly.
        queue.push_high(task);
    } else {
        // Final stage: harvest results, release working sets.
        let out = task.plan.output_slot as usize;
        // A columnar output batch that is not scalar or is missing rows is
        // an engine bug; fail the batch loudly instead of serving NaNs
        // (the per-record path structurally guarantees one score per
        // record, so this check has no analogue there).
        if let ChunkWorkingSet::Columnar(slots) = &task.working {
            let well_formed = slots[out].as_scalars().is_some_and(|s| s.len() == n);
            if !well_formed {
                let err = DataError::Runtime(format!(
                    "plan produced a malformed columnar output batch: want {n} scalars, got {:?} x {}",
                    slots[out].column_type(),
                    slots[out].rows(),
                ));
                finish_chunk_error(task, err);
                return;
            }
        }
        {
            let mut results = task.state.results.lock();
            match &task.working {
                ChunkWorkingSet::Columnar(slots) => {
                    let scores = slots[out].as_scalars().expect("checked well-formed above");
                    results[start..end].copy_from_slice(scores);
                }
                ChunkWorkingSet::Records(leases) => {
                    for (i, lease) in leases.iter().enumerate() {
                        results[start + i] = lease[out].as_scalar().unwrap_or(f32::NAN);
                    }
                }
                ChunkWorkingSet::Unleased => unreachable!("working set leased at stage 0"),
            }
        }
        stats.records_done.fetch_add(n as u64, Ordering::Relaxed);
        if let Some(m) = &task.meter {
            m.rec.add_records(n as u64);
        }
        release_leases(&mut task);
        complete_chunk(task.state);
    }
}

fn release_leases(task: &mut ChunkTask) {
    if let Some(pool) = task.lease_pool.take() {
        match std::mem::replace(&mut task.working, ChunkWorkingSet::Unleased) {
            ChunkWorkingSet::Records(leases) => {
                for lease in leases {
                    for v in lease {
                        pool.release(v);
                    }
                }
            }
            ChunkWorkingSet::Columnar(mut slots) => {
                // Span outputs (e.g. CSV field selection) borrow the text
                // source in slot 0, so slots release in REVERSE order: the
                // borrowers detach first and the source parks last with its
                // buffer unshared — releasing the source first would make
                // it detect the live borrow and drop its buffer instead of
                // keeping it for the next lease.
                while slots.len() > 1 {
                    let b = slots.pop().expect("len checked above");
                    pool.release_batch(b);
                }
                if let Some(rows) = slots.pop() {
                    // A moved slot 0 returns to its home ingest pool, not
                    // the executor pool it was never leased from.
                    match std::mem::replace(&mut task.slot_zero, SlotZero::Leased) {
                        SlotZero::Moved { home: Some(h) } => h.release_batch(rows),
                        SlotZero::Moved { home: None } => drop(rows),
                        SlotZero::Leased => pool.release_batch(rows),
                    }
                }
            }
            ChunkWorkingSet::Unleased => {}
        }
    }
}

/// Panic-path recovery for an executor context: returns any scratch the
/// unwind stranded in `ctx` to its pool and converts the panic payload
/// into the clean [`DataError::ExecutionFault`] the chunk fails with.
fn contain_panic(ctx: &mut ExecCtx, payload: Box<dyn std::any::Any + Send>) -> DataError {
    ctx.recover_scratch();
    DataError::ExecutionFault(panic_message(payload.as_ref()))
}

/// Best-effort extraction of a human-readable message from a panic
/// payload (`panic!` with a literal yields `&str`, with a format string
/// `String`; anything else gets a generic label).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "operator panicked".to_string()
    }
}

fn finish_chunk_error(mut task: ChunkTask, err: DataError) {
    release_leases(&mut task);
    task.state.error.lock().get_or_insert(err);
    complete_chunk(task.state);
}

fn complete_chunk(state: Arc<BatchState>) {
    if state.remaining_chunks.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last chunk: release the plan's lifecycle gate pass before waking
        // the waiter — once the handle observes completion, `undeploy`'s
        // drain has nothing left to wait on for this batch.
        drop(state.gate.lock().take());
        *state.completed_at.lock() = Some(std::time::Instant::now());
        let watcher = {
            let mut done = state.done_lock.lock();
            *done = true;
            state.done.notify_all();
            // Taken under `done_lock` so a concurrent `on_complete`
            // either registered before this (we run it) or observes
            // `done` and runs itself — never both, never neither.
            state.watcher.lock().take()
        };
        if let Some(watcher) = watcher {
            watcher(state.harvest());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flour::FlourContext;
    use crate::object_store::ObjectStore;
    use crate::physical::CompileOptions;
    use pretzel_ops::linear::LinearKind;
    use pretzel_ops::synth;

    fn sa_plan(seed: u64) -> Arc<ModelPlan> {
        let vocab = synth::vocabulary(0, 64);
        let ctx = FlourContext::new();
        let tokens = ctx.csv(',').select_text(1).tokenize();
        let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 128)));
        let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 128, &vocab)));
        let logical = c
            .concat(&w)
            .classifier_linear(Arc::new(synth::linear(seed, 256, LinearKind::Logistic)))
            .plan()
            .unwrap();
        let store = ObjectStore::new();
        Arc::new(ModelPlan::compile(logical, &CompileOptions::default(), &store).unwrap())
    }

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Text(format!("5,this is review number {i} quite nice")))
            .collect()
    }

    #[test]
    fn batch_results_match_inline_execution() {
        let plan = sa_plan(3);
        let sched = Scheduler::new(2, true, 4, true, None);
        let recs = records(17);
        let handle = sched.submit_batch(0, Arc::clone(&plan), recs.clone());
        let scores = handle.wait().unwrap();
        assert_eq!(scores.len(), 17);

        // Inline reference.
        let pool = Arc::new(VectorPool::new());
        let mut ctx = ExecCtx::new(pool);
        let mut slots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        for (i, r) in recs.iter().enumerate() {
            let expect = plan.execute(r.as_source(), &mut slots, &mut ctx).unwrap();
            assert!(
                (scores[i] - expect).abs() < 1e-6,
                "record {i}: {} vs {expect}",
                scores[i]
            );
        }
        sched.shutdown();
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let plan = sa_plan(1);
        let sched = Scheduler::new(1, true, 8, true, None);
        let scores = sched.submit_batch(0, plan, vec![]).wait().unwrap();
        assert!(scores.is_empty());
        sched.shutdown();
    }

    #[test]
    fn concurrent_batches_across_plans() {
        let plans: Vec<_> = (0..4).map(sa_plan).collect();
        let sched = Scheduler::new(4, true, 8, true, None);
        let handles: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| sched.submit_batch(i as u32, Arc::clone(p), records(23)))
            .collect();
        for h in handles {
            assert_eq!(h.wait().unwrap().len(), 23);
        }
        assert_eq!(sched.stats().records_done.load(Ordering::Relaxed), 4 * 23);
        // SA plans have 2 stages: 1 event per chunk per stage.
        let chunks = 23usize.div_ceil(8);
        assert_eq!(
            sched.stats().stage_events.load(Ordering::Relaxed),
            (4 * chunks * 2) as u64
        );
        sched.shutdown();
    }

    #[test]
    fn errors_propagate_to_handle() {
        let plan = sa_plan(5);
        let sched = Scheduler::new(2, true, 4, true, None);
        // Dense record into a text pipeline: source load fails.
        let handle = sched.submit_batch(0, plan, vec![Record::Dense(vec![1.0, 2.0])]);
        assert!(handle.wait().is_err());
        sched.shutdown();
    }

    #[test]
    fn reserved_plan_executes_on_dedicated_queue() {
        let plan = sa_plan(9);
        let sched = Scheduler::new(1, true, 4, true, None);
        sched.reserve(7);
        let h = sched.submit_batch(7, Arc::clone(&plan), records(5));
        assert_eq!(h.wait().unwrap().len(), 5);
        // Unreserved traffic still flows through the shared queue.
        let h2 = sched.submit_batch(1, plan, records(5));
        assert_eq!(h2.wait().unwrap().len(), 5);
        sched.shutdown();
    }

    #[test]
    fn columnar_and_per_record_chunks_agree_bitwise() {
        let plan = sa_plan(21);
        let recs = records(37);
        let columnar = Scheduler::new(2, true, 8, true, None);
        let per_record = Scheduler::new(2, true, 8, false, None);
        let a = columnar
            .submit_batch(0, Arc::clone(&plan), recs.clone())
            .wait()
            .unwrap();
        let b = per_record.submit_batch(0, plan, recs).wait().unwrap();
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "record {i}: {x} vs {y}");
        }
        columnar.shutdown();
        per_record.shutdown();
    }

    #[test]
    fn per_record_fallback_still_correct() {
        let plan = sa_plan(23);
        let sched = Scheduler::new(2, true, 4, false, None);
        let recs = records(9);
        let scores = sched
            .submit_batch(0, Arc::clone(&plan), recs.clone())
            .wait()
            .unwrap();
        let pool = Arc::new(VectorPool::new());
        let mut ctx = ExecCtx::new(pool);
        let mut slots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        for (i, r) in recs.iter().enumerate() {
            let expect = plan.execute(r.as_source(), &mut slots, &mut ctx).unwrap();
            assert_eq!(scores[i].to_bits(), expect.to_bits(), "record {i}");
        }
        sched.shutdown();
    }

    #[test]
    fn columnar_errors_propagate_and_release_leases() {
        let plan = sa_plan(25);
        let sched = Scheduler::new(1, true, 4, true, None);
        // Dense record into a text pipeline: batch source load fails.
        let handle = sched.submit_batch(0, plan, vec![Record::Dense(vec![1.0])]);
        assert!(handle.wait().is_err());
        sched.shutdown();
    }

    #[test]
    fn columnar_stays_on_with_materialization_cache() {
        // Before the chunk-level cache probe, enabling the cache silently
        // forced the per-record chunk loop; the two now compose.
        let cache_a = Arc::new(MaterializationCache::new(1 << 20));
        let cache_b = Arc::new(MaterializationCache::new(1 << 20));
        let columnar = Scheduler::new(1, true, 4, true, Some(Arc::clone(&cache_a)));
        let per_record = Scheduler::new(1, true, 4, false, Some(Arc::clone(&cache_b)));
        assert!(columnar.columnar());
        assert!(!per_record.columnar());
        let plan = sa_plan(31);
        let recs = records(11);
        // Two passes each: cold cache, then warm cache.
        for pass in 0..2 {
            let a = columnar
                .submit_batch(0, Arc::clone(&plan), recs.clone())
                .wait()
                .unwrap();
            let b = per_record
                .submit_batch(0, Arc::clone(&plan), recs.clone())
                .wait()
                .unwrap();
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "pass {pass} record {i}: columnar+cache {x} vs per-record+cache {y}"
                );
            }
            let sa = cache_a.stats();
            let sb = cache_b.stats();
            let ((ha, ma), (hb, mb)) = ((sa.hits, sa.misses), (sb.hits, sb.misses));
            assert_eq!(
                (ha, ma),
                (hb, mb),
                "pass {pass}: cache hit/miss counts diverge between data planes"
            );
        }
        let hits = cache_a.stats().hits;
        assert!(hits > 0, "warm pass should hit the cache");
        columnar.shutdown();
        per_record.shutdown();
    }

    #[test]
    fn pooling_disabled_still_correct() {
        let plan = sa_plan(11);
        let sched = Scheduler::new(2, false, 4, true, None);
        let scores = sched.submit_batch(0, plan, records(9)).wait().unwrap();
        assert_eq!(scores.len(), 9);
        sched.shutdown();
    }

    #[test]
    fn unreserve_drains_and_joins_the_dedicated_executor() {
        let plan = sa_plan(41);
        let sched = Scheduler::new(1, true, 4, true, None);
        sched.reserve(3);
        assert_eq!(sched.reserved_count(), 1);
        let h = sched.submit_batch(3, Arc::clone(&plan), records(13));
        assert_eq!(h.wait().unwrap().len(), 13);
        assert!(sched.unreserve(3), "reservation existed");
        assert_eq!(sched.reserved_count(), 0);
        assert!(!sched.unreserve(3), "second unreserve is a no-op");
        // Post-unreserve traffic for the plan flows through the shared
        // queue: nothing is lost.
        let h2 = sched.submit_batch(3, plan, records(5));
        assert_eq!(h2.wait().unwrap().len(), 5);
        sched.shutdown();
    }

    #[test]
    fn reserve_unreserve_churn_does_not_leak_threads() {
        let plan = sa_plan(43);
        let sched = Scheduler::new(1, true, 4, true, None);
        for round in 0..20u32 {
            sched.reserve(round);
            let h = sched.submit_batch(round, Arc::clone(&plan), records(3));
            assert_eq!(h.wait().unwrap().len(), 3);
            assert!(sched.unreserve(round));
        }
        assert_eq!(sched.reserved_count(), 0);
        sched.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let plan = sa_plan(13);
        let sched = Scheduler::new(2, true, 4, true, None);
        let h = sched.submit_batch(0, plan, records(3));
        let _ = h.wait().unwrap();
        drop(sched);
    }

    fn plane(sharded: bool, n_executors: usize, chunk: usize) -> Scheduler {
        Scheduler::with_config(SchedulerConfig {
            n_executors,
            pooling: true,
            chunk_size: chunk,
            columnar: true,
            cache: None,
            sharded,
            telemetry: None,
        })
    }

    #[test]
    fn sharded_and_shared_planes_agree_bitwise() {
        // The ablation contract: `sharded` moves work and buffers around,
        // it never touches math. Single-executor schedulers make the pool
        // traffic deterministic too, so hits/misses must match exactly.
        let plan = sa_plan(51);
        let recs = records(37);
        let sharded = plane(true, 1, 8);
        let shared = plane(false, 1, 8);
        for pass in 0..2 {
            let a = sharded
                .submit_batch(0, Arc::clone(&plan), recs.clone())
                .wait()
                .unwrap();
            let b = shared
                .submit_batch(0, Arc::clone(&plan), recs.clone())
                .wait()
                .unwrap();
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "pass {pass} record {i}");
            }
            assert_eq!(
                sharded.pool_stats(),
                shared.pool_stats(),
                "pass {pass}: pool hit/miss counts diverge between planes"
            );
        }
        sharded.shutdown();
        shared.shutdown();
    }

    #[test]
    fn dry_workers_steal_queued_chunks() {
        // Force the steal path: one worker gets a heavy chunk with a tiny
        // chunk queued behind it; the other worker runs dry in microseconds
        // and must steal the tiny chunk to make progress. Round-robin
        // routing makes the landing deterministic (submission order 0, 1,
        // 2 lands on workers 0, 1, 0); only the steal timing is racy, so
        // retry a few rounds before declaring the path dead.
        let plan = sa_plan(53);
        let heavy: Vec<Record> = (0..3000)
            .map(|i| Record::Text(format!("5,review {i} with several tokens to chew on")))
            .collect();
        let mut stole = false;
        for _round in 0..20 {
            let sched = plane(true, 2, 4096);
            let ha = sched.submit_batch(0, Arc::clone(&plan), heavy.clone());
            let hd = sched.submit_batch(0, Arc::clone(&plan), records(2));
            let hc = sched.submit_batch(0, Arc::clone(&plan), records(3));
            assert_eq!(ha.wait().unwrap().len(), 3000);
            assert_eq!(hd.wait().unwrap().len(), 2);
            let scores = hc.wait().unwrap();
            assert_eq!(scores.len(), 3);
            // Stolen or not, the chunk's math is the worker-independent
            // reference result.
            let pool = Arc::new(VectorPool::new());
            let mut ctx = ExecCtx::new(pool);
            let mut slots: Vec<Vector> = plan
                .slot_types()
                .iter()
                .map(|&t| Vector::with_type(t))
                .collect();
            for (i, r) in records(3).iter().enumerate() {
                let expect = plan.execute(r.as_source(), &mut slots, &mut ctx).unwrap();
                assert_eq!(scores[i].to_bits(), expect.to_bits(), "record {i}");
            }
            let steals = sched.stats().steals.load(Ordering::Relaxed);
            sched.shutdown();
            if steals > 0 {
                stole = true;
                break;
            }
        }
        assert!(stole, "no round ever exercised the steal path");
    }

    #[test]
    fn unreserve_vs_steal_stress_loses_nothing() {
        // Satellite: reservation churn racing submissions on the sharded
        // plane. Chunks routed to a reserved queue that closes mid-flight
        // fall back to the general plane; every record must score exactly
        // once — `records_done` catches both loss (short) and
        // double-execution (long).
        const BATCHES: usize = 120;
        const PER_BATCH: usize = 7;
        let plan = sa_plan(59);
        let sched = Arc::new(plane(true, 4, 4));
        let (tx, rx) = std::sync::mpsc::channel::<Result<Vec<f32>>>();
        let churn = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    sched.reserve(9);
                    std::thread::yield_now();
                    sched.unreserve(9);
                }
            })
        };
        let submit = {
            let sched = Arc::clone(&sched);
            let plan = Arc::clone(&plan);
            let tx = tx.clone();
            std::thread::spawn(move || {
                for _ in 0..BATCHES {
                    let tx = tx.clone();
                    sched
                        .submit_batch(9, Arc::clone(&plan), records(PER_BATCH))
                        .on_complete(move |r| tx.send(r).unwrap());
                }
            })
        };
        drop(tx);
        for i in 0..BATCHES {
            let scores = rx
                .recv_timeout(std::time::Duration::from_secs(30))
                .unwrap_or_else(|_| panic!("batch {i} never completed"))
                .unwrap();
            assert_eq!(scores.len(), PER_BATCH);
        }
        submit.join().unwrap();
        churn.join().unwrap();
        assert_eq!(
            sched.stats().records_done.load(Ordering::Relaxed),
            (BATCHES * PER_BATCH) as u64,
            "records lost or double-executed under reservation churn"
        );
    }
}
