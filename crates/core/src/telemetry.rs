//! Sharded, lock-free runtime telemetry.
//!
//! The observability counterpart of the PR 8 execution plane: every hot-path
//! recorder is split into cache-line-padded shards, each writer thread picks
//! one shard on first use and keeps it, and a recording is a couple of
//! uncontended relaxed atomics — no locks, no allocation, no false sharing.
//! Snapshots merge across shards (histogram merge is exact: buckets are
//! plain sums), so one [`MetricsRegistry::snapshot`] folds the whole request
//! lifecycle — FrontEnd decode, per-plan queue wait (low/high), per-stage
//! execution time and rows, cache probe hit/miss latency, pool lease/miss,
//! steals, completion-to-flush — into a single [`MetricsSnapshot`] that also
//! unifies the pre-existing stat structs (`SchedStats`, `LifecycleStats`,
//! pool and Object Store counters).
//!
//! Latency histograms are log2-bucketed: bucket 0 holds the value 0 and
//! bucket `b` holds `[2^(b-1), 2^b)`, so power-of-two boundaries are exact
//! and merge is loss-free. Counters are wrapping-add (`AtomicU64::fetch_add`
//! wraps by definition), so overflow can never panic a recorder.
//!
//! Everything here is behind `RuntimeConfig::telemetry` (default on). The
//! off leg is the overhead ablation control: no recorder exists, so the
//! serving path performs zero clock reads and zero extra atomics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use pretzel_data::serde_bin::wire::{put_u32, put_u64};
use pretzel_data::serde_bin::Cursor;
use pretzel_data::{DataError, Result};

use crate::object_store::MatCacheStats;

/// Log2 histogram bucket count: bucket 0 is the value 0, bucket `b` covers
/// `[2^(b-1), 2^b)`, and the top bucket absorbs everything from `2^62` up.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for `v`: 0 for 0, otherwise `floor(log2 v) + 1`, clamped to
/// the top bucket. Exact at powers of two: `2^k` is the smallest value in
/// its bucket.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Smallest value bucket `b` can hold.
#[inline]
pub fn bucket_lower(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Largest value bucket `b` can hold.
#[inline]
pub fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A plain (single-writer) log2 latency histogram; the merge target for
/// [`AtomicHistogram`] shards and the value type inside snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] = self.buckets[bucket_of(v)].wrapping_add(1);
        self.sum = self.sum.wrapping_add(v);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &c| acc.wrapping_add(c))
    }

    /// Exact merge: bucket-wise wrapping sums. `merge(a, b)` is
    /// indistinguishable from having recorded every sample into one
    /// histogram sequentially.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 < q <= 1.0`); 0 when empty. Log2 buckets bound the estimate to
    /// within 2x of the true sample, which is what latency percentiles need.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= target {
                return bucket_upper(b);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Upper bound of the highest non-empty bucket; 0 when empty.
    pub fn max_observed(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c != 0)
            .map(bucket_upper)
            .unwrap_or(0)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        let used = self
            .buckets
            .iter()
            .rposition(|&c| c != 0)
            .map(|b| b + 1)
            .unwrap_or(0);
        put_u32(out, used as u32);
        for &c in &self.buckets[..used] {
            put_u64(out, c);
        }
        put_u64(out, self.sum);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let used = cur.u32()? as usize;
        if used > HIST_BUCKETS {
            return Err(DataError::Runtime(format!(
                "histogram bucket count {used} exceeds {HIST_BUCKETS}"
            )));
        }
        let mut h = Histogram::new();
        for b in h.buckets.iter_mut().take(used) {
            *b = cur.u64()?;
        }
        h.sum = cur.u64()?;
        Ok(h)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            self.count(),
            self.sum,
            self.mean(),
            self.p50(),
            self.p99(),
            self.max_observed()
        )
    }
}

/// The concurrent histogram one shard owns. Recording is three relaxed
/// wrapping `fetch_add`s; reads happen only at snapshot time.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Folds this shard into `into` (exact: bucket-wise sums).
    fn merge_into(&self, into: &mut Histogram) {
        for (dst, src) in into.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = dst.wrapping_add(src.load(Ordering::Relaxed));
        }
        into.sum = into.sum.wrapping_add(self.sum.load(Ordering::Relaxed));
    }

    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        self.merge_into(&mut h);
        h
    }
}

/// Pads a shard to its own cache line so two writer threads never share one.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CacheAligned<T>(T);

/// Stable per-thread shard index: assigned round-robin on a thread's first
/// recording and cached in a thread-local, so an executor writes the same
/// shard for its whole life. With `threads <= shards` every writer owns its
/// shard outright; beyond that, collisions stay correct (atomics).
#[inline]
fn shard_index(n_shards: usize) -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut i = c.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(i);
        }
        i & (n_shards - 1)
    })
}

/// How many shards each recorder splits into: enough for one per hardware
/// thread (power of two for mask indexing), capped so per-plan recorders
/// stay small.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .next_power_of_two()
        .clamp(1, 16)
}

/// One shard of a per-plan recorder.
#[derive(Debug, Default)]
struct PlanShard {
    batch_requests: AtomicU64,
    rr_requests: AtomicU64,
    records: AtomicU64,
    stage_rows: AtomicU64,
    queue_wait_low_ns: AtomicHistogram,
    queue_wait_high_ns: AtomicHistogram,
    stage_exec_ns: AtomicHistogram,
    faults: AtomicU64,
    fault_ns: AtomicHistogram,
}

/// Per-plan metric set: sharded per writer thread, resolved once per
/// submission (the scheduler clones the `Arc` into each chunk task), so the
/// steady-state cost per event is the shard-local atomics and nothing else.
#[derive(Debug)]
pub struct PlanRecorder {
    shards: Box<[CacheAligned<PlanShard>]>,
}

impl PlanRecorder {
    fn new(n_shards: usize) -> Self {
        PlanRecorder {
            shards: (0..n_shards).map(|_| CacheAligned::default()).collect(),
        }
    }

    #[inline]
    fn shard(&self) -> &PlanShard {
        &self.shards[shard_index(self.shards.len())].0
    }

    #[inline]
    pub fn note_batch_request(&self) {
        self.shard().batch_requests.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn note_rr_request(&self) {
        self.shard().rr_requests.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_records(&self, n: u64) {
        self.shard().records.fetch_add(n, Ordering::Relaxed);
    }

    /// Queue-wait sample for one chunk-stage event, split by the priority
    /// class it waited in (`high` = a started pipeline re-entering).
    #[inline]
    pub fn record_queue_wait(&self, high: bool, ns: u64) {
        let s = self.shard();
        if high {
            s.queue_wait_high_ns.record(ns);
        } else {
            s.queue_wait_low_ns.record(ns);
        }
    }

    /// Execution-time + row-count sample for one chunk-stage event.
    #[inline]
    pub fn record_stage(&self, ns: u64, rows: u64) {
        let s = self.shard();
        s.stage_exec_ns.record(ns);
        s.stage_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// One contained execution fault: `ns` is the time the faulting
    /// stage/request burned before it panicked (the wasted-work signal
    /// that pairs with the fault rate).
    #[inline]
    pub fn record_fault(&self, ns: u64) {
        let s = self.shard();
        s.faults.fetch_add(1, Ordering::Relaxed);
        s.fault_ns.record(ns);
    }

    fn snapshot(&self, plan: u32) -> PlanMetricsSnapshot {
        let mut snap = PlanMetricsSnapshot {
            plan,
            ..Default::default()
        };
        for s in self.shards.iter() {
            let s = &s.0;
            snap.batch_requests = snap
                .batch_requests
                .wrapping_add(s.batch_requests.load(Ordering::Relaxed));
            snap.rr_requests = snap
                .rr_requests
                .wrapping_add(s.rr_requests.load(Ordering::Relaxed));
            snap.records = snap.records.wrapping_add(s.records.load(Ordering::Relaxed));
            snap.stage_rows = snap
                .stage_rows
                .wrapping_add(s.stage_rows.load(Ordering::Relaxed));
            snap.faults = snap.faults.wrapping_add(s.faults.load(Ordering::Relaxed));
            s.queue_wait_low_ns.merge_into(&mut snap.queue_wait_low_ns);
            s.queue_wait_high_ns
                .merge_into(&mut snap.queue_wait_high_ns);
            s.stage_exec_ns.merge_into(&mut snap.stage_exec_ns);
            s.fault_ns.merge_into(&mut snap.fault_ns);
        }
        snap
    }
}

/// One shard of the registry-global (not per-plan) recorders.
#[derive(Debug, Default)]
struct GlobalShard {
    decode_ns: AtomicHistogram,
    completion_flush_ns: AtomicHistogram,
    cache_probe_hit_ns: AtomicHistogram,
    cache_probe_miss_ns: AtomicHistogram,
    delayed_drops: AtomicU64,
}

/// The runtime's metric plane: global sharded recorders plus a read-mostly
/// map of per-plan recorders (write-locked only on a plan's first request).
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Box<[CacheAligned<GlobalShard>]>,
    plans: RwLock<HashMap<u32, Arc<PlanRecorder>>>,
    n_shards: usize,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        let n_shards = default_shards();
        MetricsRegistry {
            shards: (0..n_shards).map(|_| CacheAligned::default()).collect(),
            plans: RwLock::new(HashMap::new()),
            n_shards,
        }
    }

    #[inline]
    fn shard(&self) -> &GlobalShard {
        &self.shards[shard_index(self.shards.len())].0
    }

    /// The recorder for `plan` (created on first use). Steady state is one
    /// read-lock + hash lookup, amortized over a whole submission.
    pub fn plan_recorder(&self, plan: u32) -> Arc<PlanRecorder> {
        if let Some(rec) = self.plans.read().get(&plan) {
            return Arc::clone(rec);
        }
        let mut w = self.plans.write();
        Arc::clone(
            w.entry(plan)
                .or_insert_with(|| Arc::new(PlanRecorder::new(self.n_shards))),
        )
    }

    /// Drops a plan's recorder (undeploy without redeploy).
    pub fn forget_plan(&self, plan: u32) {
        self.plans.write().remove(&plan);
    }

    /// FrontEnd frame-decode latency (wire bytes to engine-ready input).
    #[inline]
    pub fn record_decode(&self, ns: u64) {
        self.shard().decode_ns.record(ns);
    }

    /// Batch-completion to response-flush latency (reactor plane).
    #[inline]
    pub fn record_completion_flush(&self, ns: u64) {
        self.shard().completion_flush_ns.record(ns);
    }

    /// Materialization-cache probe latency, split by outcome.
    #[inline]
    pub fn record_cache_probe(&self, hit: bool, ns: u64) {
        let s = self.shard();
        if hit {
            s.cache_probe_hit_ns.record(ns);
        } else {
            s.cache_probe_miss_ns.record(ns);
        }
    }

    /// Delayed-batch results dropped because their client disconnected.
    #[inline]
    pub fn note_delayed_drops(&self, n: u64) {
        self.shard().delayed_drops.fetch_add(n, Ordering::Relaxed);
    }

    /// Merges every shard into the telemetry-owned part of a snapshot; the
    /// runtime then folds in the stat structs it owns (scheduler, pools,
    /// lifecycle, store, cache) and the FrontEnd overlays its own.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            telemetry: true,
            ..Default::default()
        };
        for s in self.shards.iter() {
            let s = &s.0;
            s.decode_ns.merge_into(&mut snap.decode_ns);
            s.completion_flush_ns
                .merge_into(&mut snap.completion_flush_ns);
            s.cache_probe_hit_ns
                .merge_into(&mut snap.cache_probe_hit_ns);
            s.cache_probe_miss_ns
                .merge_into(&mut snap.cache_probe_miss_ns);
            snap.delayed_drops = snap
                .delayed_drops
                .wrapping_add(s.delayed_drops.load(Ordering::Relaxed));
        }
        let plans = self.plans.read();
        snap.plans = plans.iter().map(|(&id, rec)| rec.snapshot(id)).collect();
        snap.plans.sort_by_key(|p| p.plan);
        snap
    }
}

/// Named `(hits, misses)` pool counters — the replacement for the old bare
/// `(u64, u64)` tuples on `Scheduler::pool_stats` and
/// `Runtime::scheduler_pool_stats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolCounters {
    pub hits: u64,
    pub misses: u64,
}

/// Scheduler counters (mirrors `SchedStats`).
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedulerSnapshot {
    pub stage_events: u64,
    pub records_done: u64,
    pub steals: u64,
}

/// Lease/miss counters for each pool family.
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolsSnapshot {
    /// Aggregated executor pools (shared + reserved).
    pub executor: PoolCounters,
    /// The request-response engine's registration-warmed pool.
    pub request_response: PoolCounters,
    /// The FrontEnd's wire-ingest assembly pool (zero outside a FrontEnd).
    pub ingest: PoolCounters,
}

/// Lifecycle counters (mirrors `LifecycleStats`).
#[derive(Debug, Default, Clone, Copy)]
pub struct LifecycleSnapshot {
    pub deploys: u64,
    pub undeploys: u64,
    pub swaps: u64,
    pub stages_reused: u64,
}

/// One plan's Object Store access-recency entry — the hotness signal the
/// million-model tiering policy consumes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanAccessSnapshot {
    pub plan: u32,
    /// Requests admitted for this plan since deploy.
    pub accesses: u64,
    /// Value of the store's global access clock at this plan's most recent
    /// request; compare across plans for recency (larger = hotter).
    pub last_access_epoch: u64,
}

/// Object Store counters plus per-plan access recency.
#[derive(Debug, Default, Clone)]
pub struct StoreSnapshot {
    pub unique_objects: u64,
    pub unique_bytes: u64,
    pub reused: u64,
    pub bytes_saved: u64,
    pub released: u64,
    pub released_bytes: u64,
    pub plan_access: Vec<PlanAccessSnapshot>,
}

/// FrontEnd connection counters (present only in STATS served over a
/// FrontEnd; a bare `Runtime::metrics` has no FrontEnd to read).
#[derive(Debug, Default, Clone, Copy)]
pub struct FrontEndSnapshot {
    pub open_connections: u64,
    pub accepted: u64,
    pub protocol_errors: u64,
}

/// One plan's merged request-lifecycle metrics.
#[derive(Debug, Default, Clone)]
pub struct PlanMetricsSnapshot {
    pub plan: u32,
    /// Batch-engine submissions.
    pub batch_requests: u64,
    /// Request-response (inline) predicts.
    pub rr_requests: u64,
    /// Records fully scored by the batch engine.
    pub records: u64,
    /// Rows pushed through stage executions (records x stages).
    pub stage_rows: u64,
    /// Queue wait of chunk-stage events that entered at low priority
    /// (new pipelines).
    pub queue_wait_low_ns: Histogram,
    /// Queue wait of re-entering (started) chunk-stage events.
    pub queue_wait_high_ns: Histogram,
    /// Per-`PhysicalStage` execution time, one sample per chunk-stage event.
    pub stage_exec_ns: Histogram,
    /// Contained execution faults (operator panics) attributed to this
    /// plan, across both engines.
    pub faults: u64,
    /// Time each faulting stage/request burned before it panicked.
    pub fault_ns: Histogram,
    /// True when the fault policy has quarantined this plan (stamped at
    /// snapshot time from the plan's gate, not a telemetry counter).
    pub quarantined: bool,
}

impl PlanMetricsSnapshot {
    /// Total queue-wait samples across both priority classes; equals the
    /// stage-execution sample count (every executed event waited once).
    pub fn queue_wait_events(&self) -> u64 {
        self.queue_wait_low_ns
            .count()
            .wrapping_add(self.queue_wait_high_ns.count())
    }
}

/// Everything the runtime knows about itself, in one merge: telemetry
/// histograms (when enabled) plus the always-on stat structs.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// False when `RuntimeConfig::telemetry` is off: counters below are
    /// still live, histograms and per-plan sections are empty.
    pub telemetry: bool,
    pub scheduler: SchedulerSnapshot,
    pub pools: PoolsSnapshot,
    pub lifecycle: LifecycleSnapshot,
    pub store: StoreSnapshot,
    /// Materialization-cache counters, when a cache is configured.
    pub mat_cache: Option<MatCacheStats>,
    pub frontend: Option<FrontEndSnapshot>,
    pub delayed_drops: u64,
    pub decode_ns: Histogram,
    pub completion_flush_ns: Histogram,
    pub cache_probe_hit_ns: Histogram,
    pub cache_probe_miss_ns: Histogram,
    pub plans: Vec<PlanMetricsSnapshot>,
}

impl MetricsSnapshot {
    /// The per-plan section for `plan`, if any requests were recorded.
    pub fn plan(&self, plan: u32) -> Option<&PlanMetricsSnapshot> {
        self.plans.iter().find(|p| p.plan == plan)
    }

    /// The store's access-recency entry for `plan`.
    pub fn plan_access(&self, plan: u32) -> Option<&PlanAccessSnapshot> {
        self.store.plan_access.iter().find(|p| p.plan == plan)
    }

    /// Binary wire encoding (the STATS admin payload).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.telemetry as u8);
        put_u64(out, self.scheduler.stage_events);
        put_u64(out, self.scheduler.records_done);
        put_u64(out, self.scheduler.steals);
        for p in [
            self.pools.executor,
            self.pools.request_response,
            self.pools.ingest,
        ] {
            put_u64(out, p.hits);
            put_u64(out, p.misses);
        }
        put_u64(out, self.lifecycle.deploys);
        put_u64(out, self.lifecycle.undeploys);
        put_u64(out, self.lifecycle.swaps);
        put_u64(out, self.lifecycle.stages_reused);
        put_u64(out, self.store.unique_objects);
        put_u64(out, self.store.unique_bytes);
        put_u64(out, self.store.reused);
        put_u64(out, self.store.bytes_saved);
        put_u64(out, self.store.released);
        put_u64(out, self.store.released_bytes);
        put_u32(out, self.store.plan_access.len() as u32);
        for a in &self.store.plan_access {
            put_u32(out, a.plan);
            put_u64(out, a.accesses);
            put_u64(out, a.last_access_epoch);
        }
        match &self.mat_cache {
            Some(c) => {
                out.push(1);
                put_u64(out, c.hits);
                put_u64(out, c.misses);
                put_u64(out, c.evictions);
            }
            None => out.push(0),
        }
        match &self.frontend {
            Some(f) => {
                out.push(1);
                put_u64(out, f.open_connections);
                put_u64(out, f.accepted);
                put_u64(out, f.protocol_errors);
            }
            None => out.push(0),
        }
        put_u64(out, self.delayed_drops);
        self.decode_ns.encode(out);
        self.completion_flush_ns.encode(out);
        self.cache_probe_hit_ns.encode(out);
        self.cache_probe_miss_ns.encode(out);
        put_u32(out, self.plans.len() as u32);
        for p in &self.plans {
            put_u32(out, p.plan);
            put_u64(out, p.batch_requests);
            put_u64(out, p.rr_requests);
            put_u64(out, p.records);
            put_u64(out, p.stage_rows);
            put_u64(out, p.faults);
            out.push(p.quarantined as u8);
            p.queue_wait_low_ns.encode(out);
            p.queue_wait_high_ns.encode(out);
            p.stage_exec_ns.encode(out);
            p.fault_ns.encode(out);
        }
    }

    fn decode_bool(cur: &mut Cursor<'_>) -> Result<bool> {
        Ok(cur.u8()? != 0)
    }

    /// Decodes a STATS payload (the client side of [`Self::encode`]).
    pub fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let telemetry = Self::decode_bool(cur)?;
        let scheduler = SchedulerSnapshot {
            stage_events: cur.u64()?,
            records_done: cur.u64()?,
            steals: cur.u64()?,
        };
        let mut pool = || -> Result<PoolCounters> {
            Ok(PoolCounters {
                hits: cur.u64()?,
                misses: cur.u64()?,
            })
        };
        let pools = PoolsSnapshot {
            executor: pool()?,
            request_response: pool()?,
            ingest: pool()?,
        };
        let lifecycle = LifecycleSnapshot {
            deploys: cur.u64()?,
            undeploys: cur.u64()?,
            swaps: cur.u64()?,
            stages_reused: cur.u64()?,
        };
        let mut store = StoreSnapshot {
            unique_objects: cur.u64()?,
            unique_bytes: cur.u64()?,
            reused: cur.u64()?,
            bytes_saved: cur.u64()?,
            released: cur.u64()?,
            released_bytes: cur.u64()?,
            plan_access: Vec::new(),
        };
        let n_access = cur.u32()? as usize;
        store.plan_access.reserve(n_access.min(4096));
        for _ in 0..n_access {
            store.plan_access.push(PlanAccessSnapshot {
                plan: cur.u32()?,
                accesses: cur.u64()?,
                last_access_epoch: cur.u64()?,
            });
        }
        let mat_cache = if Self::decode_bool(cur)? {
            Some(MatCacheStats {
                hits: cur.u64()?,
                misses: cur.u64()?,
                evictions: cur.u64()?,
            })
        } else {
            None
        };
        let frontend = if Self::decode_bool(cur)? {
            Some(FrontEndSnapshot {
                open_connections: cur.u64()?,
                accepted: cur.u64()?,
                protocol_errors: cur.u64()?,
            })
        } else {
            None
        };
        let delayed_drops = cur.u64()?;
        let decode_ns = Histogram::decode(cur)?;
        let completion_flush_ns = Histogram::decode(cur)?;
        let cache_probe_hit_ns = Histogram::decode(cur)?;
        let cache_probe_miss_ns = Histogram::decode(cur)?;
        let n_plans = cur.u32()? as usize;
        let mut plans = Vec::with_capacity(n_plans.min(4096));
        for _ in 0..n_plans {
            plans.push(PlanMetricsSnapshot {
                plan: cur.u32()?,
                batch_requests: cur.u64()?,
                rr_requests: cur.u64()?,
                records: cur.u64()?,
                stage_rows: cur.u64()?,
                faults: cur.u64()?,
                quarantined: Self::decode_bool(cur)?,
                queue_wait_low_ns: Histogram::decode(cur)?,
                queue_wait_high_ns: Histogram::decode(cur)?,
                stage_exec_ns: Histogram::decode(cur)?,
                fault_ns: Histogram::decode(cur)?,
            });
        }
        Ok(MetricsSnapshot {
            telemetry,
            scheduler,
            pools,
            lifecycle,
            store,
            mat_cache,
            frontend,
            delayed_drops,
            decode_ns,
            completion_flush_ns,
            cache_probe_hit_ns,
            cache_probe_miss_ns,
            plans,
        })
    }

    /// JSON rendering (hand-rolled; the repo carries no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"telemetry\":{},\"scheduler\":{{\"stage_events\":{},\"records_done\":{},\"steals\":{}}}",
            self.telemetry,
            self.scheduler.stage_events,
            self.scheduler.records_done,
            self.scheduler.steals
        ));
        let pool = |p: &PoolCounters| format!("{{\"hits\":{},\"misses\":{}}}", p.hits, p.misses);
        s.push_str(&format!(
            ",\"pools\":{{\"executor\":{},\"request_response\":{},\"ingest\":{}}}",
            pool(&self.pools.executor),
            pool(&self.pools.request_response),
            pool(&self.pools.ingest)
        ));
        s.push_str(&format!(
            ",\"lifecycle\":{{\"deploys\":{},\"undeploys\":{},\"swaps\":{},\"stages_reused\":{}}}",
            self.lifecycle.deploys,
            self.lifecycle.undeploys,
            self.lifecycle.swaps,
            self.lifecycle.stages_reused
        ));
        s.push_str(&format!(
            ",\"store\":{{\"unique_objects\":{},\"unique_bytes\":{},\"reused\":{},\"bytes_saved\":{},\"released\":{},\"released_bytes\":{},\"plan_access\":[",
            self.store.unique_objects,
            self.store.unique_bytes,
            self.store.reused,
            self.store.bytes_saved,
            self.store.released,
            self.store.released_bytes
        ));
        for (i, a) in self.store.plan_access.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"plan\":{},\"accesses\":{},\"last_access_epoch\":{}}}",
                a.plan, a.accesses, a.last_access_epoch
            ));
        }
        s.push_str("]}");
        match &self.mat_cache {
            Some(c) => s.push_str(&format!(
                ",\"mat_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
                c.hits, c.misses, c.evictions
            )),
            None => s.push_str(",\"mat_cache\":null"),
        }
        match &self.frontend {
            Some(f) => s.push_str(&format!(
                ",\"frontend\":{{\"open_connections\":{},\"accepted\":{},\"protocol_errors\":{}}}",
                f.open_connections, f.accepted, f.protocol_errors
            )),
            None => s.push_str(",\"frontend\":null"),
        }
        s.push_str(&format!(
            ",\"delayed_drops\":{},\"decode_ns\":{},\"completion_flush_ns\":{},\"cache_probe_hit_ns\":{},\"cache_probe_miss_ns\":{},\"plans\":[",
            self.delayed_drops,
            self.decode_ns.to_json(),
            self.completion_flush_ns.to_json(),
            self.cache_probe_hit_ns.to_json(),
            self.cache_probe_miss_ns.to_json()
        ));
        for (i, p) in self.plans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"plan\":{},\"batch_requests\":{},\"rr_requests\":{},\"records\":{},\"stage_rows\":{},\"faults\":{},\"quarantined\":{},\"queue_wait_low_ns\":{},\"queue_wait_high_ns\":{},\"stage_exec_ns\":{},\"fault_ns\":{}}}",
                p.plan,
                p.batch_requests,
                p.rr_requests,
                p.records,
                p.stage_rows,
                p.faults,
                p.quarantined,
                p.queue_wait_low_ns.to_json(),
                p.queue_wait_high_ns.to_json(),
                p.stage_exec_ns.to_json(),
                p.fault_ns.to_json()
            ));
        }
        s.push_str("]}");
        s
    }

    /// Compact fixed-width text rendering (`pretzel-cli stats`-style).
    pub fn render_text(&self) -> String {
        fn hist_line(name: &str, h: &Histogram) -> String {
            format!(
                "  {name:<22} n={:<9} p50={:<9} p99={:<9} max={}\n",
                h.count(),
                h.p50(),
                h.p99(),
                h.max_observed()
            )
        }
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "telemetry: {}\n",
            if self.telemetry { "on" } else { "off" }
        ));
        s.push_str(&format!(
            "scheduler: stage_events={} records_done={} steals={}\n",
            self.scheduler.stage_events, self.scheduler.records_done, self.scheduler.steals
        ));
        s.push_str(&format!(
            "pools: exec {}h/{}m  rr {}h/{}m  ingest {}h/{}m\n",
            self.pools.executor.hits,
            self.pools.executor.misses,
            self.pools.request_response.hits,
            self.pools.request_response.misses,
            self.pools.ingest.hits,
            self.pools.ingest.misses
        ));
        s.push_str(&format!(
            "lifecycle: deploys={} undeploys={} swaps={} stages_reused={}\n",
            self.lifecycle.deploys,
            self.lifecycle.undeploys,
            self.lifecycle.swaps,
            self.lifecycle.stages_reused
        ));
        s.push_str(&format!(
            "store: objects={} bytes={} reused={} saved={} released={}/{}B\n",
            self.store.unique_objects,
            self.store.unique_bytes,
            self.store.reused,
            self.store.bytes_saved,
            self.store.released,
            self.store.released_bytes
        ));
        if let Some(c) = &self.mat_cache {
            s.push_str(&format!(
                "mat_cache: hits={} misses={} evictions={}\n",
                c.hits, c.misses, c.evictions
            ));
        }
        if let Some(f) = &self.frontend {
            s.push_str(&format!(
                "frontend: open={} accepted={} protocol_errors={} delayed_drops={}\n",
                f.open_connections, f.accepted, f.protocol_errors, self.delayed_drops
            ));
        }
        s.push_str(&hist_line("decode_ns", &self.decode_ns));
        s.push_str(&hist_line("completion_flush_ns", &self.completion_flush_ns));
        s.push_str(&hist_line("cache_probe_hit_ns", &self.cache_probe_hit_ns));
        s.push_str(&hist_line("cache_probe_miss_ns", &self.cache_probe_miss_ns));
        for p in &self.plans {
            let access = self.plan_access(p.plan);
            s.push_str(&format!(
                "plan {}: batch_req={} rr_req={} records={} stage_rows={} faults={}{} accesses={} last_epoch={}\n",
                p.plan,
                p.batch_requests,
                p.rr_requests,
                p.records,
                p.stage_rows,
                p.faults,
                if p.quarantined { " QUARANTINED" } else { "" },
                access.map_or(0, |a| a.accesses),
                access.map_or(0, |a| a.last_access_epoch)
            ));
            s.push_str(&hist_line("queue_wait_low_ns", &p.queue_wait_low_ns));
            s.push_str(&hist_line("queue_wait_high_ns", &p.queue_wait_high_ns));
            s.push_str(&hist_line("stage_exec_ns", &p.stage_exec_ns));
            if p.faults > 0 {
                s.push_str(&hist_line("fault_ns", &p.fault_ns));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for b in 0..HIST_BUCKETS {
            assert!(bucket_lower(b) <= bucket_upper(b));
            assert_eq!(bucket_of(bucket_lower(b)), b);
            assert_eq!(bucket_of(bucket_upper(b)), b);
        }
    }

    #[test]
    fn quantiles_bound_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!(h.p50() >= 3);
        assert!(h.p99() >= 100_000);
        assert!(h.max_observed() >= 100_000);
    }

    #[test]
    fn snapshot_roundtrips_through_wire_encoding() {
        let reg = MetricsRegistry::new();
        reg.record_decode(420);
        reg.record_cache_probe(true, 64);
        reg.note_delayed_drops(2);
        let rec = reg.plan_recorder(7);
        rec.note_batch_request();
        rec.record_queue_wait(false, 1_000);
        rec.record_stage(8_000, 16);
        rec.record_fault(2_500);
        let mut snap = reg.snapshot();
        snap.plans[0].quarantined = true;
        snap.mat_cache = Some(MatCacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
        });
        snap.store.plan_access.push(PlanAccessSnapshot {
            plan: 7,
            accesses: 1,
            last_access_epoch: 1,
        });
        let mut buf = Vec::new();
        snap.encode(&mut buf);
        let back = MetricsSnapshot::decode(&mut Cursor::new(&buf)).unwrap();
        assert!(back.telemetry);
        assert_eq!(back.delayed_drops, 2);
        assert_eq!(back.decode_ns, snap.decode_ns);
        assert_eq!(back.plans.len(), 1);
        assert_eq!(back.plans[0].batch_requests, 1);
        assert_eq!(back.plans[0].stage_rows, 16);
        assert_eq!(back.plans[0].stage_exec_ns, snap.plans[0].stage_exec_ns);
        assert_eq!(back.plans[0].faults, 1);
        assert!(back.plans[0].quarantined);
        assert_eq!(back.plans[0].fault_ns, snap.plans[0].fault_ns);
        assert_eq!(back.plan_access(7).unwrap().accesses, 1);
        assert!(back.to_json().contains("\"plan\":7"));
        assert!(back.to_json().contains("\"faults\":1"));
        assert!(back.render_text().contains("plan 7:"));
        assert!(back.render_text().contains("QUARANTINED"));
    }
}
