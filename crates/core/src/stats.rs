//! Training statistics attached to Flour transformations.
//!
//! "Each Flour transformation accepts as input an optional set of statistics
//! gathered from training. These statistics are used by the compiler to
//! generate physical plans more efficiently tailored to the model
//! characteristics. Example statistics are max vector size (to define the
//! minimum size of vectors to fetch from the pool at prediction time),
//! dense/sparse representations, etc." (paper §4.1.1).

/// Per-transformation statistics gathered at training time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// Maximum number of *stored* elements observed in the output (tokens,
    /// sparse nnz, text bytes). Sizes pooled buffers.
    pub max_stored: usize,
    /// Fraction of non-zero entries in the output (1.0 = fully dense).
    pub density: f32,
}

impl Default for NodeStats {
    fn default() -> Self {
        // Conservative defaults when no statistics were gathered: assume a
        // moderately sized, sparse output.
        NodeStats {
            max_stored: 256,
            density: 0.05,
        }
    }
}

impl NodeStats {
    /// Creates a statistics record.
    pub fn new(max_stored: usize, density: f32) -> Self {
        NodeStats {
            max_stored,
            density: density.clamp(0.0, 1.0),
        }
    }

    /// True if the output should be treated as dense by physical selection.
    ///
    /// The 0.5 threshold mirrors the usual row-store heuristic: above it,
    /// sparse bookkeeping costs more than it saves.
    pub fn is_dense(&self) -> bool {
        self.density >= 0.5
    }

    /// Merges statistics of fused transformations (max of sizes, max of
    /// densities — conservative for buffer sizing).
    pub fn merge(&self, other: &NodeStats) -> NodeStats {
        NodeStats {
            max_stored: self.max_stored.max(other.max_stored),
            density: self.density.max(other.density),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_clamped() {
        assert_eq!(NodeStats::new(10, 7.0).density, 1.0);
        assert_eq!(NodeStats::new(10, -1.0).density, 0.0);
    }

    #[test]
    fn dense_threshold() {
        assert!(NodeStats::new(1, 0.5).is_dense());
        assert!(!NodeStats::new(1, 0.49).is_dense());
    }

    #[test]
    fn merge_is_conservative() {
        let a = NodeStats::new(100, 0.1);
        let b = NodeStats::new(50, 0.9);
        let m = a.merge(&b);
        assert_eq!(m.max_stored, 100);
        assert_eq!(m.density, 0.9);
    }

    #[test]
    fn default_is_sparse_moderate() {
        let d = NodeStats::default();
        assert!(!d.is_dense());
        assert!(d.max_stored > 0);
    }
}
