//! Logical model plans: stages, steps and buffer wiring.
//!
//! Oven's output is a DAG of *logical stages* (paper §4.1.2). Each stage is
//! a short program of [`Step`]s over two buffer spaces:
//!
//! * **slots** — the plan-level working set, leased from the vector pool
//!   once per pipeline execution (paper §4.2.2: "vectors are requested per
//!   pipeline, not per stage"). Stage boundaries and the final prediction
//!   live in slots.
//! * **scratch** — stage-local intermediates that never escape the stage.
//!   Fusion exists precisely to keep data here, in cache, instead of in
//!   materialized plan-level vectors.
//!
//! Besides plain operators, steps may hold the two synthetic operators that
//! implement the optimizer's *linear-model pushdown* (paper §2, §4.1.2):
//! [`StageOp::PartialDot`] scores one Concat branch against the matching
//! weight segment, and [`StageOp::Combine`] sums the partials and applies
//! bias + link — after which the Concat operator (and its buffer) is gone.

use crate::stats::NodeStats;
use pretzel_data::batch::ColRef;
use pretzel_data::hash::Fnv1a;
use pretzel_data::{ColumnBatch, ColumnType, DataError, Result, Vector};
use pretzel_ops::linear::LinearParams;
use pretzel_ops::Op;
use std::sync::Arc;

/// A step's operator: a library operator or a pushdown synthetic.
#[derive(Debug, Clone)]
pub enum StageOp {
    /// A regular operator from the library.
    Op(Op),
    /// Pushed-down partial dot product: numeric input → scalar partial,
    /// scored against `linear.weights[offset..offset + input_dim]`.
    /// No bias, no link — those belong to [`StageOp::Combine`].
    PartialDot {
        /// The pushed linear model (shared with the Combine step).
        linear: Arc<LinearParams>,
        /// Start of this branch's weight segment.
        offset: u32,
    },
    /// Sums `n` scalar partials, adds the bias and applies the link.
    Combine {
        /// The pushed linear model.
        linear: Arc<LinearParams>,
    },
    /// Physically fused character n-gram + partial dot (chosen by the Model
    /// Plan Compiler): text input → scalar partial, with no sparse feature
    /// vector materialized anywhere.
    FusedCharNgramDot {
        /// The n-gram featurizer.
        ngram: Arc<pretzel_ops::text::ngram::NgramParams>,
        /// The pushed linear model.
        linear: Arc<LinearParams>,
        /// Start of this branch's weight segment.
        offset: u32,
    },
    /// Physically fused word n-gram + partial dot: `[text, tokens]` inputs
    /// → scalar partial.
    FusedWordNgramDot {
        /// The n-gram featurizer.
        ngram: Arc<pretzel_ops::text::ngram::NgramParams>,
        /// The pushed linear model.
        linear: Arc<LinearParams>,
        /// Start of this branch's weight segment.
        offset: u32,
    },
}

impl StageOp {
    /// Short name for diagnostics and signatures.
    pub fn name(&self) -> &'static str {
        match self {
            StageOp::Op(op) => op.kind().name(),
            StageOp::PartialDot { .. } => "PartialDot",
            StageOp::Combine { .. } => "Combine",
            StageOp::FusedCharNgramDot { .. } => "FusedCharNgramDot",
            StageOp::FusedWordNgramDot { .. } => "FusedWordNgramDot",
        }
    }

    /// Number of inputs the step consumes (Combine is variadic; callers pass
    /// the actual wiring count).
    pub fn n_inputs(&self) -> Option<usize> {
        match self {
            StageOp::Op(op) => Some(op.n_inputs()),
            StageOp::PartialDot { .. } => Some(1),
            StageOp::Combine { .. } => None,
            StageOp::FusedCharNgramDot { .. } => Some(1),
            StageOp::FusedWordNgramDot { .. } => Some(2),
        }
    }

    /// Dedup/signature checksum of the step's parameters.
    pub fn checksum(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.name().as_bytes());
        match self {
            StageOp::Op(op) => h.write_u64(op.checksum()),
            StageOp::PartialDot { linear, offset } => {
                h.write_u64(params_checksum(linear));
                h.write_u64(u64::from(*offset));
            }
            StageOp::Combine { linear } => h.write_u64(params_checksum(linear)),
            StageOp::FusedCharNgramDot {
                ngram,
                linear,
                offset,
            }
            | StageOp::FusedWordNgramDot {
                ngram,
                linear,
                offset,
            } => {
                h.write_u64(ngram_checksum(ngram));
                h.write_u64(params_checksum(linear));
                h.write_u64(u64::from(*offset));
            }
        }
        h.finish()
    }

    /// True if the step's output is a pure function of (step params, source
    /// record) *and* its parameters are featurizer parameters likely shared
    /// across pipelines — the candidates for sub-plan materialization
    /// (paper §4.3).
    pub fn cacheable(&self) -> bool {
        match self {
            StageOp::Op(op) => matches!(
                op.kind(),
                pretzel_ops::OpKind::Tokenizer
                    | pretzel_ops::OpKind::CharNgram
                    | pretzel_ops::OpKind::WordNgram
                    | pretzel_ops::OpKind::TreeFeaturizer
                    | pretzel_ops::OpKind::Pca
                    | pretzel_ops::OpKind::KMeans
            ),
            _ => false,
        }
    }

    /// Executes the step.
    pub fn apply(&self, inputs: &[&Vector], out: &mut Vector) -> Result<()> {
        match self {
            StageOp::Op(op) => op.apply(inputs, out),
            StageOp::PartialDot { linear, offset } => {
                let input = inputs
                    .first()
                    .ok_or_else(|| DataError::Runtime("partial dot expects one input".into()))?;
                let z = linear.partial_dot(input, *offset as usize)?;
                write_scalar(out, z)
            }
            StageOp::Combine { linear } => {
                let mut z = linear.bias;
                for v in inputs {
                    z += v.as_scalar().ok_or_else(|| {
                        DataError::Runtime("combine expects scalar partials".into())
                    })?;
                }
                write_scalar(out, linear.link(z))
            }
            StageOp::FusedCharNgramDot {
                ngram,
                linear,
                offset,
            } => {
                let text = inputs
                    .first()
                    .and_then(|v| v.as_text())
                    .ok_or_else(|| DataError::Runtime("fused char dot expects text".into()))?;
                let weights = &linear.weights;
                let off = *offset as usize;
                if off + ngram.dim() > weights.len() {
                    return Err(DataError::Runtime("fused dot weight segment OOB".into()));
                }
                let mut acc = 0.0f32;
                ngram.for_each_char_match(text, |idx| acc += weights[off + idx as usize]);
                write_scalar(out, acc)
            }
            StageOp::FusedWordNgramDot {
                ngram,
                linear,
                offset,
            } => {
                let text = inputs
                    .first()
                    .and_then(|v| v.as_text())
                    .ok_or_else(|| DataError::Runtime("fused word dot expects text".into()))?;
                let spans = inputs
                    .get(1)
                    .and_then(|v| v.as_tokens())
                    .ok_or_else(|| DataError::Runtime("fused word dot expects tokens".into()))?;
                let weights = &linear.weights;
                let off = *offset as usize;
                if off + ngram.dim() > weights.len() {
                    return Err(DataError::Runtime("fused dot weight segment OOB".into()));
                }
                let mut acc = 0.0f32;
                ngram.for_each_word_match(text, spans, |idx| acc += weights[off + idx as usize]);
                write_scalar(out, acc)
            }
        }
    }
}

impl StageOp {
    /// Executes the step with input 0 supplied as a borrowed source row
    /// (`rest` holds inputs 1..) — the step-level dispatch behind the
    /// request-response engine's borrowed-source execute.
    ///
    /// Returns `Ok(true)` if the step ran off the borrowed row (same
    /// arithmetic as [`StageOp::apply`], bitwise), `Ok(false)` if this step
    /// shape needs a materialized slot-0 vector (the caller copies the
    /// source once and retries through [`StageOp::apply`]).
    pub fn apply_row(&self, row: ColRef<'_>, rest: &[&Vector], out: &mut Vector) -> Result<bool> {
        match (self, row) {
            (StageOp::Op(op), row) => op.apply_row(row, rest, out),
            (StageOp::PartialDot { linear, offset }, row) => {
                let z = linear.partial_dot_row(row, *offset as usize)?;
                write_scalar(out, z).map(|()| true)
            }
            (
                StageOp::FusedCharNgramDot {
                    ngram,
                    linear,
                    offset,
                },
                ColRef::Text(text),
            ) => {
                let weights = &linear.weights;
                let off = *offset as usize;
                if off + ngram.dim() > weights.len() {
                    return Err(DataError::Runtime("fused dot weight segment OOB".into()));
                }
                let mut acc = 0.0f32;
                ngram.for_each_char_match(text, |idx| acc += weights[off + idx as usize]);
                write_scalar(out, acc).map(|()| true)
            }
            (
                StageOp::FusedWordNgramDot {
                    ngram,
                    linear,
                    offset,
                },
                ColRef::Text(text),
            ) => {
                let spans = rest
                    .first()
                    .and_then(|v| v.as_tokens())
                    .ok_or_else(|| DataError::Runtime("fused word dot expects tokens".into()))?;
                let weights = &linear.weights;
                let off = *offset as usize;
                if off + ngram.dim() > weights.len() {
                    return Err(DataError::Runtime("fused dot weight segment OOB".into()));
                }
                let mut acc = 0.0f32;
                ngram.for_each_word_match(text, spans, |idx| acc += weights[off + idx as usize]);
                write_scalar(out, acc).map(|()| true)
            }
            // Combine never reads the source; fused dots over a non-text
            // row fall back to the materialized path's error reporting.
            _ => Ok(false),
        }
    }

    /// Executes the step's columnar batch kernel: whole chunk in, whole
    /// chunk out. Per-row arithmetic (including the fused n-gram·dot
    /// accumulation order) is identical to [`StageOp::apply`], so batch
    /// execution is bitwise-equal to the per-record path.
    pub fn apply_batch(&self, inputs: &[&ColumnBatch], out: &mut ColumnBatch) -> Result<()> {
        match self {
            StageOp::Op(op) => op.apply_batch(inputs, out),
            StageOp::PartialDot { linear, offset } => {
                let input = inputs.first().ok_or_else(|| {
                    DataError::Runtime("partial dot expects one input batch".into())
                })?;
                linear.partial_dot_batch(input, *offset as usize, out)
            }
            StageOp::Combine { linear } => {
                let rows = inputs.first().map_or(0, |b| b.rows());
                if out.column_type() != ColumnType::F32Scalar {
                    return Err(DataError::Runtime(format!(
                        "combine output must be scalar batch, got {:?}",
                        out.column_type()
                    )));
                }
                let partials: Vec<&[f32]> = inputs
                    .iter()
                    .map(|b| {
                        b.as_scalars().ok_or_else(|| {
                            DataError::Runtime("combine expects scalar partial batches".into())
                        })
                    })
                    .collect::<Result<_>>()?;
                let y = out.fill_scalar(rows)?;
                for (r, slot) in y.iter_mut().enumerate() {
                    let mut z = linear.bias;
                    for p in &partials {
                        z += p[r];
                    }
                    *slot = linear.link(z);
                }
                Ok(())
            }
            StageOp::FusedCharNgramDot {
                ngram,
                linear,
                offset,
            } => {
                let text = inputs.first().copied().ok_or_else(|| {
                    DataError::Runtime("fused char dot expects text batch".into())
                })?;
                let weights = &linear.weights;
                let off = *offset as usize;
                if off + ngram.dim() > weights.len() {
                    return Err(DataError::Runtime("fused dot weight segment OOB".into()));
                }
                if out.column_type() != ColumnType::F32Scalar {
                    return Err(DataError::Runtime(format!(
                        "fused char dot output must be scalar batch, got {:?}",
                        out.column_type()
                    )));
                }
                let rows = text.rows();
                let y = out.fill_scalar(rows)?;
                for (r, slot) in y.iter_mut().enumerate() {
                    let ColRef::Text(t) = text.row(r) else {
                        return Err(DataError::Runtime("fused char dot expects text".into()));
                    };
                    let mut acc = 0.0f32;
                    ngram.for_each_char_match(t, |idx| acc += weights[off + idx as usize]);
                    *slot = acc;
                }
                Ok(())
            }
            StageOp::FusedWordNgramDot {
                ngram,
                linear,
                offset,
            } => {
                let text = inputs.first().copied().ok_or_else(|| {
                    DataError::Runtime("fused word dot expects text batch".into())
                })?;
                let tokens = inputs.get(1).copied().ok_or_else(|| {
                    DataError::Runtime("fused word dot expects token batch".into())
                })?;
                let weights = &linear.weights;
                let off = *offset as usize;
                if off + ngram.dim() > weights.len() {
                    return Err(DataError::Runtime("fused dot weight segment OOB".into()));
                }
                if out.column_type() != ColumnType::F32Scalar {
                    return Err(DataError::Runtime(format!(
                        "fused word dot output must be scalar batch, got {:?}",
                        out.column_type()
                    )));
                }
                let rows = text.rows();
                let y = out.fill_scalar(rows)?;
                for (r, slot) in y.iter_mut().enumerate() {
                    let (ColRef::Text(t), ColRef::Tokens(spans)) = (text.row(r), tokens.row(r))
                    else {
                        return Err(DataError::Runtime(
                            "fused word dot expects text + tokens".into(),
                        ));
                    };
                    let mut acc = 0.0f32;
                    ngram.for_each_word_match(t, spans, |idx| acc += weights[off + idx as usize]);
                    *slot = acc;
                }
                Ok(())
            }
        }
    }
}

fn params_checksum(linear: &LinearParams) -> u64 {
    use pretzel_ops::params::ParamBlob;
    linear.checksum()
}

fn ngram_checksum(ngram: &pretzel_ops::text::ngram::NgramParams) -> u64 {
    use pretzel_ops::params::ParamBlob;
    ngram.checksum()
}

fn write_scalar(out: &mut Vector, v: f32) -> Result<()> {
    match out {
        Vector::Scalar(s) => {
            *s = v;
            Ok(())
        }
        other => Err(DataError::Runtime(format!(
            "step output must be scalar, got {:?}",
            other.column_type()
        ))),
    }
}

/// Address of a step operand: plan slot or stage-local scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Plan-level working-set slot.
    Slot(u32),
    /// Stage-local scratch buffer.
    Scratch(u32),
}

/// One step of a stage program.
#[derive(Debug, Clone)]
pub struct Step {
    /// The operator.
    pub op: StageOp,
    /// Input operand addresses.
    pub inputs: Vec<Loc>,
    /// Output operand address. Must differ from every input.
    pub output: Loc,
}

/// Type and sizing of one buffer (slot or scratch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufDef {
    /// Column type of the buffer.
    pub ty: ColumnType,
    /// Training-statistics size hint for pool warming.
    pub max_stored: usize,
}

impl BufDef {
    /// Creates a buffer definition.
    pub fn new(ty: ColumnType, max_stored: usize) -> Self {
        BufDef { ty, max_stored }
    }
}

/// One logical stage: a program over slots + scratch.
#[derive(Debug, Clone)]
pub struct LogicalStage {
    /// Steps in execution order.
    pub steps: Vec<Step>,
    /// Stage-local scratch buffer definitions.
    pub scratch: Vec<BufDef>,
    /// Plan slots read by this stage (scheduling metadata).
    pub reads: Vec<u32>,
    /// Plan slots written by this stage.
    pub writes: Vec<u32>,
    /// Output labelled dense by training statistics
    /// (`OutputGraphValidatorStep`).
    pub dense: bool,
    /// Dense compute-bound stage labelled SIMD-vectorizable.
    pub vectorizable: bool,
}

/// A complete logical plan: slots + topologically ordered stages.
#[derive(Debug, Clone)]
pub struct StagePlan {
    /// Type of the source record (slot 0).
    pub source_type: ColumnType,
    /// Plan-level buffers. Slot 0 is the source record.
    pub slots: Vec<BufDef>,
    /// Stages in execution order.
    pub stages: Vec<LogicalStage>,
    /// Slot holding the final prediction.
    pub output_slot: u32,
    /// Merged training statistics (plan-level max vector size).
    pub stats: NodeStats,
}

impl StagePlan {
    /// Validates wiring: locations in range, outputs distinct from inputs,
    /// every scratch read was written earlier in the same stage, every slot
    /// read was written by an earlier stage (or is the source), and the
    /// output slot is written exactly once, by the last stage.
    pub fn validate(&self) -> Result<()> {
        if self.stages.is_empty() {
            return Err(DataError::InvalidGraph("plan has no stages".into()));
        }
        if self.output_slot as usize >= self.slots.len() {
            return Err(DataError::InvalidGraph("output slot out of range".into()));
        }
        let mut slot_written = vec![false; self.slots.len()];
        slot_written[0] = true; // source
        for (si, stage) in self.stages.iter().enumerate() {
            let mut scratch_written = vec![false; stage.scratch.len()];
            for (pi, step) in stage.steps.iter().enumerate() {
                for input in &step.inputs {
                    if *input == step.output {
                        return Err(DataError::InvalidGraph(format!(
                            "stage {si} step {pi}: output aliases an input"
                        )));
                    }
                    match *input {
                        Loc::Slot(s) => {
                            let s = s as usize;
                            if s >= self.slots.len() {
                                return Err(DataError::InvalidGraph(format!(
                                    "stage {si} step {pi}: slot {s} out of range"
                                )));
                            }
                            if !slot_written[s] {
                                return Err(DataError::InvalidGraph(format!(
                                    "stage {si} step {pi}: reads slot {s} before any write"
                                )));
                            }
                        }
                        Loc::Scratch(s) => {
                            let s = s as usize;
                            if s >= stage.scratch.len() || !scratch_written[s] {
                                return Err(DataError::InvalidGraph(format!(
                                    "stage {si} step {pi}: reads scratch {s} before write"
                                )));
                            }
                        }
                    }
                }
                if let Some(n) = step.op.n_inputs() {
                    if n != step.inputs.len() {
                        return Err(DataError::InvalidGraph(format!(
                            "stage {si} step {pi}: {} wants {n} inputs, wired {}",
                            step.op.name(),
                            step.inputs.len()
                        )));
                    }
                }
                match step.output {
                    Loc::Slot(s) if (s as usize) < self.slots.len() => {
                        slot_written[s as usize] = true;
                    }
                    Loc::Scratch(s) if (s as usize) < stage.scratch.len() => {
                        scratch_written[s as usize] = true;
                    }
                    loc => {
                        return Err(DataError::InvalidGraph(format!(
                            "stage {si} step {pi}: output {loc:?} out of range"
                        )));
                    }
                }
            }
        }
        if !slot_written[self.output_slot as usize] {
            return Err(DataError::InvalidGraph(
                "output slot is never written".into(),
            ));
        }
        Ok(())
    }

    /// Column types of all slots (pool lease layout).
    pub fn slot_types(&self) -> Vec<ColumnType> {
        self.slots.iter().map(|d| d.ty).collect()
    }

    /// Total steps across stages.
    pub fn n_steps(&self) -> usize {
        self.stages.iter().map(|s| s.steps.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_ops::linear::{LinearKind, LinearParams};
    use pretzel_ops::synth;

    fn linear4() -> Arc<LinearParams> {
        Arc::new(LinearParams::new(
            LinearKind::Regression,
            vec![1.0, 2.0, 3.0, 4.0],
            0.5,
        ))
    }

    #[test]
    fn partial_dots_plus_combine_equal_full_linear() {
        let lin = linear4();
        let left = Vector::Dense(vec![1.0, 1.0]);
        let right = Vector::Dense(vec![2.0, 1.0]);
        let mut p1 = Vector::Scalar(0.0);
        let mut p2 = Vector::Scalar(0.0);
        StageOp::PartialDot {
            linear: Arc::clone(&lin),
            offset: 0,
        }
        .apply(&[&left], &mut p1)
        .unwrap();
        StageOp::PartialDot {
            linear: Arc::clone(&lin),
            offset: 2,
        }
        .apply(&[&right], &mut p2)
        .unwrap();
        let mut combined = Vector::Scalar(0.0);
        StageOp::Combine {
            linear: Arc::clone(&lin),
        }
        .apply(&[&p1, &p2], &mut combined)
        .unwrap();

        // Reference: full concatenated scoring.
        let full = Vector::Dense(vec![1.0, 1.0, 2.0, 1.0]);
        let mut reference = Vector::Scalar(0.0);
        lin.apply(&full, &mut reference).unwrap();
        assert_eq!(combined, reference);
    }

    #[test]
    fn fused_char_dot_equals_ngram_then_dot() {
        let ngram = Arc::new(synth::char_ngram(5, 3, 32));
        let lin = Arc::new(synth::linear(6, 32, LinearKind::Regression));
        let text = Vector::Text("the quick brown fox jumps".into());

        // Unfused reference: materialize the sparse vector, then dot.
        let mut sparse = Vector::with_type(ColumnType::F32Sparse { len: 32 });
        ngram
            .apply_char(text.as_text().unwrap(), &mut sparse)
            .unwrap();
        let expected = lin.partial_dot(&sparse, 0).unwrap();

        let mut out = Vector::Scalar(0.0);
        StageOp::FusedCharNgramDot {
            ngram,
            linear: lin,
            offset: 0,
        }
        .apply(&[&text], &mut out)
        .unwrap();
        assert!((out.as_scalar().unwrap() - expected).abs() < 1e-5);
    }

    #[test]
    fn fused_word_dot_equals_ngram_then_dot() {
        use pretzel_ops::text::tokenizer::TokenizerParams;
        let vocab = synth::vocabulary(2, 64);
        let ngram = Arc::new(synth::word_ngram(3, 2, 64, &vocab));
        let lin = Arc::new(synth::linear(8, 64, LinearKind::Regression));
        let sentence = format!("{} {} {}", vocab[0], vocab[1], vocab[2]);
        let text = Vector::Text(sentence.clone());
        let tok = TokenizerParams::whitespace_punct();
        let mut tokens = Vector::with_type(ColumnType::TokenList);
        tok.apply(&sentence, &mut tokens).unwrap();

        let mut sparse = Vector::with_type(ColumnType::F32Sparse { len: 64 });
        ngram
            .apply_word(&sentence, tokens.as_tokens().unwrap(), &mut sparse)
            .unwrap();
        let expected = lin.partial_dot(&sparse, 0).unwrap();

        let mut out = Vector::Scalar(0.0);
        StageOp::FusedWordNgramDot {
            ngram,
            linear: lin,
            offset: 0,
        }
        .apply(&[&text, &tokens], &mut out)
        .unwrap();
        assert!((out.as_scalar().unwrap() - expected).abs() < 1e-5);
    }

    #[test]
    fn combine_rejects_non_scalar_partials() {
        let lin = linear4();
        let bad = Vector::Dense(vec![1.0]);
        let mut out = Vector::Scalar(0.0);
        assert!(StageOp::Combine { linear: lin }
            .apply(&[&bad], &mut out)
            .is_err());
    }

    #[test]
    fn fused_dot_out_of_bounds_segment_is_error() {
        let ngram = Arc::new(synth::char_ngram(5, 3, 32));
        let lin = Arc::new(synth::linear(6, 16, LinearKind::Regression));
        let text = Vector::Text("abcdef".into());
        let mut out = Vector::Scalar(0.0);
        let err = StageOp::FusedCharNgramDot {
            ngram,
            linear: lin,
            offset: 0,
        }
        .apply(&[&text], &mut out);
        assert!(err.is_err());
    }

    fn tiny_plan() -> StagePlan {
        let lin = linear4();
        StagePlan {
            source_type: ColumnType::F32Dense { len: 4 },
            slots: vec![
                BufDef::new(ColumnType::F32Dense { len: 4 }, 4),
                BufDef::new(ColumnType::F32Scalar, 1),
            ],
            stages: vec![LogicalStage {
                steps: vec![Step {
                    op: StageOp::Op(Op::Linear(lin)),
                    inputs: vec![Loc::Slot(0)],
                    output: Loc::Slot(1),
                }],
                scratch: vec![],
                reads: vec![0],
                writes: vec![1],
                dense: true,
                vectorizable: true,
            }],
            output_slot: 1,
            stats: NodeStats::default(),
        }
    }

    #[test]
    fn valid_plan_passes_validation() {
        tiny_plan().validate().unwrap();
        assert_eq!(tiny_plan().n_steps(), 1);
    }

    #[test]
    fn output_aliasing_input_rejected() {
        let mut p = tiny_plan();
        p.stages[0].steps[0].output = Loc::Slot(0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn read_before_write_rejected() {
        let mut p = tiny_plan();
        p.stages[0].steps[0].inputs = vec![Loc::Slot(1)];
        p.stages[0].steps[0].output = Loc::Slot(0);
        // Slot 1 is never written before being read.
        assert!(p.validate().is_err());
    }

    #[test]
    fn scratch_read_before_write_rejected() {
        let mut p = tiny_plan();
        p.stages[0]
            .scratch
            .push(BufDef::new(ColumnType::F32Scalar, 1));
        p.stages[0].steps[0].inputs = vec![Loc::Scratch(0)];
        assert!(p.validate().is_err());
    }

    #[test]
    fn unwritten_output_slot_rejected() {
        let mut p = tiny_plan();
        p.slots.push(BufDef::new(ColumnType::F32Scalar, 1));
        p.output_slot = 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = tiny_plan();
        p.stages[0].steps[0].inputs = vec![Loc::Slot(0), Loc::Slot(0)];
        assert!(p.validate().is_err());
    }

    #[test]
    fn cacheable_flags() {
        use pretzel_ops::text::tokenizer::TokenizerParams;
        let tok = StageOp::Op(Op::Tokenizer(Arc::new(TokenizerParams::whitespace_punct())));
        assert!(tok.cacheable());
        let lin = StageOp::Op(Op::Linear(linear4()));
        assert!(!lin.cacheable());
        assert!(!StageOp::Combine { linear: linear4() }.cacheable());
    }

    #[test]
    fn stage_op_checksums_distinguish_offsets() {
        let lin = linear4();
        let a = StageOp::PartialDot {
            linear: Arc::clone(&lin),
            offset: 0,
        };
        let b = StageOp::PartialDot {
            linear: lin,
            offset: 2,
        };
        assert_ne!(a.checksum(), b.checksum());
    }
}
