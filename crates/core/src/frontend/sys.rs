//! Minimal epoll + eventfd bindings for the reactor.
//!
//! The workspace carries no libc binding (offline, vendored-stub deps
//! only), so the handful of syscalls the event loop needs are issued
//! directly via the x86-64 Linux `syscall` instruction. Everything is
//! gated on `linux` + `x86_64`; other targets get a stub module whose
//! [`SUPPORTED`] flag routes `FrontEnd::serve` to the blocking
//! thread-per-connection path instead.

/// Whether the reactor's readiness primitives exist on this target.
pub(crate) const SUPPORTED: bool = cfg!(all(target_os = "linux", target_arch = "x86_64"));

/// Readiness: fd readable.
pub(crate) const EPOLLIN: u32 = 0x001;
/// Readiness: fd writable.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hang-up (peer closed both directions).
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer closed its write side (half-close); delivered with `EPOLLIN`.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

/// One `epoll_wait` readiness record. Layout must match the kernel's
/// packed 12-byte `struct epoll_event` on x86-64.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

impl EpollEvent {
    pub(crate) const fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::EpollEvent;
    use std::io;

    const SYS_READ: usize = 0;
    const SYS_WRITE: usize = 1;
    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_WAIT: usize = 232;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EVENTFD2: usize = 290;
    const SYS_EPOLL_CREATE1: usize = 291;

    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLL_CLOEXEC: usize = 0x80000;
    const EFD_NONBLOCK: usize = 0x800;
    const EFD_CLOEXEC: usize = 0x80000;
    const EAGAIN: i32 = 11;
    const EINTR: i32 = 4;

    /// Issues one raw syscall; returns the kernel's raw result (negative
    /// errno on failure).
    #[inline]
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// An epoll instance (closed on drop).
    #[derive(Debug)]
    pub(crate) struct Epoll {
        fd: i32,
    }

    impl Epoll {
        pub(crate) fn new() -> io::Result<Epoll> {
            let fd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Epoll { fd: fd as i32 })
        }

        fn ctl(&self, op: usize, fd: i32, events: u32, data: u64) -> io::Result<()> {
            let ev = EpollEvent { events, data };
            let ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null()
            } else {
                &ev as *const EpollEvent
            };
            check(unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    self.fd as usize,
                    op,
                    fd as usize,
                    ptr as usize,
                )
            })
            .map(|_| ())
        }

        /// Registers `fd` with the given interest set; `data` comes back in
        /// every readiness record for it.
        pub(crate) fn add(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, data)
        }

        /// Replaces `fd`'s interest set.
        pub(crate) fn modify(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, data)
        }

        /// Deregisters `fd`.
        pub(crate) fn delete(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks up to `timeout_ms` for readiness; fills `events` and
        /// returns how many records arrived (0 on timeout).
        pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                let ret = unsafe {
                    syscall4(
                        SYS_EPOLL_WAIT,
                        self.fd as usize,
                        events.as_mut_ptr() as usize,
                        events.len(),
                        timeout_ms as usize,
                    )
                };
                if ret == -(EINTR as isize) {
                    continue; // retry interrupted waits transparently
                }
                return check(ret);
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { syscall4(SYS_CLOSE, self.fd as usize, 0, 0, 0) };
        }
    }

    /// A non-blocking eventfd used to wake a reactor out of `epoll_wait`
    /// when a completion lands on its queue (closed on drop).
    #[derive(Debug)]
    pub(crate) struct EventFd {
        fd: i32,
    }

    impl EventFd {
        pub(crate) fn new() -> io::Result<EventFd> {
            let fd = check(unsafe { syscall4(SYS_EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0) })?;
            Ok(EventFd { fd: fd as i32 })
        }

        pub(crate) fn raw(&self) -> i32 {
            self.fd
        }

        /// Signals the fd (wakes a blocked `epoll_wait`). A full counter
        /// (`EAGAIN`) already guarantees a pending wakeup, so it is not an
        /// error.
        pub(crate) fn signal(&self) {
            let one = 1u64.to_ne_bytes();
            unsafe {
                syscall4(SYS_WRITE, self.fd as usize, one.as_ptr() as usize, 8, 0);
            }
        }

        /// Drains the counter so the next `signal` wakes again.
        pub(crate) fn drain(&self) {
            let mut buf = [0u8; 8];
            loop {
                let ret = unsafe {
                    syscall4(SYS_READ, self.fd as usize, buf.as_mut_ptr() as usize, 8, 0)
                };
                if ret == -(EAGAIN as isize) || ret <= 0 {
                    return;
                }
            }
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { syscall4(SYS_CLOSE, self.fd as usize, 0, 0, 0) };
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    //! Stub for targets without the raw-syscall reactor: `SUPPORTED` is
    //! false there, so `FrontEnd::serve` never constructs these.
    use super::EpollEvent;
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "reactor readiness primitives are only wired up on linux/x86_64",
        ))
    }

    #[derive(Debug)]
    pub(crate) struct Epoll;

    impl Epoll {
        pub(crate) fn new() -> io::Result<Epoll> {
            unsupported()
        }
        pub(crate) fn add(&self, _fd: i32, _events: u32, _data: u64) -> io::Result<()> {
            unsupported()
        }
        pub(crate) fn modify(&self, _fd: i32, _events: u32, _data: u64) -> io::Result<()> {
            unsupported()
        }
        pub(crate) fn delete(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }
        pub(crate) fn wait(
            &self,
            _events: &mut [EpollEvent],
            _timeout_ms: i32,
        ) -> io::Result<usize> {
            unsupported()
        }
    }

    #[derive(Debug)]
    pub(crate) struct EventFd;

    impl EventFd {
        pub(crate) fn new() -> io::Result<EventFd> {
            unsupported()
        }
        pub(crate) fn raw(&self) -> i32 {
            -1
        }
        pub(crate) fn signal(&self) {}
        pub(crate) fn drain(&self) {}
    }
}

pub(crate) use imp::{Epoll, EventFd};

#[cfg(all(test, target_os = "linux", target_arch = "x86_64"))]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw(), EPOLLIN, 0xfeed).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing signalled: a short wait times out empty.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        efd.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 0xfeed);
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained fd is quiet");
        ep.delete(efd.raw()).unwrap();
    }
}
