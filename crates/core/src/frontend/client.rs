//! Client surface for the FrontEnd protocol.
//!
//! [`PredictRequest`] is the typed request builder: a payload (or batch of
//! payloads), a [`Target`] (plan id or alias), and the external-optimization
//! toggles as methods. [`Client`] serves it sequentially — over v1
//! ([`Client::connect`], the baseline-compatible default) or v2
//! ([`Client::connect_v2`]) — and [`Session`] pipelines it over v2:
//! [`Session::submit`] returns immediately with a [`PendingPredict`], and
//! responses resolve **out of submission order** as the server completes
//! them, matched by request id.
//!
//! The old `predict_*` method family survives as thin deprecated wrappers
//! over the builder encoding (byte-identical frames).

use super::wire::{self, ReadFrame};
use super::{FLAG_DELAYED_BATCH, FLAG_PLAN_ALIAS, FLAG_RESULT_CACHE};
use crate::lifecycle::{PlanInfo, UndeployReport};
use crate::runtime::PlanId;
use crate::telemetry::MetricsSnapshot;
use parking_lot::{Condvar, Mutex};
use pretzel_data::serde_bin::Cursor;
use pretzel_data::{DataError, Result};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn io_err(e: std::io::Error) -> DataError {
    DataError::Runtime(format!("frontend io: {e}"))
}

/// One prediction record.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A UTF-8 text record (kind 0).
    Text(String),
    /// A dense feature vector (kind 1).
    Dense(Vec<f32>),
    /// A sparse CSR row (kind 2): sorted unique `indices` parallel to
    /// `values`, logical dimensionality `dim`.
    Sparse {
        indices: Vec<u32>,
        values: Vec<f32>,
        dim: u32,
    },
}

impl Payload {
    fn kind(&self) -> u8 {
        match self {
            Payload::Text(_) => wire::KIND_TEXT,
            Payload::Dense(_) => wire::KIND_DENSE,
            Payload::Sparse { .. } => wire::KIND_SPARSE,
        }
    }

    fn encode_into(&self, req: &mut Vec<u8>) {
        match self {
            Payload::Text(line) => {
                req.extend_from_slice(&(line.len() as u32).to_le_bytes());
                req.extend_from_slice(line.as_bytes());
            }
            Payload::Dense(x) => {
                req.extend_from_slice(&(x.len() as u32).to_le_bytes());
                for v in x {
                    req.extend_from_slice(&v.to_le_bytes());
                }
            }
            Payload::Sparse {
                indices,
                values,
                dim,
            } => {
                req.extend_from_slice(&dim.to_le_bytes());
                req.extend_from_slice(&(indices.len() as u32).to_le_bytes());
                for i in indices {
                    req.extend_from_slice(&i.to_le_bytes());
                }
                for v in values {
                    req.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
}

/// Which plan a request addresses.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A concrete plan id.
    Plan(PlanId),
    /// An alias: the server resolves its current binding per attempt and
    /// retries transparently across concurrent `swap`/`undeploy`.
    Alias(String),
}

/// A typed prediction request: payload(s), target, and the external
/// optimizations as toggles.
///
/// ```no_run
/// # use pretzel_core::frontend::{Client, PredictRequest};
/// # let mut client: Client = unimplemented!();
/// let score = client.predict(
///     &PredictRequest::text("5,a nice product").plan(3).cached(),
/// )?;
/// let scores = client.predict_many(
///     &PredictRequest::dense_batch(vec![vec![0.5; 8], vec![0.25; 8]]).alias("ranker"),
/// )?;
/// # Ok::<(), pretzel_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    target: Option<Target>,
    payloads: Vec<Payload>,
    cached: bool,
    delayed: bool,
}

impl PredictRequest {
    /// A request over explicit payloads (may mix batch sizes, not kinds).
    pub fn batch(payloads: Vec<Payload>) -> PredictRequest {
        PredictRequest {
            target: None,
            payloads,
            cached: false,
            delayed: false,
        }
    }

    /// A single text record.
    pub fn text(line: impl Into<String>) -> PredictRequest {
        Self::batch(vec![Payload::Text(line.into())])
    }

    /// A batch of text records.
    pub fn text_batch<S: Into<String>>(lines: impl IntoIterator<Item = S>) -> PredictRequest {
        Self::batch(lines.into_iter().map(|l| Payload::Text(l.into())).collect())
    }

    /// A single dense record.
    pub fn dense(x: Vec<f32>) -> PredictRequest {
        Self::batch(vec![Payload::Dense(x)])
    }

    /// A batch of dense records.
    pub fn dense_batch(rows: impl IntoIterator<Item = Vec<f32>>) -> PredictRequest {
        Self::batch(rows.into_iter().map(Payload::Dense).collect())
    }

    /// A single sparse record.
    pub fn sparse(indices: Vec<u32>, values: Vec<f32>, dim: u32) -> PredictRequest {
        Self::batch(vec![Payload::Sparse {
            indices,
            values,
            dim,
        }])
    }

    /// Addresses the request at a concrete plan id.
    pub fn plan(mut self, id: PlanId) -> PredictRequest {
        self.target = Some(Target::Plan(id));
        self
    }

    /// Addresses the request at an alias (resolved server-side per
    /// attempt, riding through concurrent swaps and undeploys).
    pub fn alias(mut self, alias: impl Into<String>) -> PredictRequest {
        self.target = Some(Target::Alias(alias.into()));
        self
    }

    /// Consults/populates the server's prediction-result cache
    /// (single-record requests only; ignored for batches server-side).
    pub fn cached(mut self) -> PredictRequest {
        self.cached = true;
        self
    }

    /// Submits through the server's delayed batcher (paper §4.3).
    pub fn delayed(mut self) -> PredictRequest {
        self.delayed = true;
        self
    }

    /// Encodes the request body (shared by every transport).
    pub(super) fn encode(&self) -> Result<Vec<u8>> {
        let target = self.target.as_ref().ok_or_else(|| {
            DataError::Runtime("predict request needs a target: .plan(id) or .alias(name)".into())
        })?;
        let kind = match self.payloads.first() {
            Some(first) => {
                let kind = first.kind();
                if self.payloads.iter().any(|p| p.kind() != kind) {
                    return Err(DataError::Runtime(
                        "predict request mixes payload kinds; batches are homogeneous".into(),
                    ));
                }
                kind
            }
            // An empty batch still validates its target server-side; kind
            // is irrelevant without records.
            None => wire::KIND_TEXT,
        };
        let mut flags = 0u8;
        if self.cached {
            flags |= FLAG_RESULT_CACHE;
        }
        if self.delayed {
            flags |= FLAG_DELAYED_BATCH;
        }
        let (plan, alias) = match target {
            Target::Plan(id) => (*id, None),
            Target::Alias(a) => {
                flags |= FLAG_PLAN_ALIAS;
                (0, Some(a.as_str()))
            }
        };
        let mut req = wire::request_header(plan, kind, flags, self.payloads.len());
        if let Some(alias) = alias {
            pretzel_data::serde_bin::wire::put_str(&mut req, alias);
        }
        for p in &self.payloads {
            p.encode_into(&mut req);
        }
        Ok(req)
    }
}

/// A blocking, sequential client for the FrontEnd protocol.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    proto: u8,
    next_id: u32,
}

impl Client {
    /// Connects speaking wire **v1** — the maximally compatible framing
    /// (also understood by the Clipper-style baseline front end).
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Self::connect_proto(addr, 1)
    }

    /// Connects speaking wire **v2**: every request carries a request id
    /// and the response echoes it. Still sequential — use [`Session`] for
    /// pipelining.
    pub fn connect_v2(addr: SocketAddr) -> std::io::Result<Client> {
        Self::connect_proto(addr, wire::WIRE_V2)
    }

    fn connect_proto(addr: SocketAddr, proto: u8) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            proto,
            next_id: 0,
        })
    }

    /// Scores a single-record request.
    pub fn predict(&mut self, request: &PredictRequest) -> Result<f32> {
        let scores = self.predict_many(request)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a request with any number of records.
    pub fn predict_many(&mut self, request: &PredictRequest) -> Result<Vec<f32>> {
        self.roundtrip(&request.encode()?)
    }

    fn roundtrip_raw(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        if self.proto == 1 {
            wire::write_v1(&mut self.stream, request).map_err(io_err)?;
        } else {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1);
            wire::write_v2(&mut self.stream, id, request).map_err(io_err)?;
        }
        match wire::read_frame(&mut self.stream).map_err(io_err)? {
            ReadFrame::V1(body) => Ok(body),
            ReadFrame::V2 { request_id, body } => {
                // Sequential client: exactly one request in flight, so the
                // echoed id must be the one just assigned.
                if request_id != self.next_id.wrapping_sub(1) && request_id != u32::MAX {
                    return Err(DataError::Runtime(format!(
                        "response for request {request_id} arrived out of turn"
                    )));
                }
                Ok(body)
            }
            ReadFrame::Eof => Err(DataError::Runtime("frontend closed connection".into())),
            ReadFrame::Oversized(len) => Err(DataError::Runtime(format!(
                "frontend sent an oversized {len}-byte frame"
            ))),
            ReadFrame::BadVersion(v) => Err(DataError::Runtime(format!(
                "frontend sent unknown wire version {v}"
            ))),
        }
    }

    fn roundtrip(&mut self, request: &[u8]) -> Result<Vec<f32>> {
        wire::decode_response(&self.roundtrip_raw(request)?)
    }

    fn roundtrip_admin(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        let body = self.roundtrip_raw(request)?;
        match body.split_first() {
            Some((2, payload)) => Ok(payload.to_vec()),
            Some((1, _)) => Err(wire::decode_response(&body).unwrap_err()),
            other => Err(DataError::Runtime(format!(
                "bad admin response status {:?}",
                other.map(|(s, _)| s)
            ))),
        }
    }

    /// Scores one text record; `flags` selects external optimizations.
    #[deprecated(since = "0.1.0", note = "use `predict` with `PredictRequest::text`")]
    pub fn predict_text(&mut self, plan: PlanId, line: &str, flags: u8) -> Result<f32> {
        let req = wire::encode_request_text(plan, std::slice::from_ref(&line), flags);
        let scores = self.roundtrip(&req)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of text records.
    #[deprecated(
        since = "0.1.0",
        note = "use `predict_many` with `PredictRequest::text_batch`"
    )]
    pub fn predict_text_batch(
        &mut self,
        plan: PlanId,
        lines: &[&str],
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&wire::encode_request_text(plan, lines, flags))
    }

    /// Scores one dense record.
    #[deprecated(since = "0.1.0", note = "use `predict` with `PredictRequest::dense`")]
    pub fn predict_dense(&mut self, plan: PlanId, x: &[f32], flags: u8) -> Result<f32> {
        let req = wire::encode_request_dense(plan, std::slice::from_ref(&x), flags);
        let scores = self.roundtrip(&req)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of dense records.
    #[deprecated(
        since = "0.1.0",
        note = "use `predict_many` with `PredictRequest::dense_batch`"
    )]
    pub fn predict_dense_batch(
        &mut self,
        plan: PlanId,
        records: &[&[f32]],
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&wire::encode_request_dense(plan, records, flags))
    }

    /// Scores one sparse record (sorted unique `indices` parallel to
    /// `values`, logical dimensionality `dim`).
    #[deprecated(since = "0.1.0", note = "use `predict` with `PredictRequest::sparse`")]
    pub fn predict_sparse(
        &mut self,
        plan: PlanId,
        indices: &[u32],
        values: &[f32],
        dim: u32,
        flags: u8,
    ) -> Result<f32> {
        let rows = [(indices, values)];
        let scores = self.roundtrip(&wire::encode_request_sparse(plan, &rows, dim, flags))?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of sparse records sharing one dimensionality.
    #[deprecated(
        since = "0.1.0",
        note = "use `predict_many` with `PredictRequest::batch` of sparse payloads"
    )]
    pub fn predict_sparse_batch(
        &mut self,
        plan: PlanId,
        rows: &[(&[u32], &[f32])],
        dim: u32,
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&wire::encode_request_sparse(plan, rows, dim, flags))
    }

    /// Scores one text record addressed by **alias**.
    #[deprecated(
        since = "0.1.0",
        note = "use `predict` with `PredictRequest::text(..).alias(..)`"
    )]
    pub fn predict_text_alias(&mut self, alias: &str, line: &str, flags: u8) -> Result<f32> {
        let req = wire::encode_request_text_alias(alias, std::slice::from_ref(&line), flags);
        let scores = self.roundtrip(&req)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of text records addressed by alias.
    #[deprecated(
        since = "0.1.0",
        note = "use `predict_many` with `PredictRequest::text_batch(..).alias(..)`"
    )]
    pub fn predict_text_batch_alias(
        &mut self,
        alias: &str,
        lines: &[&str],
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&wire::encode_request_text_alias(alias, lines, flags))
    }

    /// Deploys a serialized model file on the server; optionally binds an
    /// alias and reserves a dedicated executor. Returns the new plan id.
    pub fn deploy(&mut self, image: &[u8], alias: Option<&str>, reserved: bool) -> Result<PlanId> {
        use pretzel_data::serde_bin::wire as w;
        let mut req = wire::request_header(0, wire::ADMIN_DEPLOY, 0, 0);
        w::put_str(&mut req, alias.unwrap_or(""));
        w::put_u32(&mut req, u32::from(reserved));
        w::put_u64(&mut req, image.len() as u64);
        req.extend_from_slice(image);
        let payload = self.roundtrip_admin(&req)?;
        Cursor::new(&payload).u32()
    }

    /// Undeploys a plan on the server (retire, drain, reclaim); returns
    /// what was freed.
    pub fn undeploy(&mut self, plan: PlanId) -> Result<UndeployReport> {
        let req = wire::request_header(plan, wire::ADMIN_UNDEPLOY, 0, 0);
        let payload = self.roundtrip_admin(&req)?;
        let mut cur = Cursor::new(&payload);
        Ok(UndeployReport {
            freed_param_bytes: cur.u64()? as usize,
            freed_params: cur.u32()? as usize,
            dropped_stages: cur.u32()? as usize,
            dropped_aliases: cur.u32()? as usize,
        })
    }

    /// Atomically repoints `alias` to `plan` on the server; returns the
    /// previously bound plan, if any.
    pub fn swap(&mut self, alias: &str, plan: PlanId) -> Result<Option<PlanId>> {
        use pretzel_data::serde_bin::wire as w;
        let mut req = wire::request_header(plan, wire::ADMIN_SWAP, 0, 0);
        w::put_str(&mut req, alias);
        let payload = self.roundtrip_admin(&req)?;
        let previous = Cursor::new(&payload).u32()?;
        Ok((previous != u32::MAX).then_some(previous))
    }

    /// Rolls `alias` back to its previous live version on the server;
    /// returns the plan now bound, or `None` if there was no predecessor
    /// to roll back to (the binding is left unchanged).
    pub fn rollback(&mut self, alias: &str) -> Result<Option<PlanId>> {
        use pretzel_data::serde_bin::wire as w;
        let mut req = wire::request_header(0, wire::ADMIN_ROLLBACK, 0, 0);
        w::put_str(&mut req, alias);
        let payload = self.roundtrip_admin(&req)?;
        let bound = Cursor::new(&payload).u32()?;
        Ok((bound != u32::MAX).then_some(bound))
    }

    /// Lists every plan the server knows (tombstones included) with
    /// lifecycle state and bound aliases.
    pub fn list(&mut self) -> Result<Vec<PlanInfo>> {
        let req = wire::request_header(0, wire::ADMIN_LIST, 0, 0);
        let payload = self.roundtrip_admin(&req)?;
        let mut cur = Cursor::new(&payload);
        let n = cur.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = cur.u32()?;
            let retired = cur.u32()? != 0;
            let quarantined = cur.u32()? != 0;
            let in_flight = cur.u32()? as usize;
            let n_aliases = cur.u32()? as usize;
            let mut aliases = Vec::with_capacity(n_aliases.min(64));
            for _ in 0..n_aliases {
                aliases.push(cur.str()?);
            }
            out.push(PlanInfo {
                id,
                retired,
                quarantined,
                in_flight,
                aliases,
            });
        }
        Ok(out)
    }

    /// `STATS`: one merged telemetry snapshot of the serving runtime —
    /// per-plan latency histograms, pool/lifecycle/store counters, and
    /// the FrontEnd's connection-plane section. Render it with
    /// [`MetricsSnapshot::to_json`] or [`MetricsSnapshot::render_text`].
    pub fn stats(&mut self) -> Result<MetricsSnapshot> {
        let req = wire::request_header(0, wire::ADMIN_STATS, 0, 0);
        let payload = self.roundtrip_admin(&req)?;
        MetricsSnapshot::decode(&mut Cursor::new(&payload))
    }
}

struct WriteHalf {
    stream: TcpStream,
    next_id: u32,
}

struct SessionState {
    /// Responses decoded but not yet claimed by their waiter.
    done: HashMap<u32, Result<Vec<f32>>>,
    /// Whether some waiter currently holds the read side.
    reading: bool,
    /// Set once the socket dies; every current and future wait fails.
    dead: Option<String>,
}

struct SessionInner {
    writer: Mutex<WriteHalf>,
    reader: Mutex<TcpStream>,
    state: Mutex<SessionState>,
    cv: Condvar,
}

/// A pipelined v2 connection: submit many requests without waiting,
/// resolve each [`PendingPredict`] in any order.
///
/// Waiting is cooperative: whichever waiter needs a response next takes
/// the read side, decodes one frame, files it by request id, and wakes
/// the others — no dedicated reader thread.
///
/// ```no_run
/// # use pretzel_core::frontend::{PredictRequest, Session};
/// # let session: Session = unimplemented!();
/// let a = session.submit(&PredictRequest::text("1,slow").plan(3).delayed())?;
/// let b = session.submit(&PredictRequest::text("5,fast").plan(3))?;
/// let fast = b.wait_one()?; // resolves before `a`'s flush
/// let slow = a.wait_one()?;
/// # Ok::<(), pretzel_data::DataError>(())
/// ```
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish()
    }
}

impl Session {
    /// Connects a pipelined v2 session.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Session> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Session {
            inner: Arc::new(SessionInner {
                writer: Mutex::new(WriteHalf { stream, next_id: 0 }),
                reader: Mutex::new(reader),
                state: Mutex::new(SessionState {
                    done: HashMap::new(),
                    reading: false,
                    dead: None,
                }),
                cv: Condvar::new(),
            }),
        })
    }

    /// Sends the request without waiting; the returned handle resolves it.
    pub fn submit(&self, request: &PredictRequest) -> Result<PendingPredict> {
        let body = request.encode()?;
        let id = {
            let mut w = self.inner.writer.lock();
            let id = w.next_id;
            w.next_id = w.next_id.wrapping_add(1);
            wire::write_v2(&mut w.stream, id, &body).map_err(io_err)?;
            id
        };
        Ok(PendingPredict {
            inner: Arc::clone(&self.inner),
            id,
        })
    }
}

/// One in-flight pipelined request; resolves independently of submission
/// order.
pub struct PendingPredict {
    inner: Arc<SessionInner>,
    id: u32,
}

impl std::fmt::Debug for PendingPredict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingPredict")
            .field("id", &self.id)
            .finish()
    }
}

impl PendingPredict {
    /// The request id this handle resolves.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Blocks until this request's response arrives (other waiters'
    /// responses are filed for them along the way).
    pub fn wait(self) -> Result<Vec<f32>> {
        loop {
            {
                let mut st = self.inner.state.lock();
                loop {
                    if let Some(result) = st.done.remove(&self.id) {
                        return result;
                    }
                    if let Some(msg) = &st.dead {
                        return Err(DataError::Runtime(msg.clone()));
                    }
                    if !st.reading {
                        st.reading = true;
                        break; // become the reader
                    }
                    self.inner.cv.wait(&mut st);
                }
            }
            // Read exactly one frame outside the state lock, then file it.
            let frame = {
                let mut rd = self.inner.reader.lock();
                wire::read_frame(&mut *rd)
            };
            let mut st = self.inner.state.lock();
            st.reading = false;
            match frame {
                Ok(ReadFrame::V2 { request_id, body }) => {
                    st.done.insert(request_id, wire::decode_response(&body));
                }
                Ok(ReadFrame::Eof) => st.dead = Some("frontend closed connection".into()),
                Ok(ReadFrame::V1(_)) => {
                    st.dead = Some("frontend answered a pipelined request with a v1 frame".into())
                }
                Ok(ReadFrame::Oversized(len)) => {
                    st.dead = Some(format!("frontend sent an oversized {len}-byte frame"))
                }
                Ok(ReadFrame::BadVersion(v)) => {
                    st.dead = Some(format!("frontend sent unknown wire version {v}"))
                }
                Err(e) => st.dead = Some(format!("frontend io: {e}")),
            }
            drop(st);
            self.inner.cv.notify_all();
        }
    }

    /// Like [`Self::wait`], for single-record requests.
    pub fn wait_one(self) -> Result<f32> {
        let scores = self.wait()?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }
}
