//! Frame codecs for the FrontEnd protocol: v1 (length-prefixed, one
//! request in flight) and v2 (versioned header carrying a per-request
//! `request_id`, so one connection can pipeline many predicts and receive
//! responses out of order).
//!
//! ```text
//! v1 frame := u32 body_len · body
//! v2 frame := magic[4] · u8 version · u8 flags · u16 reserved ·
//!             u32 request_id · u32 body_len · body
//! ```
//!
//! The two are self-describing on one socket: the v2 magic
//! `50 5A 57 B2` ("PZW·"), read as a little-endian u32, is `0xB2575A50` —
//! far above [`MAX_FRAME_BYTES`] — so no valid v1 length prefix can ever
//! alias it, and the parser needs no out-of-band negotiation. Responses
//! use the frame format of the request they answer; v2 responses echo the
//! request's `request_id`.

use pretzel_data::{DataError, Result};
use std::io::{ErrorKind, Read, Write};

/// Record kind tag on the wire.
pub(crate) const KIND_TEXT: u8 = 0;
/// Dense record kind tag.
pub(crate) const KIND_DENSE: u8 = 1;
/// Sparse (CSR triple) record kind tag.
pub(crate) const KIND_SPARSE: u8 = 2;
/// Admin verb: deploy a serialized model file.
pub(crate) const ADMIN_DEPLOY: u8 = 0x10;
/// Admin verb: undeploy (retire + drain + reclaim) a plan.
pub(crate) const ADMIN_UNDEPLOY: u8 = 0x11;
/// Admin verb: atomically repoint an alias to a plan.
pub(crate) const ADMIN_SWAP: u8 = 0x12;
/// Admin verb: list deployed plans and aliases.
pub(crate) const ADMIN_LIST: u8 = 0x13;
/// Admin verb: snapshot runtime telemetry (the `STATS` verb).
pub(crate) const ADMIN_STATS: u8 = 0x14;
/// Admin verb: roll an alias back one version in its history.
pub(crate) const ADMIN_ROLLBACK: u8 = 0x15;

/// Request flag: consult/populate the prediction-result cache.
pub const FLAG_RESULT_CACHE: u8 = 0b01;
/// Request flag: submit through the delayed batcher.
pub const FLAG_DELAYED_BATCH: u8 = 0b10;
/// Request flag: the body starts with an alias string; the header's
/// `plan_id` is ignored and the alias's current binding serves the
/// request (retrying across concurrent swaps/undeploys).
pub const FLAG_PLAN_ALIAS: u8 = 0b100;

/// Upper bound on one frame body. A length prefix above this is rejected
/// with a clean protocol error *before* any allocation happens — a garbage
/// or hostile prefix must never turn into a multi-gigabyte `vec![0; len]`.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// v2 frame magic. Its little-endian u32 value (`0xB2575A50`) exceeds
/// [`MAX_FRAME_BYTES`], so a v1 parser sees it as an oversized prefix and
/// a version-aware parser can branch on the first four bytes alone.
pub const WIRE_MAGIC: [u8; 4] = [0x50, 0x5A, 0x57, 0xB2];
/// Current protocol version carried in byte 4 of a v2 header.
pub const WIRE_V2: u8 = 2;
/// Fixed v2 header size: magic(4) + version(1) + flags(1) + reserved(2) +
/// request_id(4) + body_len(4).
pub const V2_HEADER_BYTES: usize = 16;

/// One frame read off a blocking stream.
#[derive(Debug)]
pub(crate) enum ReadFrame {
    /// A complete v1 body.
    V1(Vec<u8>),
    /// A complete v2 body with its request id.
    V2 { request_id: u32, body: Vec<u8> },
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The length prefix exceeded [`MAX_FRAME_BYTES`]; nothing allocated,
    /// body unread (the stream cannot be resynchronized past it).
    Oversized(u64),
    /// A v2 header with an unknown version byte; body unread.
    BadVersion(u8),
}

/// Reads one frame (v1 or v2, autodetected) off a blocking stream.
pub(crate) fn read_frame(stream: &mut impl Read) -> std::io::Result<ReadFrame> {
    let mut head = [0u8; 4];
    match stream.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(ReadFrame::Eof),
        Err(e) => return Err(e),
    }
    if head == WIRE_MAGIC {
        let mut rest = [0u8; V2_HEADER_BYTES - 4];
        stream.read_exact(&mut rest)?;
        let version = rest[0];
        if version != WIRE_V2 {
            return Ok(ReadFrame::BadVersion(version));
        }
        let request_id = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let len = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Ok(ReadFrame::Oversized(len as u64));
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        return Ok(ReadFrame::V2 { request_id, body });
    }
    let len = u32::from_le_bytes(head) as usize;
    if len > MAX_FRAME_BYTES {
        return Ok(ReadFrame::Oversized(len as u64));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(ReadFrame::V1(body))
}

/// Writes one v1 frame.
pub(crate) fn write_v1(stream: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    stream.write_all(&frame)
}

/// Writes one v2 frame carrying `request_id`.
pub(crate) fn write_v2(
    stream: &mut impl Write,
    request_id: u32,
    body: &[u8],
) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(V2_HEADER_BYTES + body.len());
    encode_v2_into(&mut frame, request_id, body);
    stream.write_all(&frame)
}

/// Appends one encoded v2 frame to `out` (the reactor's write queue).
pub(crate) fn encode_v2_into(out: &mut Vec<u8>, request_id: u32, body: &[u8]) {
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_V2);
    out.push(0); // flags
    out.extend_from_slice(&[0, 0]); // reserved
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
}

/// Appends one encoded v1 frame to `out`.
pub(crate) fn encode_v1_into(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
}

/// Outcome of scanning a connection's read buffer for the next frame.
#[derive(Debug, PartialEq)]
pub(crate) enum Parse {
    /// Not enough buffered bytes yet.
    NeedMore,
    /// One complete frame: protocol version (1 or 2), the request id
    /// (0 for v1 frames, which carry none), the body's byte range within
    /// the scanned slice, and how many bytes the frame consumed.
    Frame {
        version: u8,
        request_id: u32,
        body: std::ops::Range<usize>,
        consumed: usize,
    },
    /// Unrecoverable framing violation (oversized prefix, unknown
    /// version): the stream cannot be resynchronized — reply and close.
    Reject(String),
}

/// Incremental, allocation-free frame scan for the reactor's per-connection
/// read buffers. Never blocks: returns [`Parse::NeedMore`] until a whole
/// frame is buffered.
pub(crate) fn parse_frame(buf: &[u8]) -> Parse {
    if buf.len() < 4 {
        return Parse::NeedMore;
    }
    if buf[..4] == WIRE_MAGIC {
        if buf.len() < V2_HEADER_BYTES {
            return Parse::NeedMore;
        }
        let version = buf[4];
        if version != WIRE_V2 {
            return Parse::Reject(format!("unsupported wire version {version}"));
        }
        let request_id = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        let len = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Parse::Reject(format!(
                "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
            ));
        }
        if buf.len() < V2_HEADER_BYTES + len {
            return Parse::NeedMore;
        }
        return Parse::Frame {
            version: WIRE_V2,
            request_id,
            body: V2_HEADER_BYTES..V2_HEADER_BYTES + len,
            consumed: V2_HEADER_BYTES + len,
        };
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Parse::Reject(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
        ));
    }
    if buf.len() < 4 + len {
        return Parse::NeedMore;
    }
    Parse::Frame {
        version: 1,
        request_id: 0,
        body: 4..4 + len,
        consumed: 4 + len,
    }
}

// ---- Request/response body codecs (shared by clients and the server) ----

/// Encodes a request header: plan id plus packed kind/flags/record count.
pub(crate) fn request_header(plan: u32, kind: u8, flags: u8, n: usize) -> Vec<u8> {
    let mut req = Vec::new();
    req.extend_from_slice(&plan.to_le_bytes());
    let kind_flags = u32::from(kind) | (u32::from(flags) << 8) | ((n as u32) << 16);
    req.extend_from_slice(&kind_flags.to_le_bytes());
    req
}

pub(crate) fn encode_request_text(plan: u32, lines: &[&str], flags: u8) -> Vec<u8> {
    let mut req = request_header(plan, KIND_TEXT, flags, lines.len());
    for line in lines {
        req.extend_from_slice(&(line.len() as u32).to_le_bytes());
        req.extend_from_slice(line.as_bytes());
    }
    req
}

pub(crate) fn encode_request_text_alias(alias: &str, lines: &[&str], flags: u8) -> Vec<u8> {
    let mut req = request_header(0, KIND_TEXT, flags | FLAG_PLAN_ALIAS, lines.len());
    pretzel_data::serde_bin::wire::put_str(&mut req, alias);
    for line in lines {
        req.extend_from_slice(&(line.len() as u32).to_le_bytes());
        req.extend_from_slice(line.as_bytes());
    }
    req
}

pub(crate) fn encode_request_dense(plan: u32, records: &[&[f32]], flags: u8) -> Vec<u8> {
    let mut req = request_header(plan, KIND_DENSE, flags, records.len());
    for x in records {
        req.extend_from_slice(&(x.len() as u32).to_le_bytes());
        for v in *x {
            req.extend_from_slice(&v.to_le_bytes());
        }
    }
    req
}

pub(crate) fn encode_request_sparse(
    plan: u32,
    rows: &[(&[u32], &[f32])],
    dim: u32,
    flags: u8,
) -> Vec<u8> {
    let mut req = request_header(plan, KIND_SPARSE, flags, rows.len());
    for (indices, values) in rows {
        req.extend_from_slice(&dim.to_le_bytes());
        req.extend_from_slice(&(indices.len() as u32).to_le_bytes());
        for i in *indices {
            req.extend_from_slice(&i.to_le_bytes());
        }
        for v in *values {
            req.extend_from_slice(&v.to_le_bytes());
        }
    }
    req
}

/// Encodes a success response body (status 0 + scores).
pub(crate) fn encode_ok(scores: &[f32]) -> Vec<u8> {
    let mut body = Vec::with_capacity(5 + scores.len() * 4);
    body.push(0u8);
    body.extend_from_slice(&(scores.len() as u32).to_le_bytes());
    for &s in scores {
        body.extend_from_slice(&s.to_le_bytes());
    }
    body
}

/// Encodes an error response body (status 1 + message).
pub(crate) fn encode_err(msg: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(5 + msg.len());
    body.push(1u8);
    body.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    body.extend_from_slice(msg.as_bytes());
    body
}

/// Encodes an admin response body (status 2 + verb-specific payload).
pub(crate) fn encode_admin(payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + payload.len());
    body.push(2u8);
    body.extend_from_slice(payload);
    body
}

/// Encodes an execution-fault response body (status 3 + panic message).
/// Distinct from status 1 so clients can tell "the operator crashed on
/// this request" (retryable elsewhere, counts against the plan's fault
/// budget) from ordinary request errors.
pub(crate) fn encode_fault(msg: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(5 + msg.len());
    body.push(3u8);
    body.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    body.extend_from_slice(msg.as_bytes());
    body
}

/// Encodes a plan-quarantined response body (status 4 + plan id): the
/// plan's fault budget is exhausted and its gate is closed.
pub(crate) fn encode_quarantined(plan: u32) -> Vec<u8> {
    let mut body = Vec::with_capacity(5);
    body.push(4u8);
    body.extend_from_slice(&plan.to_le_bytes());
    body
}

/// Decodes a response body into scores (or the server's error, mapped
/// back onto the typed [`DataError`] variants the statuses carry).
pub(crate) fn decode_response(body: &[u8]) -> Result<Vec<f32>> {
    use pretzel_data::serde_bin::Cursor;
    let (&status, rest) = body
        .split_first()
        .ok_or_else(|| DataError::Runtime("empty frame".into()))?;
    let mut cur = Cursor::new(rest);
    match status {
        0 => cur.f32s(),
        1 => {
            let len = cur.u32()? as usize;
            let msg = String::from_utf8_lossy(&rest[4..(4 + len).min(rest.len())]).into_owned();
            Err(DataError::Runtime(format!("server error: {msg}")))
        }
        3 => {
            let len = cur.u32()? as usize;
            let msg = String::from_utf8_lossy(&rest[4..(4 + len).min(rest.len())]).into_owned();
            Err(DataError::ExecutionFault(msg))
        }
        4 => Err(DataError::PlanQuarantined(cur.u32()?)),
        s => Err(DataError::Runtime(format!("bad response status {s}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_cannot_alias_a_valid_v1_prefix() {
        let as_len = u32::from_le_bytes(WIRE_MAGIC) as usize;
        assert!(
            as_len > MAX_FRAME_BYTES,
            "magic {as_len:#x} must exceed MAX_FRAME_BYTES so v1/v2 detection is unambiguous"
        );
    }

    #[test]
    fn incremental_parse_v2_roundtrip() {
        let mut buf = Vec::new();
        encode_v2_into(&mut buf, 42, b"hello");
        encode_v2_into(&mut buf, 43, b"world!");
        // Every prefix short of the first full frame needs more bytes.
        for cut in 0..V2_HEADER_BYTES + 5 {
            assert_eq!(parse_frame(&buf[..cut]), Parse::NeedMore, "cut {cut}");
        }
        let Parse::Frame {
            version,
            request_id,
            body,
            consumed,
        } = parse_frame(&buf)
        else {
            panic!("expected a frame");
        };
        assert_eq!((version, request_id), (WIRE_V2, 42));
        assert_eq!(&buf[body], b"hello");
        let Parse::Frame {
            request_id, body, ..
        } = parse_frame(&buf[consumed..])
        else {
            panic!("expected second frame");
        };
        assert_eq!(request_id, 43);
        assert_eq!(&buf[consumed..][body], b"world!");
    }

    #[test]
    fn incremental_parse_v1_roundtrip() {
        let mut buf = Vec::new();
        encode_v1_into(&mut buf, b"abc");
        let Parse::Frame {
            version,
            request_id,
            body,
            consumed,
        } = parse_frame(&buf)
        else {
            panic!("expected a frame");
        };
        assert_eq!((version, request_id, consumed), (1, 0, 7));
        assert_eq!(&buf[body], b"abc");
    }

    #[test]
    fn hostile_prefixes_reject_without_allocation() {
        // v1 oversized prefix.
        let huge = (u32::MAX).to_le_bytes();
        assert!(matches!(parse_frame(&huge), Parse::Reject(_)));
        // v2 oversized body length.
        let mut v2 = WIRE_MAGIC.to_vec();
        v2.extend_from_slice(&[WIRE_V2, 0, 0, 0]);
        v2.extend_from_slice(&7u32.to_le_bytes());
        v2.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse_frame(&v2), Parse::Reject(_)));
        // Unknown version byte.
        let mut bad = WIRE_MAGIC.to_vec();
        bad.extend_from_slice(&[9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        match parse_frame(&bad) {
            Parse::Reject(msg) => assert!(msg.contains("version 9"), "{msg}"),
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn blocking_reader_matches_incremental_parser() {
        let mut buf = Vec::new();
        encode_v1_into(&mut buf, b"one");
        encode_v2_into(&mut buf, 7, b"two");
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor).unwrap() {
            ReadFrame::V1(b) => assert_eq!(b, b"one"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut cursor).unwrap() {
            ReadFrame::V2 { request_id, body } => {
                assert_eq!(request_id, 7);
                assert_eq!(body, b"two");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(read_frame(&mut cursor).unwrap(), ReadFrame::Eof));
    }
}
