//! Lock-free fixed-size slab for per-connection reactor state.
//!
//! Accept and close are the FrontEnd's hot control-plane path; under a
//! reactor pool they race across threads, so the free list is a Treiber
//! stack of slot indices whose head packs `(aba_tag << 32) | (index + 1)`
//! into one `AtomicU64` — the pointer-width-CAS recipe of Blelloch & Wei's
//! constant-time fixed-size allocation: a tag bump on every successful
//! push/pop makes the classic ABA reuse race unobservable, and both
//! `insert` and `remove` are O(1) with no global lock.
//!
//! Each slot additionally carries a **generation** counter, bumped on
//! every `remove`: completion tokens `(slot, generation)` handed to the
//! scheduler stay valid identifiers even after the connection closes and
//! the slot is recycled — a stale completion simply fails the generation
//! check and is dropped instead of writing into someone else's connection.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Sentinel for "no next slot" in the free list (indices store `i + 1`).
const NIL: u32 = 0;

struct Slot<T> {
    /// Free-list link: `next_index + 1`, or [`NIL`].
    next: AtomicU32,
    /// Bumped on every `remove`; tokens carry the value they observed.
    generation: AtomicU32,
    value: UnsafeCell<Option<T>>,
}

/// A fixed-capacity concurrent slab. `insert`/`remove` are lock-free;
/// value access is single-owner (the reactor thread that owns the slot).
pub(crate) struct ConnSlab<T> {
    slots: Box<[Slot<T>]>,
    /// Packed Treiber head: `(tag << 32) | (index + 1)`.
    head: AtomicU64,
    occupied: AtomicUsize,
}

// Safety: values move in through `insert` and out through `remove`; between
// those, `with` hands out exclusive access only to the slot's unique owner
// (enforced by the caller per the method contracts below).
unsafe impl<T: Send> Sync for ConnSlab<T> {}
unsafe impl<T: Send> Send for ConnSlab<T> {}

impl<T> ConnSlab<T> {
    /// Builds a slab of `capacity` slots, all free.
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).min(u32::MAX as usize - 1);
        let slots: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                // Thread the initial free list 0 -> 1 -> ... -> NIL.
                next: AtomicU32::new(if i + 1 < capacity { i as u32 + 2 } else { NIL }),
                generation: AtomicU32::new(0),
                value: UnsafeCell::new(None),
            })
            .collect();
        ConnSlab {
            slots,
            head: AtomicU64::new(1), // index 0, tag 0
            occupied: AtomicUsize::new(0),
        }
    }

    /// Total slot count.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently holding a value.
    pub(crate) fn occupied(&self) -> usize {
        self.occupied.load(Ordering::Acquire)
    }

    /// Claims a free slot for `value`; returns its `(slot, generation)`
    /// token, or `None` (with `value` given back) when the slab is full.
    pub(crate) fn insert(&self, value: T) -> Option<(u32, u32)> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let link = (head & 0xffff_ffff) as u32;
            if link == NIL {
                return None; // slab full
            }
            let index = link - 1;
            let next = self.slots[index as usize].next.load(Ordering::Acquire);
            let tag = head >> 32;
            let new_head = ((tag + 1) << 32) | u64::from(next);
            match self.head.compare_exchange_weak(
                head,
                new_head,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // The slot is exclusively ours until pushed back.
                    unsafe { *self.slots[index as usize].value.get() = Some(value) };
                    self.occupied.fetch_add(1, Ordering::AcqRel);
                    let generation = self.slots[index as usize]
                        .generation
                        .load(Ordering::Acquire);
                    return Some((index, generation));
                }
                Err(current) => head = current,
            }
        }
    }

    /// The slot's current generation (for validating completion tokens).
    pub(crate) fn generation(&self, slot: u32) -> u32 {
        self.slots[slot as usize].generation.load(Ordering::Acquire)
    }

    /// Runs `f` with exclusive access to the slot's value.
    ///
    /// # Safety
    /// The caller must be the slot's unique owner (it obtained `slot` from
    /// [`Self::insert`] and has not yet called [`Self::remove`]), and must
    /// not re-enter `with`/`remove` for the *same* slot from `f`.
    pub(crate) unsafe fn with<R>(&self, slot: u32, f: impl FnOnce(&mut T) -> R) -> R {
        let value = &mut *self.slots[slot as usize].value.get();
        f(value.as_mut().expect("slot occupied by owner"))
    }

    /// Takes the value out, bumps the generation (invalidating outstanding
    /// tokens), and returns the slot to the free list.
    ///
    /// # Safety
    /// Same ownership contract as [`Self::with`]; after `remove` the slot
    /// token must not be used again.
    pub(crate) unsafe fn remove(&self, slot: u32) -> T {
        let value = (*self.slots[slot as usize].value.get())
            .take()
            .expect("slot occupied by owner");
        // Invalidate tokens before the slot becomes claimable again.
        self.slots[slot as usize]
            .generation
            .fetch_add(1, Ordering::AcqRel);
        self.occupied.fetch_sub(1, Ordering::AcqRel);
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let link = (head & 0xffff_ffff) as u32;
            self.slots[slot as usize]
                .next
                .store(link, Ordering::Release);
            let tag = head >> 32;
            let new_head = ((tag + 1) << 32) | u64::from(slot + 1);
            match self.head.compare_exchange_weak(
                head,
                new_head,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return value,
                Err(current) => head = current,
            }
        }
    }
}

impl<T> std::fmt::Debug for ConnSlab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnSlab")
            .field("capacity", &self.capacity())
            .field("occupied", &self.occupied())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_remove_roundtrip_and_capacity() {
        let slab = ConnSlab::new(2);
        let (a, _) = slab.insert(10u32).unwrap();
        let (b, _) = slab.insert(20u32).unwrap();
        assert_eq!(slab.occupied(), 2);
        assert!(slab.insert(30).is_none(), "full slab refuses");
        unsafe {
            assert_eq!(slab.with(a, |v| *v), 10);
            assert_eq!(slab.remove(b), 20);
        }
        let (c, _) = slab.insert(40).unwrap();
        unsafe {
            assert_eq!(slab.with(c, |v| *v), 40);
            slab.remove(a);
            slab.remove(c);
        }
        assert_eq!(slab.occupied(), 0);
    }

    #[test]
    fn generation_invalidates_stale_tokens() {
        let slab = ConnSlab::new(1);
        let (slot, gen0) = slab.insert(1u8).unwrap();
        unsafe { slab.remove(slot) };
        let (slot2, gen1) = slab.insert(2u8).unwrap();
        assert_eq!(slot, slot2, "single slot recycles");
        assert_ne!(gen0, gen1, "recycled slot has a fresh generation");
        assert_eq!(slab.generation(slot), gen1);
        unsafe { slab.remove(slot2) };
    }

    #[test]
    fn concurrent_churn_never_double_allocates() {
        let slab = Arc::new(ConnSlab::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let slab = Arc::clone(&slab);
                std::thread::spawn(move || {
                    for i in 0..2000u32 {
                        if let Some((slot, _)) = slab.insert(t * 10_000 + i) {
                            // Exclusive ownership: the value we read must be
                            // exactly the one we put in.
                            let seen = unsafe { slab.with(slot, |v| *v) };
                            assert_eq!(seen, t * 10_000 + i);
                            unsafe { slab.remove(slot) };
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(slab.occupied(), 0, "all slots returned");
    }
}
