//! Event-loop reactor pool: the connection-scalable serving mode.
//!
//! A fixed set of reactor threads shares one non-blocking listener and a
//! lock-free [`ConnSlab`] of per-connection state. Each reactor owns an
//! epoll instance; readiness events drive a per-connection state machine —
//! read into a buffer, incrementally parse frames ([`wire::parse_frame`]),
//! dispatch through the same request logic the blocking path uses, and
//! drain a write-back queue under `EPOLLOUT`. Requests whose results
//! materialize later (batch engine, delayed batcher) register a
//! [`CompletionHandle`]; the completing thread pushes the encoded response
//! onto the owning reactor's queue and pokes its eventfd, so no thread
//! ever parks per request.
//!
//! Completion routing is independent of the scheduler's execution plane:
//! the handle is keyed by connection token, not by executor, so a chunk
//! whose final stage ran on a *stealing* worker (sharded plane) completes
//! through exactly the same path as one that never migrated. Ingest
//! buffers leased here return to the runtime's ingest arena from whichever
//! executor finished the request — the pool's cross-thread return path.
//!
//! Connection identity is the slab token `(slot, generation)` packed into
//! the epoll user-data word. The generation check makes every stale
//! reference — a late completion for a closed connection, a readiness
//! event harvested in the same batch as the close — drop harmlessly
//! instead of touching a recycled slot.

use super::slab::ConnSlab;
use super::sys::{self, Epoll, EpollEvent, EventFd};
use super::wire::{self, Parse};
use super::{encode_error, serve_frame, Dispatch, FrontEndStats, Responder, ServerShared};
use crossbeam::queue::SegQueue;
use pretzel_data::Result;
use std::collections::{BTreeMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Epoll user-data word for the shared listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll user-data word for a reactor's wake eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Cap on unanswered pipelined requests per v2 connection; beyond it the
/// peer is violating flow control and the connection closes.
const MAX_IN_FLIGHT: usize = 4096;

/// Read-side scratch buffer per reactor thread.
const READ_CHUNK: usize = 64 * 1024;

/// Compact the write queue once this many bytes are already flushed.
const WRITE_COMPACT_BYTES: usize = 64 * 1024;

fn pack_token(slot: u32, generation: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(slot)
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> i32 {
    -1 // unreachable: `sys::SUPPORTED` gates pool construction
}

/// How a queued response is framed back to the client.
#[derive(Clone, Copy, Debug)]
enum ResponseTag {
    /// v1 carries no request id; `seq` restores submission order.
    V1 { seq: u64 },
    /// v2 echoes the request id; responses emit as they complete.
    V2 { request_id: u32 },
}

/// A finished request's encoded response, en route to its reactor.
struct Completion {
    slot: u32,
    generation: u32,
    tag: ResponseTag,
    body: Vec<u8>,
    /// When the completing thread queued this (telemetry on only): the
    /// drain records queue-to-flush latency against it.
    enqueued: Option<Instant>,
}

/// One reactor's inbound completion lane.
struct ReactorIo {
    completions: SegQueue<Completion>,
    wake: EventFd,
}

/// State shared by every reactor thread and every completion handle.
struct ReactorShared {
    slab: ConnSlab<Conn>,
    ios: Vec<ReactorIo>,
    stop: AtomicBool,
    stats: Arc<FrontEndStats>,
    server: Arc<ServerShared>,
    listener: TcpListener,
}

/// Routes one request's eventual response back to the reactor that owns
/// its connection. Valid across connection close: a stale handle fails
/// the slab generation check and the completion is dropped.
#[derive(Clone)]
pub(super) struct CompletionHandle {
    shared: Arc<ReactorShared>,
    reactor: usize,
    slot: u32,
    generation: u32,
    tag: ResponseTag,
}

impl CompletionHandle {
    /// Queues an encoded response body and wakes the owning reactor.
    fn complete(&self, body: Vec<u8>) {
        let io = &self.shared.ios[self.reactor];
        let enqueued = self
            .shared
            .server
            .runtime
            .metrics_registry()
            .map(|_| Instant::now());
        io.completions.push(Completion {
            slot: self.slot,
            generation: self.generation,
            tag: self.tag,
            body,
            enqueued,
        });
        io.wake.signal();
    }

    /// Completes with a whole-batch outcome.
    pub(super) fn complete_result(&self, result: Result<Vec<f32>>) {
        let body = match result {
            Ok(scores) => wire::encode_ok(&scores),
            Err(e) => encode_error(&e),
        };
        self.complete(body);
    }

    /// Completes with a single-record outcome (delayed batcher).
    pub(super) fn complete_single(&self, result: Result<f32>) {
        self.complete_result(result.map(|s| vec![s]));
    }
}

impl std::fmt::Debug for CompletionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionHandle")
            .field("reactor", &self.reactor)
            .field("slot", &self.slot)
            .field("generation", &self.generation)
            .field("tag", &self.tag)
            .finish()
    }
}

/// Protocol state a connection locks into at its first frame.
enum Proto {
    /// No frame seen yet; either version may arrive.
    Unknown,
    /// v1: strictly ordered responses. Out-of-order completions park in
    /// `ready` until every earlier response has emitted.
    V1 {
        next_seq: u64,
        next_emit: u64,
        ready: BTreeMap<u64, Vec<u8>>,
    },
    /// v2: responses emit as they complete, tagged by request id.
    V2 { in_flight: HashSet<u32> },
}

/// Per-connection state machine, owned by exactly one reactor thread.
struct Conn {
    stream: TcpStream,
    fd: i32,
    token: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Whether `EPOLLOUT` is currently in the epoll interest set.
    want_write: bool,
    proto: Proto,
    /// Set on a fatal protocol error: flush queued bytes, then close.
    close_after_flush: bool,
}

/// What to do with a connection after handling an event.
#[derive(PartialEq)]
enum Action {
    Keep,
    Close,
}

/// The running reactor pool.
pub(super) struct ReactorPool {
    shared: Arc<ReactorShared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ReactorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorPool")
            .field("threads", &self.threads.len())
            .field("slab", &self.shared.slab)
            .finish()
    }
}

impl ReactorPool {
    /// Spawns `threads` reactors sharing `listener` and the request
    /// dispatch state. Fails fast if any epoll/eventfd cannot be created.
    pub(super) fn start(
        listener: TcpListener,
        server: Arc<ServerShared>,
        stats: Arc<FrontEndStats>,
        threads: usize,
        max_connections: usize,
    ) -> std::io::Result<ReactorPool> {
        listener.set_nonblocking(true)?;
        let threads = threads.max(1);
        let mut epolls = Vec::with_capacity(threads);
        let mut ios = Vec::with_capacity(threads);
        let listener_fd = {
            #[cfg(unix)]
            {
                use std::os::fd::AsRawFd;
                listener.as_raw_fd()
            }
            #[cfg(not(unix))]
            {
                -1
            }
        };
        for _ in 0..threads {
            let ep = Epoll::new()?;
            let wake = EventFd::new()?;
            // Level-triggered: every reactor polls the shared listener and
            // races to accept; losers see `WouldBlock`.
            ep.add(listener_fd, sys::EPOLLIN, TOKEN_LISTENER)?;
            ep.add(wake.raw(), sys::EPOLLIN, TOKEN_WAKE)?;
            epolls.push(ep);
            ios.push(ReactorIo {
                completions: SegQueue::new(),
                wake,
            });
        }
        let shared = Arc::new(ReactorShared {
            slab: ConnSlab::new(max_connections.max(1)),
            ios,
            stop: AtomicBool::new(false),
            stats,
            server,
            listener,
        });
        let threads = epolls
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pretzel-reactor-{i}"))
                    .spawn(move || run_reactor(shared, ep, i))
                    .expect("spawn reactor thread")
            })
            .collect();
        Ok(ReactorPool { shared, threads })
    }

    /// Signals every reactor and joins them; open connections close.
    pub(super) fn stop(self) {
        self.shared.stop.store(true, Ordering::Release);
        for io in &self.shared.ios {
            io.wake.signal();
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn run_reactor(shared: Arc<ReactorShared>, ep: Epoll, me: usize) {
    let mut events = [EpollEvent::zeroed(); 256];
    // Slots this thread accepted; connections never migrate between
    // reactors, which is what makes `slab.with` access exclusive.
    let mut owned: HashSet<u32> = HashSet::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    while !shared.stop.load(Ordering::Acquire) {
        let n = match ep.wait(&mut events, 100) {
            Ok(n) => n,
            Err(_) => continue,
        };
        for event in events.iter().take(n) {
            // Copy out of the packed struct before taking references.
            let data = event.data;
            let readiness = event.events;
            match data {
                TOKEN_WAKE => shared.ios[me].wake.drain(),
                TOKEN_LISTENER => accept_ready(&shared, &ep, &mut owned),
                token => {
                    let slot = (token & 0xffff_ffff) as u32;
                    let generation = (token >> 32) as u32;
                    if !owned.contains(&slot) || shared.slab.generation(slot) != generation {
                        continue; // stale event for a recycled slot
                    }
                    // Safety: this thread accepted the slot and is its only
                    // accessor until `teardown`.
                    let action = unsafe {
                        shared.slab.with(slot, |conn| {
                            conn_event(&shared, &ep, me, readiness, conn, &mut scratch)
                        })
                    };
                    if action == Action::Close {
                        teardown(&shared, &ep, &mut owned, slot);
                    }
                }
            }
        }
        drain_completions(&shared, &ep, me, &mut owned);
    }
    // Shutdown: close everything this reactor owns.
    for slot in owned.drain() {
        // Safety: owner teardown; no other accessor exists.
        let conn = unsafe { shared.slab.remove(slot) };
        let _ = ep.delete(conn.fd);
        shared.stats.open.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_ready(shared: &Arc<ReactorShared>, ep: &Epoll, owned: &mut HashSet<u32>) {
    loop {
        let stream = match shared.listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(_) => return,
        };
        shared.stats.accepted.fetch_add(1, Ordering::AcqRel);
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            continue;
        }
        let fd = raw_fd(&stream);
        let conn = Conn {
            stream,
            fd,
            token: 0,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            want_write: false,
            proto: Proto::Unknown,
            close_after_flush: false,
        };
        let Some((slot, generation)) = shared.slab.insert(conn) else {
            // Slab full: refuse by dropping (closing) the socket.
            continue;
        };
        let token = pack_token(slot, generation);
        // Safety: we just claimed the slot; nobody else references it.
        unsafe { shared.slab.with(slot, |c| c.token = token) };
        if ep.add(fd, sys::EPOLLIN | sys::EPOLLRDHUP, token).is_err() {
            unsafe { shared.slab.remove(slot) };
            continue;
        }
        owned.insert(slot);
        shared.stats.open.fetch_add(1, Ordering::AcqRel);
    }
}

fn teardown(shared: &Arc<ReactorShared>, ep: &Epoll, owned: &mut HashSet<u32>, slot: u32) {
    owned.remove(&slot);
    // Safety: owner teardown, outside any `with` on this slot.
    let conn = unsafe { shared.slab.remove(slot) };
    let _ = ep.delete(conn.fd);
    shared.stats.open.fetch_sub(1, Ordering::AcqRel);
    // Dropping `conn` closes the socket. In-flight completions for it
    // fail the generation check and vanish — same outcome as a blocking
    // connection thread exiting with results undelivered.
}

fn conn_event(
    shared: &Arc<ReactorShared>,
    ep: &Epoll,
    me: usize,
    readiness: u32,
    conn: &mut Conn,
    scratch: &mut [u8],
) -> Action {
    if readiness & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
        return Action::Close;
    }
    if readiness & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
        if read_ready(shared, me, conn, scratch) == Action::Close {
            return Action::Close;
        }
        // Replies queued by inline dispatch flush eagerly; most round
        // trips never arm `EPOLLOUT` at all.
        if flush(ep, conn) == Action::Close {
            return Action::Close;
        }
    }
    if readiness & sys::EPOLLOUT != 0 {
        return flush(ep, conn);
    }
    Action::Keep
}

/// Reads everything available, then parses and dispatches every complete
/// frame in the buffer.
fn read_ready(
    shared: &Arc<ReactorShared>,
    me: usize,
    conn: &mut Conn,
    scratch: &mut [u8],
) -> Action {
    let mut saw_eof = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Action::Close,
        }
    }

    let mut pos = 0;
    while !conn.close_after_flush {
        match wire::parse_frame(&conn.read_buf[pos..]) {
            Parse::NeedMore => break,
            Parse::Reject(msg) => {
                shared.stats.note_protocol_error();
                queue_protocol_error(conn, &msg);
                pos = conn.read_buf.len(); // stream is unrecoverable
                break;
            }
            Parse::Frame {
                version,
                request_id,
                body,
                consumed,
            } => {
                let body = pos + body.start..pos + body.end;
                pos += consumed;
                let tag = match frame_tag(shared, conn, version, request_id) {
                    Ok(tag) => tag,
                    Err(()) => {
                        pos = conn.read_buf.len();
                        break;
                    }
                };
                let handle = CompletionHandle {
                    shared: Arc::clone(shared),
                    reactor: me,
                    slot: (conn.token & 0xffff_ffff) as u32,
                    generation: (conn.token >> 32) as u32,
                    tag,
                };
                let dispatch = serve_frame(
                    &shared.server,
                    &conn.read_buf[body],
                    &Responder::Reactor(handle),
                );
                if let Dispatch::Ready(reply) = dispatch {
                    queue_response(conn, tag, &reply);
                }
            }
        }
    }
    if pos > 0 {
        conn.read_buf.drain(..pos);
    }
    if saw_eof {
        return Action::Close;
    }
    Action::Keep
}

/// Locks in (or validates) the connection's protocol version for one
/// frame and assigns its response tag. `Err` means a fatal violation was
/// queued and the rest of the buffer must be discarded.
fn frame_tag(
    shared: &ReactorShared,
    conn: &mut Conn,
    version: u8,
    request_id: u32,
) -> std::result::Result<ResponseTag, ()> {
    if matches!(conn.proto, Proto::Unknown) {
        conn.proto = if version == 1 {
            Proto::V1 {
                next_seq: 0,
                next_emit: 0,
                ready: BTreeMap::new(),
            }
        } else {
            Proto::V2 {
                in_flight: HashSet::new(),
            }
        };
    }
    match &mut conn.proto {
        Proto::V1 {
            next_seq: seq_counter,
            ..
        } if version == 1 => {
            let seq = *seq_counter;
            *seq_counter += 1;
            Ok(ResponseTag::V1 { seq })
        }
        Proto::V2 { in_flight } if version != 1 => {
            if in_flight.len() >= MAX_IN_FLIGHT {
                shared.stats.note_protocol_error();
                queue_protocol_error(
                    conn,
                    &format!("more than {MAX_IN_FLIGHT} pipelined requests in flight"),
                );
                return Err(());
            }
            if !in_flight.insert(request_id) {
                shared.stats.note_protocol_error();
                queue_protocol_error(
                    conn,
                    &format!("duplicate in-flight request id {request_id}"),
                );
                return Err(());
            }
            Ok(ResponseTag::V2 { request_id })
        }
        _ => {
            // A connection that switches framing mid-stream is confused;
            // trusting its future prefixes would mis-frame everything.
            shared.stats.note_protocol_error();
            queue_protocol_error(conn, "wire version changed mid-connection");
            Err(())
        }
    }
}

/// Queues one response under the connection's ordering discipline.
fn queue_response(conn: &mut Conn, tag: ResponseTag, body: &[u8]) {
    match (&mut conn.proto, tag) {
        (
            Proto::V1 {
                next_emit, ready, ..
            },
            ResponseTag::V1 { seq },
        ) => {
            // v1 clients read responses in request order; park completions
            // until every earlier one has emitted.
            ready.insert(seq, body.to_vec());
            while let Some(b) = ready.remove(next_emit) {
                wire::encode_v1_into(&mut conn.write_buf, &b);
                *next_emit += 1;
            }
        }
        (Proto::V2 { in_flight }, ResponseTag::V2 { request_id }) => {
            in_flight.remove(&request_id);
            wire::encode_v2_into(&mut conn.write_buf, request_id, body);
        }
        // A completion can race a protocol error that reset expectations;
        // frame it to match its request so the client can still decode it.
        (_, ResponseTag::V1 { .. }) => wire::encode_v1_into(&mut conn.write_buf, body),
        (_, ResponseTag::V2 { request_id }) => {
            wire::encode_v2_into(&mut conn.write_buf, request_id, body)
        }
    }
}

/// Queues a fatal protocol-error reply (framed per the connection's
/// locked-in version) and marks the connection to close once flushed.
fn queue_protocol_error(conn: &mut Conn, msg: &str) {
    let body = wire::encode_err(msg);
    match &conn.proto {
        // No request id to echo: `u32::MAX` marks a connection-level error.
        Proto::V2 { .. } => wire::encode_v2_into(&mut conn.write_buf, u32::MAX, &body),
        _ => wire::encode_v1_into(&mut conn.write_buf, &body),
    }
    conn.close_after_flush = true;
}

/// Writes as much queued output as the socket accepts, arming or
/// disarming `EPOLLOUT` interest as the backlog requires.
fn flush(ep: &Epoll, conn: &mut Conn) -> Action {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return Action::Close,
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Action::Close,
        }
    }
    if conn.write_pos >= conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
        if conn.close_after_flush {
            return Action::Close;
        }
        if conn.want_write {
            conn.want_write = false;
            let _ = ep.modify(conn.fd, sys::EPOLLIN | sys::EPOLLRDHUP, conn.token);
        }
    } else {
        if !conn.want_write {
            conn.want_write = true;
            let _ = ep.modify(
                conn.fd,
                sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT,
                conn.token,
            );
        }
        if conn.write_pos >= WRITE_COMPACT_BYTES {
            conn.write_buf.drain(..conn.write_pos);
            conn.write_pos = 0;
        }
    }
    Action::Keep
}

/// Applies queued completions to their connections' write queues.
fn drain_completions(shared: &Arc<ReactorShared>, ep: &Epoll, me: usize, owned: &mut HashSet<u32>) {
    while let Some(c) = shared.ios[me].completions.pop() {
        if let (Some(reg), Some(t0)) = (shared.server.runtime.metrics_registry(), c.enqueued) {
            reg.record_completion_flush(t0.elapsed().as_nanos() as u64);
        }
        if !owned.contains(&c.slot) || shared.slab.generation(c.slot) != c.generation {
            continue; // connection closed while the request ran
        }
        // Safety: this thread owns the slot (checked above).
        let action = unsafe {
            shared.slab.with(c.slot, |conn| {
                queue_response(conn, c.tag, &c.body);
                flush(ep, conn)
            })
        };
        if action == Action::Close {
            teardown(shared, ep, owned, c.slot);
        }
    }
}
