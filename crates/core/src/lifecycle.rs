//! The model lifecycle control plane: admission gates, aliases, counters.
//!
//! PRETZEL's headline scenario is a runtime serving *hundreds to thousands*
//! of model pipelines under constant churn — new versions deploy, old ones
//! retire, aliases flip — so deployed models must be first-class **mutable**
//! state, not append-only catalog rows. This module holds the control-plane
//! primitives the [`crate::runtime::Runtime`] composes into
//! `deploy`/`undeploy`/`swap`/`list`:
//!
//! * [`PlanGate`] — a per-plan admission gate plus in-flight counter. Every
//!   submission (request-response call or batch) holds a [`GatePass`] for
//!   its lifetime; `undeploy` *retires* the gate (new submissions fail fast
//!   with [`DataError::PlanRetired`]) and then waits for the count to drain
//!   to zero, so outstanding `BatchHandle`s complete on the old plan. The
//!   retire/drain discipline follows the epoch-style reclamation of
//!   Blelloch & Wei (arXiv:2008.04296): writers announce an epoch flip
//!   (retire), readers finish inside their epoch (passes drain), and only
//!   then is memory reclaimed.
//! * [`AliasMap`] — named endpoints. `swap` atomically repoints a stable
//!   alias from version *k* to version *k+1* (a single pointer flip under
//!   the write lock, the LL/SC-style version-pointer move of
//!   arXiv:1911.09671), so alias-addressed clients never observe a gap:
//!   every request resolves to *some* deployed version.
//! * [`DeployOptions`] / [`UndeployReport`] / [`PlanInfo`] — the admin
//!   surface types the wire protocol serializes.
//! * [`LifecycleStats`] — monotonic churn counters.
//!
//! The reclamation half of the lifecycle (freeing parameters whose last
//! plan retired) lives in the ref-counted
//! [`crate::object_store::ObjectStore`]; see `retain_plan`/`release_plan`.

use crate::runtime::PlanId;
use parking_lot::{Condvar, Mutex, RwLock};
use pretzel_data::{DataError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-plan admission state: retired/quarantined flags + in-flight count.
#[derive(Debug)]
struct GateState {
    retired: bool,
    quarantined: bool,
    in_flight: usize,
}

/// Admission gate and in-flight counter of one deployed plan.
///
/// The gate is the drain mechanism behind `undeploy`: submissions `enter`
/// (failing fast once retired) and hold the returned [`GatePass`] until the
/// work completes; `retire` + [`PlanGate::wait_drained`] gives the caller a
/// point in time after which no execution can touch the plan.
#[derive(Debug)]
pub struct PlanGate {
    state: Mutex<GateState>,
    drained: Condvar,
}

impl PlanGate {
    /// Creates an open gate with nothing in flight.
    pub fn new() -> Arc<Self> {
        Arc::new(PlanGate {
            state: Mutex::new(GateState {
                retired: false,
                quarantined: false,
                in_flight: 0,
            }),
            drained: Condvar::new(),
        })
    }

    /// Admits one submission, or rejects it with
    /// [`DataError::PlanRetired`] once the plan was retired (or
    /// [`DataError::PlanQuarantined`] once the fault policy closed the
    /// gate). The returned pass decrements the in-flight count when dropped.
    pub fn enter(self: &Arc<Self>, id: PlanId) -> Result<GatePass> {
        let mut g = self.state.lock();
        if g.retired {
            return Err(DataError::PlanRetired(id));
        }
        if g.quarantined {
            return Err(DataError::PlanQuarantined(id));
        }
        g.in_flight += 1;
        Ok(GatePass {
            gate: Arc::clone(self),
        })
    }

    /// Marks the plan retired; returns `true` on the first retire (the
    /// caller that wins owns the teardown), `false` if already retired.
    pub fn retire(&self) -> bool {
        let mut g = self.state.lock();
        !std::mem::replace(&mut g.retired, true)
    }

    /// Closes the gate to new submissions after the fault policy tripped;
    /// in-flight work completes normally (the quarantine boundary is
    /// admission, not execution). Returns `true` on the first call (that
    /// caller owns the recovery action — alias rollback), `false` if the
    /// plan was already quarantined.
    pub fn quarantine(&self) -> bool {
        let mut g = self.state.lock();
        !std::mem::replace(&mut g.quarantined, true)
    }

    /// Blocks until every admitted submission has completed.
    pub fn wait_drained(&self) {
        let mut g = self.state.lock();
        while g.in_flight > 0 {
            self.drained.wait(&mut g);
        }
    }

    /// True once [`Self::retire`] ran.
    pub fn is_retired(&self) -> bool {
        self.state.lock().retired
    }

    /// True once [`Self::quarantine`] ran.
    pub fn is_quarantined(&self) -> bool {
        self.state.lock().quarantined
    }

    /// Number of submissions currently holding a pass.
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight
    }
}

/// One admitted submission's hold on its plan: keeps `undeploy` from
/// completing until this work finishes. Dropped by the request-response
/// engine at return, and by the scheduler when a batch's last chunk
/// completes.
#[derive(Debug)]
pub struct GatePass {
    gate: Arc<PlanGate>,
}

impl Drop for GatePass {
    fn drop(&mut self) {
        let mut g = self.gate.state.lock();
        g.in_flight -= 1;
        if g.in_flight == 0 {
            self.gate.drained.notify_all();
        }
    }
}

/// Named serving endpoints: alias → version history of deployed plans.
///
/// Each alias keeps a **version stack** — the top is the current binding,
/// deeper entries are previous live-at-the-time versions. `repoint` (the
/// `swap` primitive) pushes under the write lock, so concurrent resolvers
/// see either the old or the new version — never neither — and `rollback`
/// pops back to version *k−1* with the same single-pointer-flip cost. The
/// history is what makes fault-driven recovery a control-plane no-op: when
/// the fault policy quarantines the current version, the previous one is
/// one pop away.
#[derive(Debug, Default)]
pub struct AliasMap {
    inner: RwLock<HashMap<String, Vec<PlanId>>>,
}

impl AliasMap {
    /// Creates an empty alias map.
    pub fn new() -> Self {
        AliasMap::default()
    }

    /// Resolves an alias to its current plan, if bound.
    pub fn resolve(&self, alias: &str) -> Option<PlanId> {
        self.inner.read().get(alias).and_then(|v| v.last().copied())
    }

    /// Atomically repoints `alias` to `id`, returning the previous binding.
    /// The previous version stays in the alias's history so a later
    /// `rollback` can restore it. Re-pointing at a version already in the
    /// history moves it to the top instead of duplicating it, so swap
    /// churn between two versions cannot grow the stack unboundedly.
    pub fn repoint(&self, alias: &str, id: PlanId) -> Option<PlanId> {
        let mut inner = self.inner.write();
        let stack = inner.entry(alias.to_string()).or_default();
        let prev = stack.last().copied();
        if prev != Some(id) {
            stack.retain(|&v| v != id);
            stack.push(id);
        }
        prev
    }

    /// Pops `alias` back to its previous version (manual operator
    /// rollback). Returns the new current version, or `None` when the
    /// alias is unbound or has no history to roll back to.
    pub fn rollback(&self, alias: &str) -> Option<PlanId> {
        let mut inner = self.inner.write();
        let stack = inner.get_mut(alias)?;
        if stack.len() < 2 {
            return None;
        }
        stack.pop();
        stack.last().copied()
    }

    /// Rolls `alias` back to the most recent *previous* version for which
    /// `live` holds, discarding any dead versions in between (automatic
    /// fault recovery: retired versions may still sit in the history).
    /// Leaves the stack untouched and returns `None` when no live
    /// predecessor exists.
    pub fn rollback_until(&self, alias: &str, live: impl Fn(PlanId) -> bool) -> Option<PlanId> {
        let mut inner = self.inner.write();
        let stack = inner.get_mut(alias)?;
        let top = stack.len().checked_sub(1)?;
        let pos = stack[..top].iter().rposition(|&v| live(v))?;
        stack.truncate(pos + 1);
        stack.last().copied()
    }

    /// Removes `id` from every alias's history (undeploy cleanup). An
    /// alias whose *current* version was `id` falls back to its previous
    /// version; an alias left with an empty history is unbound. Returns
    /// how many aliases were affected.
    pub fn drop_plan(&self, id: PlanId) -> usize {
        let mut inner = self.inner.write();
        let mut affected = 0;
        inner.retain(|_, stack| {
            let before = stack.len();
            stack.retain(|&v| v != id);
            if stack.len() != before {
                affected += 1;
            }
            !stack.is_empty()
        });
        affected
    }

    /// All current bindings, sorted by alias (admin LIST payload).
    pub fn snapshot(&self) -> Vec<(String, PlanId)> {
        let mut all: Vec<(String, PlanId)> = self
            .inner
            .read()
            .iter()
            .filter_map(|(a, stack)| stack.last().map(|&id| (a.clone(), id)))
            .collect();
        all.sort();
        all
    }

    /// The full version history of `alias`, oldest first (top of stack —
    /// the current version — last). Empty when unbound.
    pub fn history(&self, alias: &str) -> Vec<PlanId> {
        self.inner.read().get(alias).cloned().unwrap_or_default()
    }

    /// Number of bound aliases.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no alias is bound.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

/// Options for [`crate::runtime::Runtime::deploy`].
#[derive(Debug, Clone, Default)]
pub struct DeployOptions {
    /// Bind (or repoint) this alias to the new plan on success.
    pub alias: Option<String>,
    /// Reserve a dedicated executor + pool for the plan (paper §4.2.2).
    pub reserved: bool,
}

/// What an `undeploy` reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UndeployReport {
    /// Parameter heap bytes freed from the Object Store (objects whose
    /// plan refcount hit zero).
    pub freed_param_bytes: usize,
    /// Parameter objects freed from the Object Store.
    pub freed_params: usize,
    /// Physical stages garbage-collected from the runtime catalog.
    pub dropped_stages: usize,
    /// Aliases that pointed at the plan and were unbound.
    pub dropped_aliases: usize,
}

/// One row of the admin `LIST` view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanInfo {
    /// The plan id.
    pub id: PlanId,
    /// True once the plan was undeployed (tombstone: lookups keep failing
    /// with a clean [`DataError::PlanRetired`] instead of "unknown plan").
    pub retired: bool,
    /// True once the fault policy closed the plan's gate (too many
    /// execution faults inside the sliding window).
    pub quarantined: bool,
    /// Submissions currently holding a gate pass.
    pub in_flight: usize,
    /// Aliases currently bound to this plan, sorted.
    pub aliases: Vec<String>,
}

/// Monotonic churn counters (benchmarks and the admin surface read these).
#[derive(Debug, Default)]
pub struct LifecycleStats {
    deploys: AtomicU64,
    undeploys: AtomicU64,
    swaps: AtomicU64,
    stages_reused: AtomicU64,
}

impl LifecycleStats {
    /// Records one completed deploy.
    pub fn note_deploy(&self) {
        self.deploys.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed undeploy.
    pub fn note_undeploy(&self) {
        self.undeploys.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed alias swap.
    pub fn note_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` physical stages a compile served from catalog residency
    /// instead of rebuilding — the redeploy fast path (`catalog_gc=false`
    /// keeps retired stages resident precisely so this counter moves on
    /// re-deploys of a recently retired version).
    pub fn note_stages_reused(&self, n: u64) {
        self.stages_reused.fetch_add(n, Ordering::Relaxed);
    }

    /// Physical stages served from catalog residency at compile time.
    pub fn stages_reused(&self) -> u64 {
        self.stages_reused.load(Ordering::Relaxed)
    }

    /// `(deploys, undeploys, swaps)` so far.
    pub fn counts(&self) -> (u64, u64, u64) {
        (
            self.deploys.load(Ordering::Relaxed),
            self.undeploys.load(Ordering::Relaxed),
            self.swaps.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_until_retired() {
        let gate = PlanGate::new();
        let pass = gate.enter(7).unwrap();
        assert_eq!(gate.in_flight(), 1);
        assert!(gate.retire(), "first retire wins");
        assert!(!gate.retire(), "second retire loses");
        let err = gate.enter(7).unwrap_err();
        assert!(matches!(err, DataError::PlanRetired(7)));
        drop(pass);
        assert_eq!(gate.in_flight(), 0);
        gate.wait_drained(); // returns immediately
    }

    #[test]
    fn wait_drained_blocks_until_passes_drop() {
        let gate = PlanGate::new();
        let pass = gate.enter(1).unwrap();
        gate.retire();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            g2.wait_drained();
            std::time::Instant::now()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let released_at = std::time::Instant::now();
        drop(pass);
        let drained_at = waiter.join().unwrap();
        assert!(drained_at >= released_at, "drain must wait for the pass");
    }

    #[test]
    fn alias_repoint_is_atomic_flip() {
        let aliases = AliasMap::new();
        assert!(aliases.resolve("sentiment").is_none());
        assert_eq!(aliases.repoint("sentiment", 3), None);
        assert_eq!(aliases.repoint("sentiment", 4), Some(3));
        assert_eq!(aliases.resolve("sentiment"), Some(4));
        aliases.repoint("other", 4);
        assert_eq!(aliases.drop_plan(4), 2);
        // "sentiment" falls back to its history; "other" had none and is
        // unbound.
        assert_eq!(aliases.resolve("sentiment"), Some(3));
        assert!(aliases.resolve("other").is_none());
        assert_eq!(aliases.drop_plan(3), 1);
        assert!(aliases.is_empty());
    }

    #[test]
    fn alias_history_pushes_on_swap_and_pops_on_rollback() {
        let aliases = AliasMap::new();
        aliases.repoint("m", 1);
        aliases.repoint("m", 2);
        aliases.repoint("m", 3);
        assert_eq!(aliases.history("m"), vec![1, 2, 3]);
        assert_eq!(aliases.rollback("m"), Some(2));
        assert_eq!(aliases.resolve("m"), Some(2));
        assert_eq!(aliases.rollback("m"), Some(1));
        assert_eq!(aliases.rollback("m"), None, "no history left");
        assert_eq!(aliases.resolve("m"), Some(1), "last version stays bound");
        assert_eq!(aliases.rollback("ghost"), None, "unbound alias");
    }

    #[test]
    fn alias_swap_churn_between_two_versions_does_not_grow_history() {
        let aliases = AliasMap::new();
        for _ in 0..100 {
            aliases.repoint("m", 1);
            aliases.repoint("m", 2);
        }
        assert_eq!(aliases.history("m"), vec![1, 2]);
        // Re-pointing at the current version is a no-op.
        assert_eq!(aliases.repoint("m", 2), Some(2));
        assert_eq!(aliases.history("m"), vec![1, 2]);
    }

    #[test]
    fn rollback_until_skips_dead_versions() {
        let aliases = AliasMap::new();
        aliases.repoint("m", 1);
        aliases.repoint("m", 2);
        aliases.repoint("m", 3);
        aliases.repoint("m", 4);
        // 2 and 3 are dead; auto-rollback from 4 must land on 1.
        assert_eq!(aliases.rollback_until("m", |id| id == 1), Some(1));
        assert_eq!(aliases.resolve("m"), Some(1));
        assert_eq!(aliases.history("m"), vec![1]);
        // No live predecessor: the stack is untouched.
        assert_eq!(aliases.rollback_until("m", |_| false), None);
        assert_eq!(aliases.resolve("m"), Some(1));
    }

    #[test]
    fn quarantine_closes_gate_but_lets_in_flight_finish() {
        let gate = PlanGate::new();
        let pass = gate.enter(9).unwrap();
        assert!(gate.quarantine(), "first quarantine wins");
        assert!(!gate.quarantine(), "second quarantine loses");
        assert!(gate.is_quarantined());
        assert!(!gate.is_retired());
        let err = gate.enter(9).unwrap_err();
        assert!(matches!(err, DataError::PlanQuarantined(9)));
        assert_eq!(gate.in_flight(), 1, "in-flight pass unaffected");
        drop(pass);
        gate.wait_drained();
    }

    #[test]
    fn stats_count() {
        let s = LifecycleStats::default();
        s.note_deploy();
        s.note_deploy();
        s.note_undeploy();
        s.note_swap();
        assert_eq!(s.counts(), (2, 1, 1));
    }
}
