//! Flour: the language-integrated API for authoring pipelines.
//!
//! "Flour is a language-integrated API similar to KeystoneML, RDDs or LINQ
//! where sequences of transformations are chained into DAGs and lazily
//! compiled for execution" (paper §4.1.1). A Flour program starts from a
//! [`FlourContext`], chains transformations, and ends with
//! [`Flour::plan`], which hands the DAG to the Oven optimizer.
//!
//! The sentiment-analysis program of the paper's Listing 1 looks like this:
//!
//! ```
//! use pretzel_core::flour::FlourContext;
//! use pretzel_ops::linear::LinearKind;
//! use pretzel_ops::synth;
//! use std::sync::Arc;
//!
//! let vocab = synth::vocabulary(0, 128);
//! let ctx = FlourContext::new();
//! let tokens = ctx.csv(',').select_text(1).tokenize();
//! let c_ngram = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 256)));
//! let w_ngram = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 256, &vocab)));
//! let program = c_ngram
//!     .concat(&w_ngram)
//!     .classifier_linear(Arc::new(synth::linear(3, 512, LinearKind::Logistic)));
//! let plan = program.plan().expect("valid SA pipeline");
//! assert!(plan.stages.len() <= 2);
//! ```

use crate::graph::{Input, TNode, TransformGraph};
use crate::oven;
use crate::plan::StagePlan;
use crate::stats::NodeStats;
use pretzel_data::{ColumnType, DataError, Result};
use pretzel_ops::bayes::NaiveBayesParams;
use pretzel_ops::feat::binner::BinnerParams;
use pretzel_ops::feat::concat::ConcatParams;
use pretzel_ops::feat::imputer::ImputerParams;
use pretzel_ops::feat::normalizer::NormalizerParams;
use pretzel_ops::feat::onehot::OneHotParams;
use pretzel_ops::feat::scaler::ScalerParams;
use pretzel_ops::kmeans::KMeansParams;
use pretzel_ops::linear::LinearParams;
use pretzel_ops::pca::PcaParams;
use pretzel_ops::text::csv::CsvParams;
use pretzel_ops::text::hashing::HashingParams;
use pretzel_ops::text::ngram::NgramParams;
use pretzel_ops::text::tokenizer::TokenizerParams;
use pretzel_ops::tree::{EnsembleParams, MulticlassTreeParams};
use pretzel_ops::Op;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

#[derive(Debug)]
struct BuilderState {
    source_type: ColumnType,
    nodes: Vec<TNode>,
}

/// Entry point of a Flour program; one context builds one pipeline DAG.
#[derive(Debug, Clone)]
pub struct FlourContext {
    inner: Rc<RefCell<Option<BuilderState>>>,
}

impl Default for FlourContext {
    fn default() -> Self {
        Self::new()
    }
}

impl FlourContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        FlourContext {
            inner: Rc::new(RefCell::new(None)),
        }
    }

    fn init(&self, source_type: ColumnType) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.is_none(), "FlourContext already has a source");
        *inner = Some(BuilderState {
            source_type,
            nodes: Vec::new(),
        });
    }

    /// Starts from CSV text input with the given separator
    /// (`CSV.FromText(',')` in the paper's Listing 1).
    pub fn csv(&self, separator: char) -> CsvStream {
        CsvStream {
            ctx: self.clone(),
            separator: separator as u8,
        }
    }

    /// Starts from a raw dense numeric source of the given dimensionality.
    pub fn dense_source(&self, dim: usize) -> Flour {
        self.init(ColumnType::F32Dense { len: dim });
        Flour {
            ctx: self.clone(),
            node: Input::Source,
            ty: ColumnType::F32Dense { len: dim },
        }
    }

    /// Starts from a raw sparse numeric source of the given dimensionality
    /// (pre-featurized requests arriving as CSR triples on the wire).
    pub fn sparse_source(&self, dim: usize) -> Flour {
        self.init(ColumnType::F32Sparse { len: dim });
        Flour {
            ctx: self.clone(),
            node: Input::Source,
            ty: ColumnType::F32Sparse { len: dim },
        }
    }

    /// Starts from a raw text source (no CSV framing).
    pub fn text_source(&self) -> Flour {
        self.init(ColumnType::Text);
        Flour {
            ctx: self.clone(),
            node: Input::Source,
            ty: ColumnType::Text,
        }
    }

    fn push(&self, op: Op, inputs: Vec<Input>, ty_hint: ColumnType) -> Flour {
        let mut inner = self.inner.borrow_mut();
        let state = inner
            .as_mut()
            .expect("Flour transformations require a source; call csv()/dense_source() first");
        // Best-effort eager typing for wiring convenience; authoritative
        // validation happens in Oven.
        state.nodes.push(TNode {
            op,
            inputs,
            stats: NodeStats::default(),
        });
        let id = (state.nodes.len() - 1) as u32;
        Flour {
            ctx: self.clone(),
            node: Input::Node(id),
            ty: ty_hint,
        }
    }

    fn node_inputs(&self, id: u32) -> Vec<Input> {
        self.inner
            .borrow()
            .as_ref()
            .expect("context initialized")
            .nodes[id as usize]
            .inputs
            .clone()
    }

    fn node_is_tokenizer(&self, id: u32) -> bool {
        matches!(
            self.inner
                .borrow()
                .as_ref()
                .expect("context initialized")
                .nodes[id as usize]
                .op,
            Op::Tokenizer(_)
        )
    }
}

/// A CSV input stream being configured (`FromText → Select`).
#[derive(Debug)]
pub struct CsvStream {
    ctx: FlourContext,
    separator: u8,
}

impl CsvStream {
    /// Selects a text field by index (`Select("Text")` over the schema).
    pub fn select_text(self, field: u32) -> Flour {
        self.ctx.init(ColumnType::Text);
        let params = CsvParams {
            separator: self.separator,
            output: pretzel_ops::text::csv::CsvOutput::TextField { index: field },
        };
        self.ctx.push(
            Op::CsvParse(Arc::new(params)),
            vec![Input::Source],
            ColumnType::Text,
        )
    }

    /// Decodes all fields as a dense vector of the given dimensionality.
    pub fn dense_features(self, dim: u32) -> Flour {
        self.ctx.init(ColumnType::Text);
        let params = CsvParams {
            separator: self.separator,
            output: pretzel_ops::text::csv::CsvOutput::DenseFields { len: dim },
        };
        self.ctx.push(
            Op::CsvParse(Arc::new(params)),
            vec![Input::Source],
            ColumnType::F32Dense { len: dim as usize },
        )
    }
}

/// A handle to one transformation's output; methods append transformations.
#[derive(Debug, Clone)]
pub struct Flour {
    ctx: FlourContext,
    node: Input,
    ty: ColumnType,
}

impl Flour {
    /// The (eagerly inferred) output type of this transformation.
    pub fn output_type(&self) -> ColumnType {
        self.ty
    }

    /// Attaches training statistics to this transformation's output
    /// (paper §4.1.1: max vector size, density, ...).
    pub fn with_stats(self, stats: NodeStats) -> Self {
        if let Input::Node(id) = self.node {
            let mut inner = self.ctx.inner.borrow_mut();
            inner.as_mut().expect("context initialized").nodes[id as usize].stats = stats;
        }
        self
    }

    fn dim(&self) -> u32 {
        self.ty.dimension().unwrap_or(0) as u32
    }

    /// Appends an arbitrary unary operator (escape hatch for operators
    /// without a dedicated combinator).
    pub fn apply(&self, op: Op) -> Flour {
        let ty = op.output_type(&[self.ty]).unwrap_or(ColumnType::F32Scalar);
        self.ctx.push(op, vec![self.node], ty)
    }

    /// Tokenizes text with the default whitespace/punctuation tokenizer.
    pub fn tokenize(&self) -> Flour {
        self.tokenize_with(Arc::new(TokenizerParams::whitespace_punct()))
    }

    /// Tokenizes text with explicit parameters.
    pub fn tokenize_with(&self, params: Arc<TokenizerParams>) -> Flour {
        self.ctx.push(
            Op::Tokenizer(params),
            vec![self.node],
            ColumnType::TokenList,
        )
    }

    /// Character n-grams. May be called on the text itself or on a
    /// tokenizer handle (paper Listing 1 line 8); either way the featurizer
    /// reads the underlying text.
    pub fn char_ngram(&self, params: Arc<NgramParams>) -> Flour {
        let text = self.text_ref();
        let dim = params.dim();
        self.ctx.push(
            Op::CharNgram(params),
            vec![text],
            ColumnType::F32Sparse { len: dim },
        )
    }

    /// Word n-grams; must be called on a tokenizer handle.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not the output of `tokenize` — a wiring bug in
    /// the calling program, reported eagerly.
    pub fn word_ngram(&self, params: Arc<NgramParams>) -> Flour {
        let Input::Node(id) = self.node else {
            panic!("word_ngram must follow tokenize()");
        };
        assert!(
            self.ctx.node_is_tokenizer(id),
            "word_ngram must follow tokenize(), found another transformation"
        );
        let text = self.ctx.node_inputs(id)[0];
        let dim = params.dim();
        self.ctx.push(
            Op::WordNgram(params),
            vec![text, self.node],
            ColumnType::F32Sparse { len: dim },
        )
    }

    /// Dictionary-free hashing featurizer over the underlying text.
    pub fn hashing(&self, params: Arc<HashingParams>) -> Flour {
        let text = self.text_ref();
        let dim = params.dim();
        self.ctx.push(
            Op::HashingVectorizer(params),
            vec![text],
            ColumnType::F32Sparse { len: dim },
        )
    }

    // For text-consuming featurizers invoked on a tokenizer handle, walk
    // back to the tokenizer's text input (paper Listing 1 calls CharNgram
    // on the tokenizer).
    fn text_ref(&self) -> Input {
        match self.node {
            Input::Node(id) if self.ctx.node_is_tokenizer(id) => self.ctx.node_inputs(id)[0],
            other => other,
        }
    }

    /// Concatenates this feature vector with others (paper Listing 1
    /// lines 10–11).
    pub fn concat(&self, other: &Flour) -> Flour {
        self.concat_many(&[other])
    }

    /// Concatenates this feature vector with several others.
    pub fn concat_many(&self, others: &[&Flour]) -> Flour {
        let mut dims = vec![self.dim()];
        let mut inputs = vec![self.node];
        for o in others {
            dims.push(o.dim());
            inputs.push(o.node);
        }
        let total: usize = dims.iter().map(|&d| d as usize).sum();
        self.ctx.push(
            Op::Concat(Arc::new(ConcatParams::new(dims))),
            inputs,
            ColumnType::F32Sparse { len: total },
        )
    }

    /// Normalizes the feature vector.
    pub fn normalize(&self, params: Arc<NormalizerParams>) -> Flour {
        let ty = self.ty;
        self.ctx.push(Op::Normalizer(params), vec![self.node], ty)
    }

    /// Standardizes dense features.
    pub fn scale(&self, params: Arc<ScalerParams>) -> Flour {
        let dim = params.dim();
        self.ctx.push(
            Op::Scaler(params),
            vec![self.node],
            ColumnType::F32Dense { len: dim },
        )
    }

    /// Imputes missing values.
    pub fn impute(&self, params: Arc<ImputerParams>) -> Flour {
        let dim = params.dim();
        self.ctx.push(
            Op::Imputer(params),
            vec![self.node],
            ColumnType::F32Dense { len: dim },
        )
    }

    /// Bins dense features into quantile indices.
    pub fn bin(&self, params: Arc<BinnerParams>) -> Flour {
        let dim = params.dim();
        self.ctx.push(
            Op::Binner(params),
            vec![self.node],
            ColumnType::F32Dense { len: dim },
        )
    }

    /// One-hot encodes categorical dimensions.
    pub fn one_hot(&self, params: Arc<OneHotParams>) -> Flour {
        let dim = params.output_dim();
        self.ctx.push(
            Op::OneHot(params),
            vec![self.node],
            ColumnType::F32Dense { len: dim },
        )
    }

    /// Projects onto principal components.
    pub fn pca(&self, params: Arc<PcaParams>) -> Flour {
        let m = params.m as usize;
        self.ctx.push(
            Op::Pca(params),
            vec![self.node],
            ColumnType::F32Dense { len: m },
        )
    }

    /// K-Means distances to centroids.
    pub fn kmeans(&self, params: Arc<KMeansParams>) -> Flour {
        let k = params.k as usize;
        self.ctx.push(
            Op::KMeans(params),
            vec![self.node],
            ColumnType::F32Dense { len: k },
        )
    }

    /// Tree-leaf featurization.
    pub fn tree_featurize(&self, params: Arc<EnsembleParams>) -> Flour {
        let dim = params.total_leaves();
        self.ctx.push(
            Op::TreeFeaturizer(params),
            vec![self.node],
            ColumnType::F32Sparse { len: dim },
        )
    }

    /// Per-class scores from a one-vs-all multiclass tree classifier.
    pub fn multiclass_tree(&self, params: Arc<MulticlassTreeParams>) -> Flour {
        let k = params.classes();
        self.ctx.push(
            Op::MulticlassTree(params),
            vec![self.node],
            ColumnType::F32Dense { len: k },
        )
    }

    /// Per-class log scores from naive Bayes.
    pub fn naive_bayes(&self, params: Arc<NaiveBayesParams>) -> Flour {
        let k = params.classes();
        self.ctx.push(
            Op::NaiveBayes(params),
            vec![self.node],
            ColumnType::F32Dense { len: k },
        )
    }

    /// Final linear predictor (`ClassifierBinaryLinear` in Listing 1).
    pub fn classifier_linear(&self, params: Arc<LinearParams>) -> Flour {
        self.ctx
            .push(Op::Linear(params), vec![self.node], ColumnType::F32Scalar)
    }

    /// Final tree-ensemble predictor (AC pipelines' "final tree or forest").
    pub fn regressor_tree(&self, params: Arc<EnsembleParams>) -> Flour {
        self.ctx.push(
            Op::TreeEnsemble(params),
            vec![self.node],
            ColumnType::F32Scalar,
        )
    }

    /// Snapshot of the transformation graph with this handle as output.
    ///
    /// # Panics
    ///
    /// Panics if called on a bare source handle (no transformations yet).
    pub fn graph(&self) -> TransformGraph {
        let inner = self.ctx.inner.borrow();
        let state = inner.as_ref().expect("context initialized");
        let Input::Node(output) = self.node else {
            panic!("cannot plan a bare source; add transformations first");
        };
        TransformGraph {
            source_type: state.source_type,
            nodes: state.nodes.clone(),
            output,
        }
    }

    /// Compiles the program into a logical stage plan via Oven
    /// (`Plan()` in Listing 1, line 14).
    pub fn plan(&self) -> Result<StagePlan> {
        if !matches!(self.node, Input::Node(_)) {
            return Err(DataError::InvalidGraph("cannot plan a bare source".into()));
        }
        oven::optimize(&self.graph()).map(|o| o.plan)
    }

    /// Compiles and also returns the optimizer's rule trace.
    pub fn plan_traced(&self) -> Result<oven::Optimized> {
        oven::optimize(&self.graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_ops::linear::LinearKind;
    use pretzel_ops::synth;

    #[test]
    fn listing1_program_builds_and_plans() {
        let vocab = synth::vocabulary(0, 64);
        let ctx = FlourContext::new();
        let tokens = ctx.csv(',').select_text(1).tokenize();
        let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 128)));
        let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 128, &vocab)));
        let program =
            c.concat(&w)
                .classifier_linear(Arc::new(synth::linear(3, 256, LinearKind::Logistic)));
        let g = program.graph();
        assert_eq!(g.nodes.len(), 6); // csv, tok, cngram, wngram, concat, linear
        let plan = program.plan().unwrap();
        assert_eq!(plan.stages.len(), 2);
    }

    #[test]
    fn char_ngram_on_tokenizer_reads_text() {
        let ctx = FlourContext::new();
        let tokens = ctx.csv(',').select_text(0).tokenize();
        let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 16)));
        let g = c
            .classifier_linear(Arc::new(synth::linear(1, 16, LinearKind::Logistic)))
            .graph();
        // CharNgram (node 2) must read the CsvParse output (node 0), not
        // the token list.
        assert_eq!(g.nodes[2].inputs, vec![Input::Node(0)]);
    }

    #[test]
    #[should_panic(expected = "must follow tokenize")]
    fn word_ngram_without_tokenizer_panics() {
        let ctx = FlourContext::new();
        let text = ctx.csv(',').select_text(0);
        let _ = text.word_ngram(Arc::new(synth::word_ngram(
            1,
            2,
            8,
            &synth::vocabulary(0, 8),
        )));
    }

    #[test]
    fn dense_pipeline_via_apply_combinators() {
        let dim = 8;
        let ctx = FlourContext::new();
        let x = ctx.dense_source(dim);
        let scaled = x.scale(Arc::new(synth::scaler(1, dim)));
        let p = scaled.pca(Arc::new(synth::pca(2, 4, dim)));
        let k = scaled.kmeans(Arc::new(synth::kmeans(3, 3, dim)));
        let merged = p.concat(&k);
        let out = merged.regressor_tree(Arc::new(synth::ensemble(
            4,
            7,
            2,
            2,
            pretzel_ops::tree::EnsembleMode::Sum,
        )));
        let plan = out.plan().unwrap();
        plan.validate().unwrap();
    }

    #[test]
    fn with_stats_attaches_to_node() {
        let ctx = FlourContext::new();
        let t = ctx
            .text_source()
            .tokenize()
            .with_stats(NodeStats::new(42, 0.9));
        let g = t
            .char_ngram(Arc::new(synth::char_ngram(1, 3, 8)))
            .classifier_linear(Arc::new(synth::linear(1, 8, LinearKind::Logistic)))
            .graph();
        assert_eq!(g.nodes[0].stats, NodeStats::new(42, 0.9));
    }

    #[test]
    fn plan_on_bare_source_is_error() {
        let ctx = FlourContext::new();
        let s = ctx.dense_source(4);
        assert!(s.plan().is_err());
    }

    #[test]
    #[should_panic(expected = "already has a source")]
    fn two_sources_panic() {
        let ctx = FlourContext::new();
        let _a = ctx.text_source();
        let _b = ctx.dense_source(4);
    }
}
