//! The transformation DAG produced by Flour and consumed by Oven.
//!
//! A [`TransformGraph`] is the paper's "input graph of Flour
//! transformations" (§4.1.2): nodes hold an operator plus references to
//! their producers. Nodes only ever reference *earlier* nodes (Flour builds
//! the graph incrementally), so acyclicity is a structural invariant that
//! [`TransformGraph::validate_structure`] re-checks on every graph that
//! reaches the optimizer.

use crate::stats::NodeStats;
use pretzel_data::{ColumnType, DataError, Result};
use pretzel_ops::Op;

/// Reference to a producer of a node's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// The pipeline's source record (request payload).
    Source,
    /// The output of transformation node `.0`.
    Node(u32),
}

/// One transformation node.
#[derive(Debug, Clone)]
pub struct TNode {
    /// The operator.
    pub op: Op,
    /// Producers, in operator-input order.
    pub inputs: Vec<Input>,
    /// Training statistics for this transformation's output.
    pub stats: NodeStats,
}

/// A pipeline as authored in Flour: source type + transformation nodes.
#[derive(Debug, Clone)]
pub struct TransformGraph {
    /// Type of the source record.
    pub source_type: ColumnType,
    /// Transformation nodes; node `i` may only reference nodes `< i`.
    pub nodes: Vec<TNode>,
    /// The node whose output is the pipeline's prediction.
    pub output: u32,
}

impl TransformGraph {
    /// Structural validation: index ranges, topological input ordering,
    /// input arity per operator, and reachability of the output.
    pub fn validate_structure(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(DataError::InvalidGraph("graph has no nodes".into()));
        }
        if self.output as usize >= self.nodes.len() {
            return Err(DataError::InvalidGraph(format!(
                "output node {} out of range",
                self.output
            )));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.inputs.len() != node.op.n_inputs() {
                return Err(DataError::InvalidGraph(format!(
                    "node {i} ({}) has {} inputs, operator wants {}",
                    node.op.kind().name(),
                    node.inputs.len(),
                    node.op.n_inputs()
                )));
            }
            for input in &node.inputs {
                if let Input::Node(p) = input {
                    if *p as usize >= i {
                        return Err(DataError::InvalidGraph(format!(
                            "node {i} references non-earlier node {p} (cycle or forward edge)"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Propagates column types from the source through every node.
    ///
    /// Returns the per-node output types; fails on any schema mismatch.
    /// This is the workhorse of the `InputGraphValidatorStep`.
    pub fn propagate_types(&self) -> Result<Vec<ColumnType>> {
        let mut types: Vec<ColumnType> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let in_types: Vec<ColumnType> = node
                .inputs
                .iter()
                .map(|inp| match inp {
                    Input::Source => self.source_type,
                    Input::Node(p) => types[*p as usize],
                })
                .collect();
            types.push(node.op.output_type(&in_types)?);
        }
        Ok(types)
    }

    /// Consumers of each node (indices of nodes reading it), plus whether
    /// the source is read by each node.
    pub fn consumers(&self) -> Vec<Vec<u32>> {
        let mut cons = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for input in &node.inputs {
                if let Input::Node(p) = input {
                    cons[*p as usize].push(i as u32);
                }
            }
        }
        cons
    }

    /// Nodes reachable (backwards) from the output node.
    pub fn live_nodes(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack = vec![self.output];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut live[n as usize], true) {
                continue;
            }
            for input in &self.nodes[n as usize].inputs {
                if let Input::Node(p) = input {
                    stack.push(*p);
                }
            }
        }
        live
    }

    /// Total parameter bytes across nodes (no dedup).
    pub fn param_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.op.heap_bytes()).sum()
    }

    /// Serializes the whole pipeline into a model-file byte image: one
    /// section per operator ("one directory per pipeline operator",
    /// paper §2) plus a manifest section describing the DAG wiring.
    ///
    /// Both PRETZEL (off-line phase) and the black-box baseline load the
    /// same image — exactly as both systems in the paper consume ML.Net's
    /// exported models.
    pub fn to_model_image(&self) -> Vec<u8> {
        use pretzel_data::serde_bin::{wire, ModelFileWriter};
        let mut manifest = Vec::new();
        match self.source_type {
            ColumnType::Text => wire::put_u32(&mut manifest, 0),
            ColumnType::F32Dense { len } => {
                wire::put_u32(&mut manifest, 1);
                wire::put_u32(&mut manifest, len as u32);
            }
            ColumnType::F32Sparse { len } => {
                wire::put_u32(&mut manifest, 2);
                wire::put_u32(&mut manifest, len as u32);
            }
            other => {
                // Only text/dense/sparse sources are exported; enforced by
                // Flour.
                wire::put_u32(&mut manifest, 0);
                debug_assert!(false, "unexpected source type {other}");
            }
        }
        wire::put_u32(&mut manifest, self.output);
        wire::put_u32(&mut manifest, self.nodes.len() as u32);
        for node in &self.nodes {
            wire::put_u32(&mut manifest, node.inputs.len() as u32);
            for input in &node.inputs {
                match input {
                    Input::Source => wire::put_u32(&mut manifest, u32::MAX),
                    Input::Node(p) => wire::put_u32(&mut manifest, *p),
                }
            }
            wire::put_u32(&mut manifest, node.stats.max_stored as u32);
            wire::put_f32(&mut manifest, node.stats.density);
        }
        let mut writer = ModelFileWriter::new();
        writer.add_section("manifest", vec![("dag".into(), manifest)]);
        for (i, node) in self.nodes.iter().enumerate() {
            let section = node.op.to_section(i);
            writer.add_section(section.name.clone(), section.entries);
        }
        writer.finish()
    }

    /// Deserializes a pipeline from a model-file byte image.
    ///
    /// This is real loading work — every parameter blob is decoded into
    /// fresh allocations — which is what makes baseline cold-start costs
    /// honest in the experiments.
    pub fn from_model_image(image: &[u8]) -> Result<Self> {
        Self::load_image(image, None)
    }

    /// Deserializes a pipeline, *sharing* parameters through an Object
    /// Store: sections whose checksum is already resident are not decoded
    /// at all — the canonical instance is cloned instead (paper §4.1.3 and
    /// the §5.1 fast-load behaviour). New parameters are decoded once and
    /// interned.
    pub fn from_model_image_shared(
        image: &[u8],
        store: &crate::object_store::ObjectStore,
    ) -> Result<Self> {
        Self::load_image(image, Some(store))
    }

    fn load_image(image: &[u8], store: Option<&crate::object_store::ObjectStore>) -> Result<Self> {
        use pretzel_data::serde_bin::{read_model_file, Cursor};
        let sections = read_model_file(image)?;
        let (manifest, ops) = sections
            .split_first()
            .ok_or_else(|| DataError::Codec("empty model file".into()))?;
        if manifest.name != "manifest" {
            return Err(DataError::Codec("model file missing manifest".into()));
        }
        let mut cur = Cursor::new(manifest.entry("dag")?);
        let source_type = match cur.u32()? {
            0 => ColumnType::Text,
            1 => ColumnType::F32Dense {
                len: cur.u32()? as usize,
            },
            2 => ColumnType::F32Sparse {
                len: cur.u32()? as usize,
            },
            t => return Err(DataError::Codec(format!("bad source tag {t}"))),
        };
        let output = cur.u32()?;
        let n_nodes = cur.u32()? as usize;
        if n_nodes != ops.len() {
            return Err(DataError::Codec(format!(
                "manifest claims {n_nodes} operators, file has {}",
                ops.len()
            )));
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for section in ops {
            let n_inputs = cur.u32()? as usize;
            let mut inputs = Vec::with_capacity(n_inputs.min(64));
            for _ in 0..n_inputs {
                let raw = cur.u32()?;
                inputs.push(if raw == u32::MAX {
                    Input::Source
                } else {
                    Input::Node(raw)
                });
            }
            let max_stored = cur.u32()? as usize;
            let density = cur.f32()?;
            // Fast path: skip deserialization when the Object Store already
            // holds these parameters (identified by the file checksum).
            let op = match store {
                Some(store) => {
                    let kind = section.name.split_once('.').map(|(_, k)| k).unwrap_or("");
                    let want = Op::checksum_for_section(kind, section.checksum);
                    match store.get(want) {
                        Some(shared) => shared,
                        None => store.intern(Op::from_section(section)?),
                    }
                }
                None => Op::from_section(section)?,
            };
            nodes.push(TNode {
                op,
                inputs,
                stats: NodeStats::new(max_stored, density),
            });
        }
        let graph = TransformGraph {
            source_type,
            nodes,
            output,
        };
        graph.validate_structure()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_ops::linear::LinearKind;
    use pretzel_ops::synth;
    use pretzel_ops::text::tokenizer::TokenizerParams;
    use std::sync::Arc;

    fn sa_graph() -> TransformGraph {
        let vocab = synth::vocabulary(1, 32);
        TransformGraph {
            source_type: ColumnType::Text,
            nodes: vec![
                TNode {
                    op: Op::Tokenizer(Arc::new(TokenizerParams::whitespace_punct())),
                    inputs: vec![Input::Source],
                    stats: NodeStats::default(),
                },
                TNode {
                    op: Op::WordNgram(Arc::new(synth::word_ngram(2, 2, 16, &vocab))),
                    inputs: vec![Input::Source, Input::Node(0)],
                    stats: NodeStats::default(),
                },
                TNode {
                    op: Op::Linear(Arc::new(synth::linear(3, 16, LinearKind::Logistic))),
                    inputs: vec![Input::Node(1)],
                    stats: NodeStats::default(),
                },
            ],
            output: 2,
        }
    }

    #[test]
    fn valid_graph_passes() {
        let g = sa_graph();
        g.validate_structure().unwrap();
        let types = g.propagate_types().unwrap();
        assert_eq!(types[0], ColumnType::TokenList);
        assert_eq!(types[2], ColumnType::F32Scalar);
    }

    #[test]
    fn forward_edge_rejected() {
        let mut g = sa_graph();
        g.nodes[0].inputs = vec![Input::Node(2)];
        assert!(g.validate_structure().is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut g = sa_graph();
        g.nodes[1].inputs.pop();
        assert!(g.validate_structure().is_err());
    }

    #[test]
    fn out_of_range_output_rejected() {
        let mut g = sa_graph();
        g.output = 9;
        assert!(g.validate_structure().is_err());
    }

    #[test]
    fn type_mismatch_detected_in_propagation() {
        let mut g = sa_graph();
        // Linear over TokenList: invalid.
        g.nodes[2].inputs = vec![Input::Node(0)];
        assert!(g.propagate_types().is_err());
    }

    #[test]
    fn consumers_and_liveness() {
        let g = sa_graph();
        let cons = g.consumers();
        assert_eq!(cons[0], vec![1]);
        assert_eq!(cons[1], vec![2]);
        assert!(cons[2].is_empty());
        assert_eq!(g.live_nodes(), vec![true, true, true]);
    }

    #[test]
    fn model_image_round_trip() {
        let g = sa_graph();
        let image = g.to_model_image();
        let g2 = TransformGraph::from_model_image(&image).unwrap();
        assert_eq!(g2.source_type, g.source_type);
        assert_eq!(g2.output, g.output);
        assert_eq!(g2.nodes.len(), g.nodes.len());
        for (a, b) in g.nodes.iter().zip(&g2.nodes) {
            assert_eq!(a.op.checksum(), b.op.checksum());
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.stats, b.stats);
        }
        // Reloaded parameters are fresh allocations (no accidental sharing
        // with the original), which is what per-container copies rely on.
        for (a, b) in g.nodes.iter().zip(&g2.nodes) {
            assert_ne!(a.op.params_addr(), b.op.params_addr());
        }
    }

    #[test]
    fn model_image_corruption_rejected() {
        let g = sa_graph();
        let mut image = g.to_model_image();
        let n = image.len();
        image[n - 2] ^= 0x55;
        assert!(TransformGraph::from_model_image(&image).is_err());
        assert!(TransformGraph::from_model_image(&[]).is_err());
    }

    #[test]
    fn dense_source_round_trips_in_image() {
        use pretzel_ops::synth;
        let g = TransformGraph {
            source_type: ColumnType::F32Dense { len: 8 },
            nodes: vec![TNode {
                op: Op::TreeEnsemble(Arc::new(synth::ensemble(
                    1,
                    8,
                    2,
                    2,
                    pretzel_ops::tree::EnsembleMode::Sum,
                ))),
                inputs: vec![Input::Source],
                stats: NodeStats::default(),
            }],
            output: 0,
        };
        let g2 = TransformGraph::from_model_image(&g.to_model_image()).unwrap();
        assert_eq!(g2.source_type, ColumnType::F32Dense { len: 8 });
    }

    #[test]
    fn sparse_source_round_trips_in_image() {
        use pretzel_ops::linear::LinearKind;
        let g = TransformGraph {
            source_type: ColumnType::F32Sparse { len: 32 },
            nodes: vec![TNode {
                op: Op::Linear(Arc::new(synth::linear(4, 32, LinearKind::Logistic))),
                inputs: vec![Input::Source],
                stats: NodeStats::default(),
            }],
            output: 0,
        };
        let g2 = TransformGraph::from_model_image(&g.to_model_image()).unwrap();
        assert_eq!(g2.source_type, ColumnType::F32Sparse { len: 32 });
        assert_eq!(g2.nodes[0].op.checksum(), g.nodes[0].op.checksum());
    }

    #[test]
    fn dead_node_detected() {
        let mut g = sa_graph();
        // An extra tokenizer nobody reads.
        g.nodes.push(TNode {
            op: Op::Tokenizer(Arc::new(TokenizerParams::whitespace_punct())),
            inputs: vec![Input::Source],
            stats: NodeStats::default(),
        });
        let live = g.live_nodes();
        assert_eq!(live, vec![true, true, true, false]);
    }
}
