//! Physical stages and the Model Plan Compiler (MPC).
//!
//! "Once the logical plan is generated, MPC traverses the DAG in topological
//! order and maps each logical stage into a physical implementation.
//! Physical implementations are AOT-compiled, parameterized, lock-free
//! computation units" (paper §4.1.2). In this Rust reproduction every
//! kernel is statically compiled; what MPC decides is *which* kernel shape
//! serves a logical stage (the paper's 1-logical-to-n-physical mapping):
//!
//! * the generic **stepwise** program, executing each step with enum
//!   dispatch over pooled buffers; or
//! * **fused n-gram·dot kernels**: when a stage contains `CharNgram →
//!   PartialDot` (or the word variant) with a scratch-only intermediate,
//!   the two steps collapse into one kernel that accumulates
//!   `weights[offset + idx]` per dictionary hit and never materializes the
//!   sparse feature vector.
//!
//! Physical stages are identified by a structural [`PhysicalStage::signature`]
//! so the runtime catalog can load each distinct stage once and share it
//! between plans (paper §4.2.1).

use crate::object_store::{MatKey, MaterializationCache, ObjectStore};
use crate::plan::{BufDef, Loc, LogicalStage, StageOp, StagePlan, Step};
use pretzel_data::batch::ColRef;
use pretzel_data::hash::Fnv1a;
use pretzel_data::pool::VectorPool;
use pretzel_data::{ColumnBatch, ColumnType, DataError, Result, Vector};
use pretzel_ops::Op;
use std::sync::Arc;

/// Compilation options chosen by the runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Fuse `ngram → PartialDot` pairs into single kernels. Disabled when
    /// sub-plan materialization is on, so that shared featurizer outputs
    /// stay cacheable (fused outputs embed per-pipeline weights and would
    /// never hit).
    pub fuse_ngram_dot: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            fuse_ngram_dot: true,
        }
    }
}

/// An executable, shareable physical stage.
#[derive(Debug)]
pub struct PhysicalStage {
    /// Steps after physical selection (possibly fused).
    pub steps: Vec<Step>,
    /// Stage-local scratch buffers.
    pub scratch: Vec<BufDef>,
    /// Plan slots read (scheduling metadata).
    pub reads: Vec<u32>,
    /// Plan slots written.
    pub writes: Vec<u32>,
    /// Structural identity for catalog interning.
    pub signature: u64,
    /// Stage labelled dense by training statistics.
    pub dense: bool,
    /// Stage labelled vectorizable.
    pub vectorizable: bool,
    /// Per-step materialization keys, precomputed at compile time
    /// (`Some(step checksum)` for cacheable featurizer steps). Checksums
    /// serialize parameters, so they must never be computed on the
    /// prediction path.
    mat_steps: Vec<Option<u64>>,
}

/// Per-executor execution context: the vector pool, a reusable scratch
/// container, and the optional materialization cache.
#[derive(Debug)]
pub struct ExecCtx {
    /// Pool backing scratch (and, at the runtime layer, slot leases).
    pub pool: Arc<VectorPool>,
    /// Sub-plan materialization cache, if enabled.
    pub cache: Option<Arc<MaterializationCache>>,
    /// Hash of the current source record (materialization key component,
    /// per-record path).
    pub source_hash: u64,
    /// Per-row source hashes of the current chunk (materialization key
    /// components, columnar path). Must hold one hash per chunk row before
    /// a stage with cacheable steps executes in batch mode.
    pub source_hashes: Vec<u64>,
    /// Telemetry registry for cache-probe latency recording; `None` (the
    /// telemetry-off ablation leg) executes with zero clock reads.
    pub telemetry: Option<Arc<crate::telemetry::MetricsRegistry>>,
    scratch: Vec<Vector>,
    batch_scratch: Vec<ColumnBatch>,
}

impl ExecCtx {
    /// Creates a context over a pool.
    pub fn new(pool: Arc<VectorPool>) -> Self {
        ExecCtx {
            pool,
            cache: None,
            source_hash: 0,
            source_hashes: Vec::new(),
            telemetry: None,
            scratch: Vec::new(),
            batch_scratch: Vec::new(),
        }
    }

    /// Enables sub-plan materialization.
    pub fn with_cache(mut self, cache: Arc<MaterializationCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables cache-probe latency recording into `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Arc<crate::telemetry::MetricsRegistry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Returns any scratch buffers stranded in the context to the pool.
    ///
    /// On the normal path `execute_with_source`/`execute_batch` drain their
    /// scratch back to the pool before returning, so this is a no-op. When
    /// an operator *panics* mid-stage the drain is skipped — the unwind
    /// tears straight through the stage body — and because contexts are
    /// reused across requests (per executor thread, per RR session) the
    /// stranded buffers would poison the next execution's
    /// `debug_assert!(ctx.scratch.is_empty())` and leak pool capacity.
    /// Fault containment calls this from every `catch_unwind` recovery arm.
    pub fn recover_scratch(&mut self) {
        for v in self.scratch.drain(..) {
            self.pool.release(v);
        }
        for b in self.batch_scratch.drain(..) {
            self.pool.release_batch(b);
        }
    }
}

/// A materialization-cache lookup, timed into the telemetry registry when
/// one is installed (split by hit/miss outcome) and a plain `get` otherwise.
#[inline]
fn timed_cache_get(
    telemetry: Option<&Arc<crate::telemetry::MetricsRegistry>>,
    cache: &MaterializationCache,
    key: MatKey,
) -> Option<Arc<Vector>> {
    match telemetry {
        Some(t) => {
            let t0 = std::time::Instant::now();
            let hit = cache.get(key);
            t.record_cache_probe(hit.is_some(), t0.elapsed().as_nanos() as u64);
            hit
        }
        None => cache.get(key),
    }
}

#[inline]
fn buf<'a>(slots: &'a [Vector], scratch: &'a [Vector], loc: Loc) -> &'a Vector {
    match loc {
        Loc::Slot(i) => &slots[i as usize],
        Loc::Scratch(i) => &scratch[i as usize],
    }
}

#[inline]
fn take_buf(slots: &mut [Vector], scratch: &mut [Vector], loc: Loc) -> Vector {
    let place = match loc {
        Loc::Slot(i) => &mut slots[i as usize],
        Loc::Scratch(i) => &mut scratch[i as usize],
    };
    std::mem::replace(place, Vector::Scalar(0.0))
}

#[inline]
fn put_buf(slots: &mut [Vector], scratch: &mut [Vector], loc: Loc, v: Vector) {
    match loc {
        Loc::Slot(i) => slots[i as usize] = v,
        Loc::Scratch(i) => scratch[i as usize] = v,
    }
}

#[inline]
fn batch_buf<'a>(
    slots: &'a [ColumnBatch],
    scratch: &'a [ColumnBatch],
    loc: Loc,
) -> &'a ColumnBatch {
    match loc {
        Loc::Slot(i) => &slots[i as usize],
        Loc::Scratch(i) => &scratch[i as usize],
    }
}

#[inline]
fn take_batch(slots: &mut [ColumnBatch], scratch: &mut [ColumnBatch], loc: Loc) -> ColumnBatch {
    let place = match loc {
        Loc::Slot(i) => &mut slots[i as usize],
        Loc::Scratch(i) => &mut scratch[i as usize],
    };
    std::mem::replace(place, ColumnBatch::Scalar(Vec::new()))
}

#[inline]
fn put_batch(slots: &mut [ColumnBatch], scratch: &mut [ColumnBatch], loc: Loc, b: ColumnBatch) {
    match loc {
        Loc::Slot(i) => slots[i as usize] = b,
        Loc::Scratch(i) => scratch[i as usize] = b,
    }
}

/// The cheap first half of stage compilation: fused steps plus the stage
/// signature, computed **before** the full physical stage is built. The
/// runtime catalog probes the signature and, on a hit, serves the resident
/// stage and throws this away — the redeploy fast path that makes
/// `catalog_gc=false` re-deploys skip stage construction entirely.
#[derive(Debug)]
pub struct PreparedStage {
    steps: Vec<Step>,
    scratch: Vec<BufDef>,
    reads: Vec<u32>,
    writes: Vec<u32>,
    /// The catalog-interning signature the finished stage will carry.
    pub signature: u64,
    dense: bool,
    vectorizable: bool,
}

impl PhysicalStage {
    /// Compiles a logical stage into its physical implementation.
    pub fn compile(logical: &LogicalStage, opts: &CompileOptions) -> Self {
        Self::finish(Self::prepare(logical, opts))
    }

    /// First half of [`Self::compile`]: operator fusion and the stage
    /// signature, cheap enough to run just to probe the catalog.
    pub fn prepare(logical: &LogicalStage, opts: &CompileOptions) -> PreparedStage {
        let mut steps = logical.steps.clone();
        let mut scratch = logical.scratch.clone();
        if opts.fuse_ngram_dot {
            fuse_ngram_dot(&mut steps, &mut scratch);
        }
        let signature = signature_of(&steps, &scratch, logical.dense, logical.vectorizable);
        PreparedStage {
            steps,
            scratch,
            reads: logical.reads.clone(),
            writes: logical.writes.clone(),
            signature,
            dense: logical.dense,
            vectorizable: logical.vectorizable,
        }
    }

    /// Second half of [`Self::compile`]: builds the executable stage from
    /// the prepared parts (catalog misses only).
    pub fn finish(prepared: PreparedStage) -> Self {
        let mat_steps = prepared
            .steps
            .iter()
            .map(|s| s.op.cacheable().then(|| s.op.checksum()))
            .collect();
        PhysicalStage {
            steps: prepared.steps,
            scratch: prepared.scratch,
            reads: prepared.reads,
            writes: prepared.writes,
            signature: prepared.signature,
            dense: prepared.dense,
            vectorizable: prepared.vectorizable,
            mat_steps,
        }
    }

    /// Executes the stage over the plan working set `slots`.
    ///
    /// Scratch buffers come from `ctx.pool` and return to it before the
    /// call ends; the reusable container in `ctx` keeps this allocation-free
    /// after warm-up.
    pub fn execute(&self, slots: &mut [Vector], ctx: &mut ExecCtx) -> Result<()> {
        self.execute_with_source(None, slots, ctx)
    }

    /// Like [`Self::execute`], optionally serving slot-0 reads straight off
    /// a borrowed source row (the request-response engine's borrowed-source
    /// execute). Steps without a borrowed kernel trigger a one-time
    /// materialization into slot 0 and proceed on the classic path.
    pub(crate) fn execute_with_source(
        &self,
        source: Option<&mut BorrowedSource<'_>>,
        slots: &mut [Vector],
        ctx: &mut ExecCtx,
    ) -> Result<()> {
        // Acquire scratch into the reusable container.
        debug_assert!(ctx.scratch.is_empty());
        for def in &self.scratch {
            let v = ctx.pool.acquire(def.ty);
            ctx.scratch.push(v);
        }
        let result = self.run_steps(source, slots, ctx);
        // Always return scratch, also on error paths.
        let pool = Arc::clone(&ctx.pool);
        for v in ctx.scratch.drain(..) {
            pool.release(v);
        }
        result
    }

    /// True if any step of this stage is a sub-plan materialization
    /// candidate. The scheduler uses this to decide whether a columnar
    /// chunk needs per-row source hashes before the stage runs.
    pub fn has_cacheable_steps(&self) -> bool {
        self.mat_steps.iter().any(Option::is_some)
    }

    /// Executes the stage over a columnar working set: one kernel call per
    /// step for the whole chunk, instead of one per step *per record*.
    ///
    /// Stage-local scratch is leased as batches (one per scratch def per
    /// chunk) and returned before the call ends. With sub-plan
    /// materialization enabled, cacheable steps run the chunk-level cache
    /// probe (hit/miss partition + miss sub-batch) instead of the plain
    /// whole-chunk kernel; `ctx.source_hashes` must then hold one hash per
    /// chunk row.
    pub fn execute_batch(
        &self,
        slots: &mut [ColumnBatch],
        rows: usize,
        ctx: &mut ExecCtx,
    ) -> Result<()> {
        debug_assert!(ctx.batch_scratch.is_empty());
        for def in &self.scratch {
            let b = ctx.pool.acquire_batch(def.ty, rows);
            ctx.batch_scratch.push(b);
        }
        let result = self.run_steps_batch(slots, rows, ctx);
        let pool = Arc::clone(&ctx.pool);
        for b in ctx.batch_scratch.drain(..) {
            pool.release_batch(b);
        }
        result
    }

    fn run_steps_batch(
        &self,
        slots: &mut [ColumnBatch],
        rows: usize,
        ctx: &mut ExecCtx,
    ) -> Result<()> {
        for (step_idx, step) in self.steps.iter().enumerate() {
            // Sub-plan materialization (paper §4.3) at chunk granularity:
            // probe per row, batch-evaluate only the misses.
            if let Some(step_sum) = self.mat_steps[step_idx] {
                if let Some(cache) = ctx.cache.as_ref().map(Arc::clone) {
                    let probe = ChunkCacheProbe {
                        cache,
                        pool: Arc::clone(&ctx.pool),
                        step_sum,
                    };
                    probe.run_step(step, slots, rows, ctx)?;
                    continue;
                }
            }
            let mut out = take_batch(slots, &mut ctx.batch_scratch, step.output);
            let res = apply_step_batch(step, slots, &ctx.batch_scratch, &mut out);
            put_batch(slots, &mut ctx.batch_scratch, step.output, out);
            res?;
        }
        Ok(())
    }

    fn run_steps(
        &self,
        mut source: Option<&mut BorrowedSource<'_>>,
        slots: &mut [Vector],
        ctx: &mut ExecCtx,
    ) -> Result<()> {
        for (step_idx, step) in self.steps.iter().enumerate() {
            // Sub-plan materialization (paper §4.3): shared featurizer steps
            // keyed by (precomputed step checksum, source hash).
            let mat_key = match (&ctx.cache, self.mat_steps[step_idx]) {
                (Some(_), Some(step_sum)) => Some(MatKey {
                    step: step_sum,
                    input: ctx.source_hash,
                }),
                _ => None,
            };
            if let (Some(key), Some(cache)) = (mat_key, ctx.cache.as_ref()) {
                if let Some(hit) = timed_cache_get(ctx.telemetry.as_ref(), cache, key) {
                    let mut out = take_buf(slots, &mut ctx.scratch, step.output);
                    out.clone_from(&hit);
                    put_buf(slots, &mut ctx.scratch, step.output, out);
                    continue;
                }
            }

            // Borrowed-source fast path: a step whose first input is the
            // (not yet materialized) source runs its row-level kernel off
            // the borrowed row — no slot-0 copy. Steps without a borrowed
            // kernel materialize the source once and fall through.
            if let Some(bs) = source.as_deref_mut() {
                if !bs.loaded && step.inputs.contains(&Loc::Slot(0)) {
                    let mut handled = false;
                    if step.inputs.first() == Some(&Loc::Slot(0))
                        && !step.inputs[1..].contains(&Loc::Slot(0))
                    {
                        let mut out = take_buf(slots, &mut ctx.scratch, step.output);
                        let res = match step.inputs[1..] {
                            [] => step.op.apply_row(bs.src.as_row(), &[], &mut out),
                            [a] => step.op.apply_row(
                                bs.src.as_row(),
                                &[buf(slots, &ctx.scratch, a)],
                                &mut out,
                            ),
                            ref many => {
                                let refs: Vec<&Vector> =
                                    many.iter().map(|&l| buf(slots, &ctx.scratch, l)).collect();
                                step.op.apply_row(bs.src.as_row(), &refs, &mut out)
                            }
                        };
                        match res {
                            Err(e) => {
                                put_buf(slots, &mut ctx.scratch, step.output, out);
                                return Err(e);
                            }
                            Ok(applied) => {
                                if applied {
                                    if let (Some(key), Some(cache)) = (mat_key, ctx.cache.as_ref())
                                    {
                                        cache.put(key, Arc::new(out.clone()));
                                    }
                                }
                                handled = applied;
                                put_buf(slots, &mut ctx.scratch, step.output, out);
                            }
                        }
                    }
                    if handled {
                        continue;
                    }
                    bs.src.load_into(&mut slots[0])?;
                    bs.loaded = true;
                }
            }

            let mut out = take_buf(slots, &mut ctx.scratch, step.output);
            let scratch = &ctx.scratch;
            let res = match step.inputs.as_slice() {
                [] => Err(DataError::Runtime(format!(
                    "step {} has no inputs",
                    step.op.name()
                ))),
                [a] => step.op.apply(&[buf(slots, scratch, *a)], &mut out),
                [a, b] => step.op.apply(
                    &[buf(slots, scratch, *a), buf(slots, scratch, *b)],
                    &mut out,
                ),
                [a, b, c] => step.op.apply(
                    &[
                        buf(slots, scratch, *a),
                        buf(slots, scratch, *b),
                        buf(slots, scratch, *c),
                    ],
                    &mut out,
                ),
                [a, b, c, d] => step.op.apply(
                    &[
                        buf(slots, scratch, *a),
                        buf(slots, scratch, *b),
                        buf(slots, scratch, *c),
                        buf(slots, scratch, *d),
                    ],
                    &mut out,
                ),
                many => {
                    // Rare (wide Concat/Combine): one small allocation.
                    let refs: Vec<&Vector> = many.iter().map(|&l| buf(slots, scratch, l)).collect();
                    step.op.apply(&refs, &mut out)
                }
            };
            if let Err(e) = res {
                put_buf(slots, &mut ctx.scratch, step.output, out);
                return Err(e);
            }
            if let (Some(key), Some(cache)) = (mat_key, ctx.cache.as_ref()) {
                cache.put(key, Arc::new(out.clone()));
            }
            put_buf(slots, &mut ctx.scratch, step.output, out);
        }
        Ok(())
    }
}

/// Runs one step's batch kernel over the chunk, reading inputs from
/// `slots`/`scratch` into the (taken) output batch `out`.
fn apply_step_batch(
    step: &Step,
    slots: &[ColumnBatch],
    scratch: &[ColumnBatch],
    out: &mut ColumnBatch,
) -> Result<()> {
    match step.inputs.as_slice() {
        [] => Err(DataError::Runtime(format!(
            "step {} has no inputs",
            step.op.name()
        ))),
        [a] => step.op.apply_batch(&[batch_buf(slots, scratch, *a)], out),
        [a, b] => step.op.apply_batch(
            &[batch_buf(slots, scratch, *a), batch_buf(slots, scratch, *b)],
            out,
        ),
        many => {
            let refs: Vec<&ColumnBatch> =
                many.iter().map(|&l| batch_buf(slots, scratch, l)).collect();
            step.op.apply_batch(&refs, out)
        }
    }
}

/// One cacheable step's chunk-level materialization-cache probe.
///
/// The columnar analogue of the per-record cache branch in
/// `PhysicalStage::run_steps`: partition the chunk into a hit set and a
/// miss sub-batch ([`ColumnBatch::gather`]/[`ColumnBatch::push_row`]
/// selection kernels), run the step's batch kernel only on the misses, and
/// scatter hits + computed rows back into one output batch in original row
/// order.
///
/// Per-record cache semantics are preserved **exactly**, including LRU
/// recency order and eviction victims under mid-chunk eviction pressure:
///
/// 1. a *speculative* partition pass peeks every row's key without
///    touching recency or counters ([`MaterializationCache::peek`]);
/// 2. the speculated misses batch-evaluate over gathered sub-batches,
///    with no cache writes;
/// 3. a *replay* pass then issues the real cache operations in original
///    row order — one `get` per row, one `put` per `get` that missed —
///    which is the identical operation sequence the per-record path
///    produces, so the LRU list transitions through the same states. A
///    replayed `get` that disagrees with the speculation (its entry was
///    evicted by an earlier in-chunk insert, or an in-chunk duplicate's
///    insert already landed) is handled the way the per-record path would:
///    use the cached value on an unexpected hit, recompute the single row
///    on an unexpected miss.
struct ChunkCacheProbe {
    cache: Arc<MaterializationCache>,
    pool: Arc<VectorPool>,
    step_sum: u64,
}

impl ChunkCacheProbe {
    fn run_step(
        &self,
        step: &Step,
        slots: &mut [ColumnBatch],
        rows: usize,
        ctx: &mut ExecCtx,
    ) -> Result<()> {
        if ctx.source_hashes.len() != rows {
            return Err(DataError::Runtime(format!(
                "cache-aware batch execution wants {rows} source hashes, has {}",
                ctx.source_hashes.len()
            )));
        }
        // Phase 1: speculative partition via non-mutating peeks.
        // `plan[r]` is `Some(j)` when row `r` is the first in-chunk
        // occurrence of an uncached key and will be batch-computed at miss
        // sub-batch row `j`; `None` when the row is expected to hit at
        // replay time (peeked hit, or duplicate of an earlier in-chunk
        // miss whose insert will have landed by then).
        let mut plan: Vec<Option<usize>> = Vec::with_capacity(rows);
        let mut miss_rows: Vec<usize> = Vec::new();
        let mut pending: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (r, &input) in ctx.source_hashes.iter().enumerate() {
            if pending.contains(&input) {
                plan.push(None);
                continue;
            }
            let key = MatKey {
                step: self.step_sum,
                input,
            };
            match self.cache.peek(key) {
                Some(_) => plan.push(None),
                None => {
                    pending.insert(input);
                    plan.push(Some(miss_rows.len()));
                    miss_rows.push(r);
                }
            }
        }
        // All-miss fast path (cold caches, unique request streams): no
        // sub-batch needed — run the kernel over the original slot batches
        // exactly like the uncached path, then replay the get/put pairs.
        // Duplicates plan as `None`, so all-miss implies all keys unique.
        if miss_rows.len() == rows {
            return self.run_all_miss(step, slots, rows, ctx);
        }
        // Phase 2: batch-evaluate the speculated misses over gathered
        // sub-batches. No cache writes yet — those belong to the replay.
        let out_ty = batch_buf(slots, &ctx.batch_scratch, step.output).column_type();
        let miss_out = if miss_rows.is_empty() {
            None
        } else {
            Some(self.eval_miss_rows(step, &miss_rows, out_ty, slots, &ctx.batch_scratch)?)
        };
        // Phase 3: replay the cache operations in original row order. From
        // here on the cache sees exactly what the per-record path would
        // have issued, so hit/miss counters, recency order, and eviction
        // victims match it even under mid-chunk eviction pressure.
        let replayed: Result<Vec<Arc<Vector>>> = (|| {
            let mut srcs = Vec::with_capacity(rows);
            for (r, row_plan) in plan.iter().enumerate() {
                let key = MatKey {
                    step: self.step_sum,
                    input: ctx.source_hashes[r],
                };
                match timed_cache_get(ctx.telemetry.as_ref(), &self.cache, key) {
                    Some(hit) => srcs.push(hit),
                    None => {
                        let value = match row_plan {
                            Some(j) => Arc::new(
                                miss_out
                                    .as_ref()
                                    .expect("miss rows imply a miss batch")
                                    .row(*j)
                                    .to_vector(),
                            ),
                            // Speculated hit whose entry an earlier replay
                            // insert evicted, or a duplicate whose insert
                            // was already evicted (degenerate budget):
                            // recompute the row alone, as the per-record
                            // path would on this miss.
                            None => {
                                let one = self.eval_miss_rows(
                                    step,
                                    &[r],
                                    out_ty,
                                    slots,
                                    &ctx.batch_scratch,
                                )?;
                                let v = Arc::new(one.row(0).to_vector());
                                self.pool.release_batch(one);
                                v
                            }
                        };
                        self.cache.put(key, Arc::clone(&value));
                        srcs.push(value);
                    }
                }
            }
            Ok(srcs)
        })();
        if let Some(b) = miss_out {
            self.pool.release_batch(b);
        }
        let srcs = replayed?;
        // Phase 4: scatter the per-row values into the output batch in
        // original row order.
        let mut out = take_batch(slots, &mut ctx.batch_scratch, step.output);
        out.reset();
        let mut res = Ok(());
        for v in &srcs {
            if let Err(e) = out.push_row(ColRef::from_vector(v)) {
                res = Err(e);
                break;
            }
        }
        put_batch(slots, &mut ctx.batch_scratch, step.output, out);
        res
    }

    /// Whole-chunk miss: runs the step's batch kernel in place (no
    /// gather/scatter copies), then replays the per-row `get` (miss) +
    /// `put` pairs in row order — the same operation sequence the
    /// per-record path issues on a cold chunk.
    fn run_all_miss(
        &self,
        step: &Step,
        slots: &mut [ColumnBatch],
        rows: usize,
        ctx: &mut ExecCtx,
    ) -> Result<()> {
        let mut out = take_batch(slots, &mut ctx.batch_scratch, step.output);
        let mut res = apply_step_batch(step, slots, &ctx.batch_scratch, &mut out);
        if res.is_ok() && out.rows() != rows {
            res = Err(DataError::Runtime(format!(
                "step {} produced {} rows for a {rows}-row chunk",
                step.op.name(),
                out.rows(),
            )));
        }
        if res.is_ok() {
            for (r, &input) in ctx.source_hashes.iter().enumerate() {
                let key = MatKey {
                    step: self.step_sum,
                    input,
                };
                // All keys are unique and were absent at peek time, and
                // replay only inserts keys from this same set, so the get
                // always misses; it is issued anyway to keep the counter
                // and recency traffic identical to per-record execution.
                let _ = timed_cache_get(ctx.telemetry.as_ref(), &self.cache, key);
                self.cache.put(key, Arc::new(out.row(r).to_vector()));
            }
        }
        put_batch(slots, &mut ctx.batch_scratch, step.output, out);
        res
    }

    /// Gathers `miss_rows` of the step's inputs into pooled sub-batches and
    /// runs the step's batch kernel over them; returns the computed miss
    /// batch (pooled — the caller releases it). Cache insertion is NOT done
    /// here: the replay pass owns all cache writes so they land in original
    /// row order.
    fn eval_miss_rows(
        &self,
        step: &Step,
        miss_rows: &[usize],
        out_ty: ColumnType,
        slots: &[ColumnBatch],
        scratch: &[ColumnBatch],
    ) -> Result<ColumnBatch> {
        let mut gathered: Vec<ColumnBatch> = Vec::with_capacity(step.inputs.len());
        let mut res = Ok(());
        for &loc in &step.inputs {
            let src = batch_buf(slots, scratch, loc);
            let mut g = self.pool.acquire_batch(src.column_type(), miss_rows.len());
            res = src.gather(miss_rows, &mut g);
            gathered.push(g);
            if res.is_err() {
                break;
            }
        }
        let mut miss_out = self.pool.acquire_batch(out_ty, miss_rows.len());
        if res.is_ok() {
            if step.inputs.is_empty() {
                res = Err(DataError::Runtime(format!(
                    "step {} has no inputs",
                    step.op.name()
                )));
            } else {
                let refs: Vec<&ColumnBatch> = gathered.iter().collect();
                res = step.op.apply_batch(&refs, &mut miss_out);
            }
        }
        if res.is_ok() && miss_out.rows() != miss_rows.len() {
            res = Err(DataError::Runtime(format!(
                "step {} produced {} rows for a {}-row miss sub-batch",
                step.op.name(),
                miss_out.rows(),
                miss_rows.len()
            )));
        }
        for g in gathered {
            self.pool.release_batch(g);
        }
        if let Err(e) = res {
            self.pool.release_batch(miss_out);
            return Err(e);
        }
        Ok(miss_out)
    }
}

/// Rewrites `CharNgram/WordNgram → PartialDot` pairs over a private scratch
/// intermediate into single fused kernels, then compacts scratch defs.
fn fuse_ngram_dot(steps: &mut Vec<Step>, scratch: &mut Vec<BufDef>) {
    loop {
        let mut fused_any = false;
        'search: for i in 0..steps.len() {
            let scratch_out = match steps[i].output {
                Loc::Scratch(s) => s,
                Loc::Slot(_) => continue,
            };
            let ngram = match &steps[i].op {
                StageOp::Op(Op::CharNgram(p)) => (Arc::clone(p), false),
                StageOp::Op(Op::WordNgram(p)) => (Arc::clone(p), true),
                _ => continue,
            };
            // The intermediate must be consumed by exactly one PartialDot
            // and nothing else.
            let mut consumer = None;
            for (j, step) in steps.iter().enumerate() {
                if j == i {
                    continue;
                }
                let uses = step.inputs.contains(&Loc::Scratch(scratch_out))
                    || step.output == Loc::Scratch(scratch_out);
                if uses {
                    if consumer.is_some() {
                        continue 'search;
                    }
                    match &step.op {
                        StageOp::PartialDot { .. } if step.inputs.len() == 1 && j > i => {
                            consumer = Some(j);
                        }
                        _ => continue 'search,
                    }
                }
            }
            let Some(j) = consumer else { continue };
            let (linear, offset) = match &steps[j].op {
                StageOp::PartialDot { linear, offset } => (Arc::clone(linear), *offset),
                _ => unreachable!("consumer checked above"),
            };
            let (ngram, is_word) = ngram;
            let fused = Step {
                op: if is_word {
                    StageOp::FusedWordNgramDot {
                        ngram,
                        linear,
                        offset,
                    }
                } else {
                    StageOp::FusedCharNgramDot {
                        ngram,
                        linear,
                        offset,
                    }
                },
                inputs: steps[i].inputs.clone(),
                output: steps[j].output,
            };
            steps[i] = fused;
            steps.remove(j);
            fused_any = true;
            break;
        }
        if !fused_any {
            break;
        }
    }
    compact_scratch(steps, scratch);
}

/// Drops scratch definitions no step references and renumbers `Loc::Scratch`.
fn compact_scratch(steps: &mut [Step], scratch: &mut Vec<BufDef>) {
    let mut used = vec![false; scratch.len()];
    for step in steps.iter() {
        for loc in step.inputs.iter().chain(std::iter::once(&step.output)) {
            if let Loc::Scratch(s) = loc {
                used[*s as usize] = true;
            }
        }
    }
    let mut remap = vec![u32::MAX; scratch.len()];
    let mut next = 0u32;
    for (i, &u) in used.iter().enumerate() {
        if u {
            remap[i] = next;
            next += 1;
        }
    }
    let mut kept = Vec::with_capacity(next as usize);
    for (i, def) in scratch.iter().enumerate() {
        if used[i] {
            kept.push(*def);
        }
    }
    *scratch = kept;
    for step in steps.iter_mut() {
        for loc in step
            .inputs
            .iter_mut()
            .chain(std::iter::once(&mut step.output))
        {
            if let Loc::Scratch(s) = loc {
                *s = remap[*s as usize];
            }
        }
    }
}

fn signature_of(steps: &[Step], scratch: &[BufDef], dense: bool, vectorizable: bool) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(steps.len() as u64);
    for step in steps {
        h.write_u64(step.op.checksum());
        for loc in &step.inputs {
            h.write_u64(loc_code(*loc));
        }
        h.write_u64(loc_code(step.output));
    }
    for def in scratch {
        h.write(def.ty.to_string().as_bytes());
    }
    h.write(&[u8::from(dense), u8::from(vectorizable)]);
    h.finish()
}

fn loc_code(loc: Loc) -> u64 {
    match loc {
        Loc::Slot(i) => u64::from(i),
        Loc::Scratch(i) => (1 << 32) | u64::from(i),
    }
}

/// The borrowed source of a borrowed-source execution: the request row is
/// served to slot-0 readers directly and materialized into the pooled
/// slot-0 vector only if some step lacks a borrowed kernel — at most once
/// per request, and never on the SA/text and sparse-linear hot paths.
pub(crate) struct BorrowedSource<'a> {
    src: SourceRef<'a>,
    loaded: bool,
}

/// A borrowed source record handed to plan execution.
#[derive(Debug, Clone, Copy)]
pub enum SourceRef<'a> {
    /// A text line (CSV request payload).
    Text(&'a str),
    /// A dense numeric record.
    Dense(&'a [f32]),
    /// A sparse numeric record (pre-featurized request payload): sorted
    /// unique `indices` parallel to `values`.
    Sparse {
        /// Sorted, unique element indices.
        indices: &'a [u32],
        /// Values parallel to `indices`.
        values: &'a [f32],
        /// Logical dimensionality.
        dim: u32,
    },
}

impl<'a> SourceRef<'a> {
    /// Borrows a row of a source [`ColumnBatch`] as a source record (the
    /// bridge that lets wire-assembled batches feed the per-record engine
    /// and the per-record scheduler fallback).
    pub fn from_row(row: ColRef<'a>) -> Result<Self> {
        match row {
            ColRef::Text(s) => Ok(SourceRef::Text(s)),
            ColRef::Dense(x) => Ok(SourceRef::Dense(x)),
            ColRef::Sparse {
                indices,
                values,
                dim,
            } => Ok(SourceRef::Sparse {
                indices,
                values,
                dim,
            }),
            other => Err(DataError::Runtime(format!(
                "{:?} rows cannot be source records",
                other.column_type()
            ))),
        }
    }

    /// Copies the source into the (pooled) slot-0 buffer without
    /// reallocating when capacities suffice.
    pub fn load_into(&self, slot: &mut Vector) -> Result<()> {
        match (self, slot) {
            (SourceRef::Text(s), Vector::Text(dst)) => {
                dst.clear();
                dst.push_str(s);
                Ok(())
            }
            (SourceRef::Dense(x), Vector::Dense(dst)) if dst.len() == x.len() => {
                dst.copy_from_slice(x);
                Ok(())
            }
            (
                SourceRef::Sparse {
                    indices,
                    values,
                    dim,
                },
                Vector::Sparse {
                    indices: di,
                    values: dv,
                    dim: dd,
                },
            ) if dd == dim => {
                di.clear();
                di.extend_from_slice(indices);
                dv.clear();
                dv.extend_from_slice(values);
                Ok(())
            }
            (src, slot) => Err(DataError::Runtime(format!(
                "source {src:?} does not fit slot {:?}",
                slot.column_type()
            ))),
        }
    }

    /// Appends the source as one row of the (pooled) slot-0 batch.
    pub fn load_into_batch(&self, slot: &mut ColumnBatch) -> Result<()> {
        match (self, &mut *slot) {
            (SourceRef::Text(s), ColumnBatch::Text { .. } | ColumnBatch::TextSpans { .. }) => {
                slot.push_text(s)
            }
            (SourceRef::Dense(x), ColumnBatch::Dense { dim, .. }) if *dim == x.len() => {
                let row = slot.push_dense_row()?;
                row.copy_from_slice(x);
                Ok(())
            }
            (
                SourceRef::Sparse {
                    indices,
                    values,
                    dim,
                },
                ColumnBatch::Sparse { dim: dd, .. },
            ) if dd == dim => slot.push_row(ColRef::Sparse {
                indices,
                values,
                dim: *dim,
            }),
            (src, slot) => Err(DataError::Runtime(format!(
                "source {src:?} does not fit batch slot {:?}",
                slot.column_type()
            ))),
        }
    }

    /// Borrows the source as a batch-row reference (the shape the row-level
    /// kernels of the borrowed-source execute consume).
    pub fn as_row(&self) -> ColRef<'a> {
        match *self {
            SourceRef::Text(s) => ColRef::Text(s),
            SourceRef::Dense(x) => ColRef::Dense(x),
            SourceRef::Sparse {
                indices,
                values,
                dim,
            } => ColRef::Sparse {
                indices,
                values,
                dim,
            },
        }
    }

    /// Hash of the record content (materialization / result-cache key).
    ///
    /// Delegates to the shared helpers in [`pretzel_data::hash`] so wire
    /// ingest, Record staging, and batch rows all key caches identically.
    pub fn content_hash(&self) -> u64 {
        match self {
            SourceRef::Text(s) => pretzel_data::hash::content_hash_text(s),
            SourceRef::Dense(x) => pretzel_data::hash::content_hash_dense(x),
            SourceRef::Sparse {
                indices,
                values,
                dim,
            } => pretzel_data::hash::content_hash_sparse(indices, values, *dim),
        }
    }
}

/// A compiled, registered model plan: the unit of serving.
#[derive(Debug)]
pub struct ModelPlan {
    /// Source record type (slot 0).
    pub source_type: ColumnType,
    /// Plan working-set layout.
    pub slots: Vec<BufDef>,
    /// Physical stages in execution order (possibly shared with other
    /// plans via the runtime catalog).
    pub stages: Vec<Arc<PhysicalStage>>,
    /// Slot holding the final prediction.
    pub output_slot: u32,
    /// The logical plan this was compiled from (introspection/debugging).
    pub logical: StagePlan,
}

impl ModelPlan {
    /// Compiles a validated logical plan, interning operator parameters in
    /// the Object Store.
    pub fn compile(logical: StagePlan, opts: &CompileOptions, store: &ObjectStore) -> Result<Self> {
        Self::compile_with_catalog(logical, opts, store, |_| None)
    }

    /// [`Self::compile`] with a stage-residency probe: each stage's
    /// signature is prepared first and offered to `lookup`; a hit serves
    /// the resident [`PhysicalStage`] (identity and all — warm catalog
    /// entries survive a redeploy intact) and skips construction. The
    /// runtime threads its catalog through here so `catalog_gc=false`
    /// re-deploys of a retired version reuse its resident stages.
    pub fn compile_with_catalog(
        mut logical: StagePlan,
        opts: &CompileOptions,
        store: &ObjectStore,
        mut lookup: impl FnMut(u64) -> Option<Arc<PhysicalStage>>,
    ) -> Result<Self> {
        logical.validate()?;
        // Parameter interning: rewrite every step to reference the
        // canonical shared parameter objects (paper §4.1.3).
        for stage in &mut logical.stages {
            for step in &mut stage.steps {
                intern_step(step, store);
            }
        }
        let stages = logical
            .stages
            .iter()
            .map(|ls| {
                let prepared = PhysicalStage::prepare(ls, opts);
                lookup(prepared.signature)
                    .unwrap_or_else(|| Arc::new(PhysicalStage::finish(prepared)))
            })
            .collect();
        Ok(ModelPlan {
            source_type: logical.source_type,
            slots: logical.slots.clone(),
            stages,
            output_slot: logical.output_slot,
            logical,
        })
    }

    /// Column types of the plan working set (lease layout).
    pub fn slot_types(&self) -> Vec<ColumnType> {
        self.slots.iter().map(|d| d.ty).collect()
    }

    /// Executes the full plan inline over a leased working set.
    ///
    /// `slots` must match [`Self::slot_types`]; used by the request-response
    /// engine and by the batch engine's per-record inner loop.
    pub fn execute(
        &self,
        source: SourceRef<'_>,
        slots: &mut [Vector],
        ctx: &mut ExecCtx,
    ) -> Result<f32> {
        if slots.len() != self.slots.len() {
            return Err(DataError::Runtime(format!(
                "lease has {} slots, plan wants {}",
                slots.len(),
                self.slots.len()
            )));
        }
        source.load_into(&mut slots[0])?;
        ctx.source_hash = if ctx.cache.is_some() {
            source.content_hash()
        } else {
            0
        };
        for stage in &self.stages {
            stage.execute(slots, ctx)?;
        }
        slots[self.output_slot as usize]
            .as_scalar()
            .ok_or_else(|| DataError::Runtime("plan output is not scalar".into()))
    }

    /// Executes the full plan inline, scoring **straight off the borrowed
    /// source** instead of copying it into the pooled slot-0 vector first
    /// (the request-response engine's borrowed-source execute).
    ///
    /// Steps reading the source dispatch through row-level kernels
    /// ([`crate::plan::StageOp::apply_row`]); a step without a borrowed
    /// kernel for this source shape materializes slot 0 once and the plan
    /// continues on the classic path. Scores are bitwise-identical to
    /// [`Self::execute`] either way.
    pub fn execute_borrowed(
        &self,
        source: SourceRef<'_>,
        slots: &mut [Vector],
        ctx: &mut ExecCtx,
    ) -> Result<f32> {
        if slots.len() != self.slots.len() {
            return Err(DataError::Runtime(format!(
                "lease has {} slots, plan wants {}",
                slots.len(),
                self.slots.len()
            )));
        }
        ctx.source_hash = if ctx.cache.is_some() {
            source.content_hash()
        } else {
            0
        };
        let mut borrowed = BorrowedSource {
            src: source,
            loaded: false,
        };
        for stage in &self.stages {
            stage.execute_with_source(Some(&mut borrowed), slots, ctx)?;
        }
        slots[self.output_slot as usize]
            .as_scalar()
            .ok_or_else(|| DataError::Runtime("plan output is not scalar".into()))
    }

    /// Column types of the plan working set as batch buffers.
    ///
    /// Identical to [`Self::slot_types`]; named separately so call sites
    /// document which representation they lease.
    pub fn batch_slot_types(&self) -> Vec<ColumnType> {
        self.slot_types()
    }

    /// Executes the full plan over a chunk of sources using the columnar
    /// working set `slots` (one [`ColumnBatch`] per plan slot, matching
    /// [`Self::slot_types`]), writing one score per source into `out`.
    ///
    /// This is the batch engine's inner loop: stage kernels run once per
    /// chunk over contiguous columns, while scores stay bitwise-identical
    /// to [`Self::execute`] on each record.
    pub fn execute_batch(
        &self,
        sources: &[SourceRef<'_>],
        slots: &mut [ColumnBatch],
        ctx: &mut ExecCtx,
        out: &mut [f32],
    ) -> Result<()> {
        if slots.len() != self.slots.len() {
            return Err(DataError::Runtime(format!(
                "batch lease has {} slots, plan wants {}",
                slots.len(),
                self.slots.len()
            )));
        }
        if out.len() != sources.len() {
            return Err(DataError::Runtime(format!(
                "output buffer has {} rows, chunk has {}",
                out.len(),
                sources.len()
            )));
        }
        for slot in slots.iter_mut() {
            slot.reset();
        }
        for src in sources {
            src.load_into_batch(&mut slots[0])?;
        }
        ctx.source_hashes.clear();
        if ctx.cache.is_some() {
            ctx.source_hashes
                .extend(sources.iter().map(SourceRef::content_hash));
        }
        let rows = sources.len();
        for stage in &self.stages {
            stage.execute_batch(slots, rows, ctx)?;
        }
        let scores = slots[self.output_slot as usize]
            .as_scalars()
            .ok_or_else(|| DataError::Runtime("plan output is not a scalar batch".into()))?;
        if scores.len() != rows {
            return Err(DataError::Runtime(format!(
                "plan produced {} scores for {rows} rows",
                scores.len()
            )));
        }
        out.copy_from_slice(scores);
        Ok(())
    }

    /// Warms a vector pool with this plan's working set, sized from
    /// training statistics, so the first predictions hit pre-reserved
    /// buffers (paper §4.2.1: pool allocations are paid at initialization).
    pub fn warm_pool(&self, pool: &pretzel_data::pool::VectorPool) {
        for def in &self.slots {
            pool.warm_sized(def.ty, def.max_stored, 1);
        }
        for stage in &self.stages {
            for def in &stage.scratch {
                pool.warm_sized(def.ty, def.max_stored, 1);
            }
        }
    }

    /// Unique parameter bytes reachable from this plan (post-interning;
    /// shared objects counted once per plan).
    pub fn param_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for stage in &self.stages {
            for step in &stage.steps {
                if let StageOp::Op(op) = &step.op {
                    if seen.insert(op.params_addr()) {
                        total += op.heap_bytes();
                    }
                }
            }
        }
        total
    }
}

/// Interns every parameter referenced by a logical plan.
///
/// Called at registration: "when a Flour program is submitted for
/// planning, new parameters are kept in the Object Store, while parameters
/// that already exist are ignored and the stage information is rewritten
/// to reuse the previously loaded one" (paper §4.1.3).
pub fn intern_plan(plan: &mut StagePlan, store: &ObjectStore) {
    for stage in &mut plan.stages {
        for step in &mut stage.steps {
            intern_step(step, store);
        }
    }
}

fn intern_step(step: &mut Step, store: &ObjectStore) {
    match &mut step.op {
        StageOp::Op(op) => {
            *op = store.intern(op.clone());
        }
        StageOp::PartialDot { linear, .. } | StageOp::Combine { linear } => {
            if let Op::Linear(p) = store.intern(Op::Linear(Arc::clone(linear))) {
                *linear = p;
            }
        }
        StageOp::FusedCharNgramDot { ngram, linear, .. } => {
            if let Op::CharNgram(p) = store.intern(Op::CharNgram(Arc::clone(ngram))) {
                *ngram = p;
            }
            if let Op::Linear(p) = store.intern(Op::Linear(Arc::clone(linear))) {
                *linear = p;
            }
        }
        StageOp::FusedWordNgramDot { ngram, linear, .. } => {
            if let Op::WordNgram(p) = store.intern(Op::WordNgram(Arc::clone(ngram))) {
                *ngram = p;
            }
            if let Op::Linear(p) = store.intern(Op::Linear(Arc::clone(linear))) {
                *linear = p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NodeStats;
    use pretzel_ops::linear::LinearKind;
    use pretzel_ops::synth;
    use pretzel_ops::text::tokenizer::TokenizerParams;

    /// Hand-built SA-shaped logical plan:
    /// stage 0: Tokenizer(slot0→slot1), CharNgram(slot0→scratch0),
    ///          PartialDot(scratch0→slot2)
    /// stage 1: WordNgram([slot0,slot1]→scratch0), PartialDot(scratch0→
    ///          scratch1), Combine([slot2,scratch1]→slot3)
    fn sa_logical(
        char_dim: usize,
        word_dim: usize,
    ) -> (StagePlan, Arc<pretzel_ops::linear::LinearParams>) {
        let vocab = synth::vocabulary(1, 64);
        let cgram = Arc::new(synth::char_ngram(2, 3, char_dim));
        let wgram = Arc::new(synth::word_ngram(3, 2, word_dim, &vocab));
        let lin = Arc::new(synth::linear(4, char_dim + word_dim, LinearKind::Logistic));
        let plan = StagePlan {
            source_type: ColumnType::Text,
            slots: vec![
                BufDef::new(ColumnType::Text, 256),
                BufDef::new(ColumnType::TokenList, 64),
                BufDef::new(ColumnType::F32Scalar, 1),
                BufDef::new(ColumnType::F32Scalar, 1),
            ],
            stages: vec![
                LogicalStage {
                    steps: vec![
                        Step {
                            op: StageOp::Op(Op::Tokenizer(Arc::new(
                                TokenizerParams::whitespace_punct(),
                            ))),
                            inputs: vec![Loc::Slot(0)],
                            output: Loc::Slot(1),
                        },
                        Step {
                            op: StageOp::Op(Op::CharNgram(Arc::clone(&cgram))),
                            inputs: vec![Loc::Slot(0)],
                            output: Loc::Scratch(0),
                        },
                        Step {
                            op: StageOp::PartialDot {
                                linear: Arc::clone(&lin),
                                offset: 0,
                            },
                            inputs: vec![Loc::Scratch(0)],
                            output: Loc::Slot(2),
                        },
                    ],
                    scratch: vec![BufDef::new(ColumnType::F32Sparse { len: char_dim }, 64)],
                    reads: vec![0],
                    writes: vec![1, 2],
                    dense: false,
                    vectorizable: false,
                },
                LogicalStage {
                    steps: vec![
                        Step {
                            op: StageOp::Op(Op::WordNgram(Arc::clone(&wgram))),
                            inputs: vec![Loc::Slot(0), Loc::Slot(1)],
                            output: Loc::Scratch(0),
                        },
                        Step {
                            op: StageOp::PartialDot {
                                linear: Arc::clone(&lin),
                                offset: char_dim as u32,
                            },
                            inputs: vec![Loc::Scratch(0)],
                            output: Loc::Scratch(1),
                        },
                        Step {
                            op: StageOp::Combine {
                                linear: Arc::clone(&lin),
                            },
                            inputs: vec![Loc::Slot(2), Loc::Scratch(1)],
                            output: Loc::Slot(3),
                        },
                    ],
                    scratch: vec![
                        BufDef::new(ColumnType::F32Sparse { len: word_dim }, 64),
                        BufDef::new(ColumnType::F32Scalar, 1),
                    ],
                    reads: vec![0, 1, 2],
                    writes: vec![3],
                    dense: false,
                    vectorizable: false,
                },
            ],
            output_slot: 3,
            stats: NodeStats::new(256, 0.05),
        };
        (plan, lin)
    }

    fn run_plan(plan: &ModelPlan, text: &str) -> f32 {
        let pool = Arc::new(VectorPool::new());
        let mut ctx = ExecCtx::new(Arc::clone(&pool));
        let mut slots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        plan.execute(SourceRef::Text(text), &mut slots, &mut ctx)
            .unwrap()
    }

    #[test]
    fn fused_and_unfused_plans_agree() {
        let (logical, _) = sa_logical(64, 64);
        let store = ObjectStore::new();
        let fused = ModelPlan::compile(
            logical.clone(),
            &CompileOptions {
                fuse_ngram_dot: true,
            },
            &store,
        )
        .unwrap();
        let unfused = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        // Fusion removed the two ngram scratch intermediates.
        assert_eq!(fused.stages[0].steps.len(), 2);
        assert_eq!(fused.stages[0].scratch.len(), 0);
        assert_eq!(unfused.stages[0].steps.len(), 3);
        for text in ["a nice product", "utter garbage do not buy", ""] {
            let a = run_plan(&fused, text);
            let b = run_plan(&unfused, text);
            assert!((a - b).abs() < 1e-5, "{text}: fused {a} vs unfused {b}");
        }
    }

    #[test]
    fn compile_interns_parameters() {
        // Two *separately synthesized* (but content-identical) plans: the
        // second compilation must dedup against the first's parameters.
        let (l1, _) = sa_logical(32, 32);
        let (l2, _) = sa_logical(32, 32);
        let store = ObjectStore::new();
        let a = ModelPlan::compile(l1, &CompileOptions::default(), &store).unwrap();
        let b = ModelPlan::compile(l2, &CompileOptions::default(), &store).unwrap();
        // The two compilations share every parameter object, so the stage
        // signatures (which hash parameter checksums) are identical too.
        assert_eq!(a.stages[0].signature, b.stages[0].signature);
        assert!(store.reuse_count() > 0);
    }

    #[test]
    fn identical_stages_share_signature_distinct_weights_do_not() {
        let (l1, _) = sa_logical(32, 32);
        let (mut l2, _) = sa_logical(32, 32);
        let store = ObjectStore::new();
        let p1 = ModelPlan::compile(l1, &CompileOptions::default(), &store).unwrap();
        let p2 = ModelPlan::compile(l2.clone(), &CompileOptions::default(), &store).unwrap();
        assert_eq!(p1.stages[0].signature, p2.stages[0].signature);

        // Different linear weights change the fused stage signature.
        let lin2 = Arc::new(synth::linear(99, 64, LinearKind::Logistic));
        for stage in &mut l2.stages {
            for step in &mut stage.steps {
                match &mut step.op {
                    StageOp::PartialDot { linear, .. } | StageOp::Combine { linear } => {
                        *linear = Arc::clone(&lin2);
                    }
                    _ => {}
                }
            }
        }
        let p3 = ModelPlan::compile(l2, &CompileOptions::default(), &store).unwrap();
        assert_ne!(p1.stages[0].signature, p3.stages[0].signature);
    }

    #[test]
    fn materialization_cache_hits_skip_recomputation() {
        let (logical, _) = sa_logical(64, 64);
        let store = ObjectStore::new();
        // Fusion off so featurizer outputs stay cacheable.
        let plan = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        let pool = Arc::new(VectorPool::new());
        let cache = Arc::new(MaterializationCache::new(1 << 20));
        let mut ctx = ExecCtx::new(Arc::clone(&pool)).with_cache(Arc::clone(&cache));
        let mut slots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        let a = plan
            .execute(SourceRef::Text("a nice product"), &mut slots, &mut ctx)
            .unwrap();
        let h0 = cache.stats().hits;
        assert_eq!(h0, 0);
        let b = plan
            .execute(SourceRef::Text("a nice product"), &mut slots, &mut ctx)
            .unwrap();
        let h1 = cache.stats().hits;
        assert!(h1 >= 3, "tokenizer + both ngrams should hit, got {h1}");
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_buffers_return_to_pool() {
        let (logical, _) = sa_logical(32, 32);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        let pool = Arc::new(VectorPool::new());
        let mut ctx = ExecCtx::new(Arc::clone(&pool));
        let mut slots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        for _ in 0..5 {
            plan.execute(SourceRef::Text("some text here"), &mut slots, &mut ctx)
                .unwrap();
        }
        // 3 scratch buffers per run (sparse32, sparse32, scalar). The two
        // sparse buffers share a size class and stage 0 releases before
        // stage 1 acquires, so only ONE allocation ever happens; scalars
        // are pure values and never miss. Everything else is a pool hit.
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().hits(), 5 * 3 - 1);
    }

    #[test]
    fn execute_batch_bitwise_matches_execute() {
        let (logical, _) = sa_logical(64, 64);
        let store = ObjectStore::new();
        for fuse in [true, false] {
            let plan = ModelPlan::compile(
                logical.clone(),
                &CompileOptions {
                    fuse_ngram_dot: fuse,
                },
                &store,
            )
            .unwrap();
            let lines = [
                "a nice product",
                "utter garbage do not buy",
                "",
                "nice nice nice",
            ];
            let sources: Vec<SourceRef<'_>> = lines.iter().map(|l| SourceRef::Text(l)).collect();

            let pool = Arc::new(VectorPool::new());
            let mut ctx = ExecCtx::new(Arc::clone(&pool));
            let mut batch_slots: Vec<ColumnBatch> = plan
                .batch_slot_types()
                .iter()
                .map(|&t| ColumnBatch::with_type(t))
                .collect();
            let mut scores = vec![0.0f32; lines.len()];
            plan.execute_batch(&sources, &mut batch_slots, &mut ctx, &mut scores)
                .unwrap();

            for (i, line) in lines.iter().enumerate() {
                let expect = run_plan(&plan, line);
                // Bitwise equality, not tolerance: the batch kernels run
                // the same per-row arithmetic as the per-record kernels.
                assert_eq!(
                    scores[i].to_bits(),
                    expect.to_bits(),
                    "fuse={fuse} line {i}: batch {} vs single {expect}",
                    scores[i]
                );
            }
        }
    }

    #[test]
    fn chunk_cache_probe_matches_per_record_cache_semantics() {
        let (logical, _) = sa_logical(64, 64);
        let store = ObjectStore::new();
        // Fusion off so featurizer outputs stay cacheable.
        let plan = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        // Rows 0/2 and 1/5 duplicate on purpose: intra-chunk duplicates of
        // a miss must still count as hits, like per-record processing.
        let lines = [
            "a nice product",
            "utter garbage",
            "a nice product",
            "",
            "quite ok really",
            "utter garbage",
        ];
        let sources: Vec<SourceRef<'_>> = lines.iter().map(|l| SourceRef::Text(l)).collect();
        let pool = Arc::new(VectorPool::new());

        // Reference: the per-record cached path, cold then warm.
        let ref_cache = Arc::new(MaterializationCache::new(1 << 20));
        let mut ref_ctx = ExecCtx::new(Arc::clone(&pool)).with_cache(Arc::clone(&ref_cache));
        let mut slots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        let mut expected = Vec::new();
        let mut ref_stats = Vec::new();
        for _ in 0..2 {
            for line in &lines {
                expected.push(
                    plan.execute(SourceRef::Text(line), &mut slots, &mut ref_ctx)
                        .unwrap(),
                );
            }
            ref_stats.push(ref_cache.stats());
        }

        // Columnar chunk through the chunk-level probe, cold then warm.
        let batch_cache = Arc::new(MaterializationCache::new(1 << 20));
        let mut ctx = ExecCtx::new(Arc::clone(&pool)).with_cache(Arc::clone(&batch_cache));
        let mut batch_slots: Vec<ColumnBatch> = plan
            .batch_slot_types()
            .iter()
            .map(|&t| ColumnBatch::with_type(t))
            .collect();
        let mut scores = vec![0.0f32; lines.len()];
        for pass in 0..2 {
            plan.execute_batch(&sources, &mut batch_slots, &mut ctx, &mut scores)
                .unwrap();
            for (i, s) in scores.iter().enumerate() {
                assert_eq!(
                    s.to_bits(),
                    expected[pass * lines.len() + i].to_bits(),
                    "pass {pass} row {i}: batch {s} vs per-record {}",
                    expected[pass * lines.len() + i]
                );
            }
            let bs = batch_cache.stats();
            let rs = ref_stats[pass];
            let ((h, m), (rh, rm)) = ((bs.hits, bs.misses), (rs.hits, rs.misses));
            assert_eq!(
                (h, m),
                (rh, rm),
                "pass {pass}: chunk probe hit/miss counts diverge from per-record"
            );
        }
    }

    #[test]
    fn chunk_cache_probe_all_miss_then_all_hit() {
        let (logical, _) = sa_logical(32, 32);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        // Unfused SA has 3 cacheable steps: Tokenizer, CharNgram, WordNgram.
        let lines = ["alpha beta", "gamma", "delta epsilon zeta"];
        let sources: Vec<SourceRef<'_>> = lines.iter().map(|l| SourceRef::Text(l)).collect();
        let pool = Arc::new(VectorPool::new());
        let cache = Arc::new(MaterializationCache::new(1 << 20));
        let mut ctx = ExecCtx::new(Arc::clone(&pool)).with_cache(Arc::clone(&cache));
        let mut slots: Vec<ColumnBatch> = plan
            .batch_slot_types()
            .iter()
            .map(|&t| ColumnBatch::with_type(t))
            .collect();
        let mut scores = vec![0.0f32; lines.len()];
        plan.execute_batch(&sources, &mut slots, &mut ctx, &mut scores)
            .unwrap();
        let s = cache.stats();
        let (h, m) = (s.hits, s.misses);
        assert_eq!((h, m), (0, 3 * lines.len() as u64), "cold chunk: all miss");
        let cold = scores.clone();
        plan.execute_batch(&sources, &mut slots, &mut ctx, &mut scores)
            .unwrap();
        let s = cache.stats();
        let (h, m) = (s.hits, s.misses);
        assert_eq!(
            (h, m),
            (3 * lines.len() as u64, 3 * lines.len() as u64),
            "warm chunk: all hit, no new misses"
        );
        for (a, b) in cold.iter().zip(&scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunk_cache_probe_mixed_hit_miss_chunk() {
        let (logical, _) = sa_logical(32, 32);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        let pool = Arc::new(VectorPool::new());
        let cache = Arc::new(MaterializationCache::new(1 << 20));
        let mut ctx = ExecCtx::new(Arc::clone(&pool)).with_cache(Arc::clone(&cache));
        let mut slots: Vec<ColumnBatch> = plan
            .batch_slot_types()
            .iter()
            .map(|&t| ColumnBatch::with_type(t))
            .collect();
        // Warm the cache with "seen", then score a chunk mixing seen and
        // unseen rows: the seen row hits, the unseen row batch-evaluates.
        let mut out = vec![0.0f32; 1];
        plan.execute_batch(
            &[SourceRef::Text("seen before")],
            &mut slots,
            &mut ctx,
            &mut out,
        )
        .unwrap();
        let seen = out[0];
        let sources = [
            SourceRef::Text("brand new line"),
            SourceRef::Text("seen before"),
        ];
        let mut scores = vec![0.0f32; 2];
        plan.execute_batch(&sources, &mut slots, &mut ctx, &mut scores)
            .unwrap();
        assert_eq!(scores[1].to_bits(), seen.to_bits());
        // Uncached reference for the new row.
        let mut plain_ctx = ExecCtx::new(Arc::clone(&pool));
        let mut vslots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        let fresh = plan
            .execute(
                SourceRef::Text("brand new line"),
                &mut vslots,
                &mut plain_ctx,
            )
            .unwrap();
        assert_eq!(scores[0].to_bits(), fresh.to_bits());
    }

    #[test]
    fn chunk_cache_probe_survives_degenerate_budget() {
        // A budget too small to hold anything: every put evicts
        // immediately, deferred duplicates recompute — scores must still
        // be exact.
        let (logical, _) = sa_logical(32, 32);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        let pool = Arc::new(VectorPool::new());
        let cache = Arc::new(MaterializationCache::new(1));
        let mut ctx = ExecCtx::new(Arc::clone(&pool)).with_cache(cache);
        let mut slots: Vec<ColumnBatch> = plan
            .batch_slot_types()
            .iter()
            .map(|&t| ColumnBatch::with_type(t))
            .collect();
        let lines = ["dup line", "other", "dup line"];
        let sources: Vec<SourceRef<'_>> = lines.iter().map(|l| SourceRef::Text(l)).collect();
        let mut scores = vec![0.0f32; lines.len()];
        plan.execute_batch(&sources, &mut slots, &mut ctx, &mut scores)
            .unwrap();
        let mut plain_ctx = ExecCtx::new(Arc::clone(&pool));
        let mut vslots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        for (i, line) in lines.iter().enumerate() {
            let expect = plan
                .execute(SourceRef::Text(line), &mut vslots, &mut plain_ctx)
                .unwrap();
            assert_eq!(scores[i].to_bits(), expect.to_bits(), "row {i}");
        }
    }

    #[test]
    fn execute_batch_reuses_pooled_batches() {
        let (logical, _) = sa_logical(32, 32);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        let pool = Arc::new(VectorPool::new());
        let mut ctx = ExecCtx::new(Arc::clone(&pool));
        let mut slots: Vec<ColumnBatch> = plan
            .batch_slot_types()
            .iter()
            .map(|&t| ColumnBatch::with_type(t))
            .collect();
        let sources = [SourceRef::Text("some text"), SourceRef::Text("more text")];
        let mut out = vec![0.0; 2];
        for _ in 0..5 {
            plan.execute_batch(&sources, &mut slots, &mut ctx, &mut out)
                .unwrap();
        }
        // 3 scratch batches per run; the two sparse defs share a size
        // class and stage 0 releases before stage 1 acquires, so only one
        // sparse and one scalar batch are ever allocated.
        assert_eq!(pool.stats().misses(), 2);
        assert_eq!(pool.stats().hits(), 5 * 3 - 2);
    }

    #[test]
    fn execute_batch_source_mismatch_is_error() {
        let (logical, _) = sa_logical(16, 16);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(logical, &CompileOptions::default(), &store).unwrap();
        let pool = Arc::new(VectorPool::new());
        let mut ctx = ExecCtx::new(pool);
        let mut slots: Vec<ColumnBatch> = plan
            .batch_slot_types()
            .iter()
            .map(|&t| ColumnBatch::with_type(t))
            .collect();
        let dense = [1.0, 2.0];
        let sources = [SourceRef::Dense(&dense)];
        let mut out = vec![0.0; 1];
        assert!(plan
            .execute_batch(&sources, &mut slots, &mut ctx, &mut out)
            .is_err());
        // Wrong slot count is an error too.
        let mut short: Vec<ColumnBatch> = vec![ColumnBatch::with_type(ColumnType::Text)];
        assert!(plan
            .execute_batch(&[SourceRef::Text("x")], &mut short, &mut ctx, &mut [0.0])
            .is_err());
    }

    #[test]
    fn source_type_mismatch_is_error() {
        let (logical, _) = sa_logical(16, 16);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(logical, &CompileOptions::default(), &store).unwrap();
        let pool = Arc::new(VectorPool::new());
        let mut ctx = ExecCtx::new(pool);
        let mut slots: Vec<Vector> = plan
            .slot_types()
            .iter()
            .map(|&t| Vector::with_type(t))
            .collect();
        let err = plan.execute(SourceRef::Dense(&[1.0, 2.0]), &mut slots, &mut ctx);
        assert!(err.is_err());
    }

    #[test]
    fn lease_shape_mismatch_is_error() {
        let (logical, _) = sa_logical(16, 16);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(logical, &CompileOptions::default(), &store).unwrap();
        let pool = Arc::new(VectorPool::new());
        let mut ctx = ExecCtx::new(pool);
        let mut slots = vec![Vector::Text(String::new())];
        assert!(plan
            .execute(SourceRef::Text("x"), &mut slots, &mut ctx)
            .is_err());
    }

    #[test]
    fn compact_scratch_renumbers() {
        let lin = Arc::new(synth::linear(5, 8, LinearKind::Regression));
        let cgram = Arc::new(synth::char_ngram(6, 3, 8));
        let mut steps = vec![
            Step {
                op: StageOp::Op(Op::CharNgram(cgram)),
                inputs: vec![Loc::Slot(0)],
                output: Loc::Scratch(1),
            },
            Step {
                op: StageOp::PartialDot {
                    linear: lin,
                    offset: 0,
                },
                inputs: vec![Loc::Scratch(1)],
                output: Loc::Slot(1),
            },
        ];
        let mut scratch = vec![
            BufDef::new(ColumnType::F32Scalar, 1), // unused
            BufDef::new(ColumnType::F32Sparse { len: 8 }, 8),
        ];
        compact_scratch(&mut steps, &mut scratch);
        assert_eq!(scratch.len(), 1);
        assert_eq!(steps[0].output, Loc::Scratch(0));
        assert_eq!(steps[1].inputs[0], Loc::Scratch(0));
    }

    #[test]
    fn param_bytes_counts_unique_objects_once() {
        let (logical, _) = sa_logical(32, 32);
        let store = ObjectStore::new();
        let plan = ModelPlan::compile(
            logical,
            &CompileOptions {
                fuse_ngram_dot: false,
            },
            &store,
        )
        .unwrap();
        assert!(plan.param_bytes() > 0);
    }
}
