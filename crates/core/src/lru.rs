//! Byte-budgeted LRU map.
//!
//! Used by the sub-plan materialization cache ("we implemented a simple
//! Least Recently Used strategy on top of the Object Store to evict results
//! when a given memory threshold is met", paper §4.3) and by the FrontEnd's
//! prediction-result cache.
//!
//! Classic design: a slab of entries doubly linked in recency order plus a
//! `HashMap` from key to slab index. All operations are O(1) expected.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    cost: usize,
    prev: usize,
    next: usize,
}

/// An LRU map bounded by a total cost budget (e.g. bytes).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    budget: usize,
    used: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache with the given total cost budget.
    pub fn new(budget: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            budget,
            used: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current total cost of cached entries.
    pub fn used_cost(&self) -> usize {
        self.used
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Fetches `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(&self.slab[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Fetches `key` **without** touching recency order or the hit/miss
    /// counters — a pure read.
    ///
    /// The chunk-level cache probe uses this for its speculative partition
    /// pass: the real `get`/`insert` bookkeeping is replayed afterwards in
    /// original row order, so peeking must leave no trace.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slab[idx].value)
    }

    /// Inserts `key → value` with the given cost, evicting LRU entries as
    /// needed. An entry costlier than the whole budget is not cached.
    /// Replaces any existing entry for the key.
    pub fn insert(&mut self, key: K, value: V, cost: usize) {
        if cost > self.budget {
            return;
        }
        if let Some(idx) = self.map.get(&key).copied() {
            self.used = self.used - self.slab[idx].cost + cost;
            self.slab[idx].value = value;
            self.slab[idx].cost = cost;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
        } else {
            let entry = Entry {
                key: key.clone(),
                value,
                cost,
                prev: NIL,
                next: NIL,
            };
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slab[i] = entry;
                    i
                }
                None => {
                    self.slab.push(entry);
                    self.slab.len() - 1
                }
            };
            self.map.insert(key, idx);
            self.push_front(idx);
            self.used += cost;
        }
        while self.used > self.budget {
            self.evict_one();
        }
    }

    fn evict_one(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "over budget with empty cache");
        if idx == NIL {
            return;
        }
        self.unlink(idx);
        self.map.remove(&self.slab[idx].key);
        self.used -= self.slab[idx].cost;
        self.free.push(idx);
        self.evictions += 1;
    }

    /// Removes an entry, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.used -= self.slab[idx].cost;
        self.free.push(idx);
        Some(std::mem::take(&mut self.slab[idx].value))
    }

    /// Drops every entry, keeping the budget.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let mut c: LruCache<u32, String> = LruCache::new(100);
        c.insert(1, "a".into(), 10);
        assert_eq!(c.get(&1), Some(&"a".to_string()));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.used_cost(), 10);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(30);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(&1).is_some());
        c.insert(4, 4, 10);
        assert_eq!(c.get(&2), None, "2 was LRU and must be evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn peek_reads_without_recency_or_counter_side_effects() {
        let mut c: LruCache<u32, u32> = LruCache::new(30);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        // Peeking 1 must NOT protect it: it stays LRU.
        assert_eq!(c.peek(&1), Some(&1));
        assert_eq!(c.peek(&99), None);
        assert_eq!((c.hits(), c.misses()), (0, 0));
        c.insert(4, 4, 10);
        assert_eq!(c.peek(&1), None, "1 was still LRU and must be evicted");
    }

    #[test]
    fn oversized_entry_not_cached() {
        let mut c: LruCache<u32, u32> = LruCache::new(5);
        c.insert(1, 1, 10);
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn replace_updates_cost() {
        let mut c: LruCache<u32, u32> = LruCache::new(20);
        c.insert(1, 1, 10);
        c.insert(1, 2, 5);
        assert_eq!(c.used_cost(), 5);
        assert_eq!(c.get(&1), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replacement_can_trigger_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(20);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        // Growing key 2 pushes the total over budget; key 1 (LRU) must go.
        c.insert(2, 3, 20);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&3));
    }

    #[test]
    fn remove_frees_budget() {
        let mut c: LruCache<u32, u32> = LruCache::new(20);
        c.insert(1, 7, 10);
        assert_eq!(c.remove(&1), Some(7));
        assert_eq!(c.used_cost(), 0);
        assert_eq!(c.remove(&1), None);
        // Freed slab slots are reused.
        c.insert(2, 8, 10);
        assert_eq!(c.get(&2), Some(&8));
    }

    #[test]
    fn clear_empties_everything() {
        let mut c: LruCache<u32, u32> = LruCache::new(50);
        for i in 0..5 {
            c.insert(i, i, 10);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_cost(), 0);
        for i in 0..5 {
            assert_eq!(c.get(&i), None);
        }
    }

    #[test]
    fn heavy_churn_respects_budget() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        for i in 0..10_000u32 {
            c.insert(i, i, 1 + (i % 7) as usize);
            assert!(c.used_cost() <= 100);
        }
        assert!(!c.is_empty());
        // The most recent key is always retained.
        assert_eq!(c.get(&9999), Some(&9999));
    }
}
