//! PRETZEL: a white-box prediction serving system (OSDI '18 reproduction).
//!
//! PRETZEL "casts prediction serving as a database problem": trained
//! pipelines are translated into an intermediate representation, optimized
//! by a rule-based query optimizer, compiled into shareable *model plans*,
//! and served by a runtime that pools memory and CPU across all deployed
//! pipelines. The crate follows the paper's two-phase architecture:
//!
//! **Off-line phase** (paper §4.1):
//! * [`flour`] — the language-integrated API for expressing pipelines
//!   (`FlourContext` → transformations → [`flour::Flour::plan`]).
//! * [`oven`] — the optimizer/compiler: four rewriting steps run to
//!   fix-point, turning a transformation DAG into a DAG of *stages*.
//! * [`object_store`] — checksum-keyed parameter dedup plus the sub-plan
//!   materialization cache.
//! * [`plan`] — logical and physical stage representations; the
//!   [`physical::ModelPlan`] is what gets registered for serving.
//!
//! **On-line phase** (paper §4.2):
//! * [`runtime`] — plan registration (physical stages interned in a
//!   catalog), the request-response engine and the batch engine.
//! * [`lifecycle`] — the model lifecycle control plane: per-plan admission
//!   gates with drain-on-undeploy, alias swaps, churn counters; composed
//!   by the runtime's `deploy`/`undeploy`/`swap`/`list`.
//! * [`scheduler`] — executors pulling stage events from a shared pair of
//!   priority queues; reservation-based scheduling.
//! * [`frontend`] — TCP front end with prediction caching and delayed
//!   batching (the "external optimizations" of §4.3).
//!
//! # Quickstart
//!
//! ```
//! use pretzel_core::flour::FlourContext;
//! use pretzel_core::runtime::{Runtime, RuntimeConfig};
//! use pretzel_ops::linear::LinearKind;
//! use pretzel_ops::synth;
//! use std::sync::Arc;
//!
//! // Author a pipeline in Flour (normally extracted from a trained model).
//! let ctx = FlourContext::new();
//! let tokens = ctx.csv(',').select_text(0).tokenize();
//! let feats = tokens.word_ngram(Arc::new(synth::word_ngram(
//!     1, 2, 64, &synth::vocabulary(0, 64),
//! )));
//! let program = feats.classifier_linear(Arc::new(synth::linear(
//!     7, 64, LinearKind::Logistic,
//! )));
//!
//! // Compile (Oven) and register with the runtime.
//! let runtime = Runtime::new(RuntimeConfig::default());
//! let plan = program.plan().expect("optimizes");
//! let id = runtime.register(plan).expect("registers");
//!
//! // Serve.
//! let score = runtime.predict(id, "5,a nice product").expect("scores");
//! assert!((0.0..=1.0).contains(&score));
//! ```

pub mod flour;
pub mod frontend;
pub mod graph;
pub mod lifecycle;
pub mod log;
pub mod lru;
pub mod object_store;
pub mod oven;
pub mod physical;
pub mod plan;
pub mod runtime;
pub mod scheduler;
pub mod stats;
pub mod telemetry;

pub use flour::FlourContext;
pub use lifecycle::{DeployOptions, PlanInfo, UndeployReport};
pub use object_store::ObjectStore;
pub use physical::ModelPlan;
pub use runtime::{Runtime, RuntimeConfig};
