//! A tiny leveled log facade.
//!
//! The runtime's only diagnostic output channel: leveled lines on stderr,
//! filtered by the `PRETZEL_LOG` environment variable (`off`, `error`,
//! `warn`, `info`, `debug`; default `warn`). No timestamps, no global
//! state beyond a lazily-parsed filter, no dependencies — just enough so
//! operational messages (like delayed-batch drops) are filterable instead
//! of unconditional `eprintln!` noise.
//!
//! Use the [`log_warn!`](crate::log_warn) family of macros; format
//! arguments are only evaluated when the level is enabled.

use std::sync::atomic::{AtomicU8, Ordering};

/// Severity, ordered so a filter admits everything at or above itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// Filter states: 0..=3 mirror [`Level`], `OFF` silences everything,
/// `UNSET` means `PRETZEL_LOG` has not been parsed yet.
const OFF: u8 = 4;
const UNSET: u8 = u8::MAX;

static FILTER: AtomicU8 = AtomicU8::new(UNSET);

fn parse_filter() -> u8 {
    match std::env::var("PRETZEL_LOG").as_deref() {
        Ok("off") | Ok("none") => OFF,
        Ok("error") => Level::Error as u8,
        Ok("info") => Level::Info as u8,
        Ok("debug") => Level::Debug as u8,
        // Unset, unrecognized, or explicit "warn": the default.
        _ => Level::Warn as u8,
    }
}

/// True when a message at `level` would be emitted; callers gate format
/// argument evaluation on this (the macros do it for you).
#[inline]
pub fn enabled(level: Level) -> bool {
    let mut f = FILTER.load(Ordering::Relaxed);
    if f == UNSET {
        f = parse_filter();
        FILTER.store(f, Ordering::Relaxed);
    }
    level as u8 <= f
}

/// Emits one line on stderr. Callers go through the macros, which check
/// [`enabled`] first.
pub fn emit(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("pretzel [{}] {}", level.tag(), args);
}

/// Overrides the parsed filter (tests). `None` re-reads `PRETZEL_LOG` on
/// the next call site.
pub fn set_filter(level: Option<Level>) {
    FILTER.store(level.map_or(UNSET, |l| l as u8), Ordering::Relaxed);
}

#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_orders_levels() {
        set_filter(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_filter(None);
    }
}
