//! TCP FrontEnd: remote request submission plus the "external"
//! optimizations.
//!
//! "A FrontEnd is used to submit prediction requests to the system"
//! (paper §4); the end-to-end experiments (Figures 11 and 14) measure a
//! client talking to it over the network. The FrontEnd also implements the
//! two *external*, black-box-compatible optimizations of §4.3 — prediction
//! results caching (LRU) and delayed batching — which are "orthogonal to
//! PRETZEL's techniques, so both are applicable in a complementary manner".
//!
//! **Wire-to-columnar ingest** (the default, `RuntimeConfig::wire_columnar`):
//! request decoding grows packed text spans, dense rows, or CSR triples
//! straight into a pool-leased [`ColumnBatch`] via a
//! [`BatchAssembler`], and that batch — with its per-row content hashes —
//! is what the scheduler's chunks bulk-load from. The `Vec<Record>`
//! staging copy (one heap allocation per record between socket and
//! kernel) only exists on the ablation path (`wire_columnar = false`);
//! scores are bitwise-identical either way.
//!
//! **Model lifecycle over the wire**: the admin verbs `DEPLOY` /
//! `UNDEPLOY` / `SWAP` / `LIST` ride the same frame format (distinct
//! `kind` values), so the whole lifecycle — push a serialized model file,
//! flip an alias to the new version, retire the old one — is driveable
//! remotely through [`Client::deploy`], [`Client::undeploy`],
//! [`Client::swap`] and [`Client::list`]. Prediction requests may address
//! a plan **by alias** ([`FLAG_PLAN_ALIAS`]): the server resolves the
//! alias per attempt and transparently retries when the bound version
//! retires mid-request, so `swap` + `undeploy(old)` never loses an
//! alias-addressed request.
//!
//! The wire protocol is deliberately small: length-prefixed frames, one
//! request → one response, little-endian.
//!
//! ```text
//! request  := u32 body_len · u32 plan_id · u8 kind · u8 flags ·
//!             u16 n_records · (alias?) · record*      (kinds 0-2)
//!           | u32 body_len · u32 plan_id · u8 kind · u8 flags ·
//!             u16 0 · admin_body                      (kinds 0x10-0x13)
//! alias    := u32 len · bytes              (present iff flags & 0b100)
//! record   := u32 len · bytes            (kind 0: UTF-8 text)
//!           | u32 n   · f32*             (kind 1: dense)
//!           | u32 dim · u32 nnz ·
//!             u32*nnz · f32*nnz          (kind 2: sparse CSR triple)
//! response := u32 body_len · u8 status ·
//!             (status 0: u32 n · f32*) | (status 1: u32 len · bytes) |
//!             (status 2: admin payload)
//! ```

use crate::lifecycle::{PlanInfo, UndeployReport};
use crate::lru::LruCache;
use crate::physical::SourceRef;
use crate::runtime::{PlanId, Runtime};
use crate::scheduler::Record;
use parking_lot::Mutex;
use pretzel_data::hash::content_hash_sparse;
use pretzel_data::ingest::validate_sparse_indices;
use pretzel_data::serde_bin::Cursor;
use pretzel_data::{BatchAssembler, ColumnType, DataError, Result};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Record kind tag on the wire.
const KIND_TEXT: u8 = 0;
/// Dense record kind tag.
const KIND_DENSE: u8 = 1;
/// Sparse (CSR triple) record kind tag.
const KIND_SPARSE: u8 = 2;
/// Admin verb: deploy a serialized model file.
const ADMIN_DEPLOY: u8 = 0x10;
/// Admin verb: undeploy (retire + drain + reclaim) a plan.
const ADMIN_UNDEPLOY: u8 = 0x11;
/// Admin verb: atomically repoint an alias to a plan.
const ADMIN_SWAP: u8 = 0x12;
/// Admin verb: list deployed plans and aliases.
const ADMIN_LIST: u8 = 0x13;
/// Request flag: consult/populate the prediction-result cache.
pub const FLAG_RESULT_CACHE: u8 = 0b01;
/// Request flag: submit through the delayed batcher.
pub const FLAG_DELAYED_BATCH: u8 = 0b10;
/// Request flag: the body starts with an alias string; the header's
/// `plan_id` is ignored and the alias's current binding serves the
/// request (retrying across concurrent swaps/undeploys).
pub const FLAG_PLAN_ALIAS: u8 = 0b100;

/// Upper bound on one frame body. A length prefix above this is rejected
/// with a clean protocol error *before* any allocation happens — a garbage
/// or hostile prefix must never turn into a multi-gigabyte `vec![0; len]`.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// FrontEnd configuration.
#[derive(Debug, Clone, Default)]
pub struct FrontEndConfig {
    /// Byte budget of the prediction-result cache; 0 disables it.
    pub result_cache_bytes: usize,
    /// Flush interval of the delayed batcher; `None` disables it.
    pub batch_delay: Option<Duration>,
}

/// One plan's accumulated delayed-batch requests between flushes.
enum PendingBatch {
    /// Record-staged accumulation (`wire_columnar = false`).
    Records(Vec<(Record, mpsc::Sender<Result<f32>>)>),
    /// Wire-assembled accumulation: rows append to one per-plan column
    /// batch as they arrive; the flush submits it without any re-packing.
    Assembled {
        assembler: BatchAssembler,
        senders: Vec<mpsc::Sender<Result<f32>>>,
    },
}

#[derive(Default)]
struct Batcher {
    pending: Mutex<HashMap<PlanId, PendingBatch>>,
}

/// A running TCP front end.
pub struct FrontEnd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    flush_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("addr", &self.addr)
            .finish()
    }
}

impl FrontEnd {
    /// Binds a loopback listener and starts serving `runtime`.
    pub fn serve(runtime: Arc<Runtime>, config: FrontEndConfig) -> std::io::Result<FrontEnd> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let cache = (config.result_cache_bytes > 0).then(|| {
            Arc::new(Mutex::new(LruCache::<(PlanId, u64), f32>::new(
                config.result_cache_bytes,
            )))
        });
        let batcher = config.batch_delay.map(|_| Arc::new(Batcher::default()));

        // Delayed-batching flusher: every tick, drain pending requests per
        // plan and submit them as one batch (paper §4.3).
        let flush_thread = match (&batcher, config.batch_delay) {
            (Some(batcher), Some(delay)) => {
                let batcher = Arc::clone(batcher);
                let runtime = Arc::clone(&runtime);
                let stop = Arc::clone(&stop);
                Some(std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(delay);
                        flush_pending(&batcher, &runtime);
                    }
                    flush_pending(&batcher, &runtime);
                }))
            }
            _ => None,
        };

        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let runtime = Arc::clone(&runtime);
                let cache = cache.clone();
                let batcher = batcher.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, runtime, cache, batcher);
                });
            }
        });

        Ok(FrontEnd {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            flush_thread,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the service threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.flush_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FrontEnd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn flush_pending(batcher: &Batcher, runtime: &Runtime) {
    let drained: Vec<(PlanId, PendingBatch)> = {
        let mut pending = batcher.pending.lock();
        pending.drain().collect()
    };
    for (plan, pending) in drained {
        let (outcome, senders) = match pending {
            PendingBatch::Records(entries) => {
                let (records, senders): (Vec<Record>, Vec<_>) = entries.into_iter().unzip();
                (runtime.predict_batch_wait(plan, records), senders)
            }
            PendingBatch::Assembled { assembler, senders } => {
                let (rows, hashes) = assembler.finish();
                (
                    runtime.predict_batch_assembled_wait(plan, rows, hashes),
                    senders,
                )
            }
        };
        // A send error means that client disconnected mid-flush. That is
        // its problem alone: log it and keep delivering to the rest of the
        // flush instead of dropping the error (or the flush) on the floor.
        let mut dropped = 0usize;
        match outcome {
            Ok(scores) => {
                for (s, tx) in scores.into_iter().zip(senders) {
                    if tx.send(Ok(s)).is_err() {
                        dropped += 1;
                    }
                }
            }
            Err(e) => {
                for tx in senders {
                    if tx.send(Err(e.clone())).is_err() {
                        dropped += 1;
                    }
                }
            }
        }
        if dropped > 0 {
            eprintln!(
                "pretzel frontend: dropped {dropped} delayed-batch result(s) for plan {plan}: \
                 client(s) disconnected mid-flush"
            );
        }
    }
}

type ResultCache = Arc<Mutex<LruCache<(PlanId, u64), f32>>>;

/// One frame read off the wire.
enum Frame {
    /// A complete body.
    Body(Vec<u8>),
    /// Clean end of stream before a length prefix.
    Eof,
    /// The length prefix exceeded [`MAX_FRAME_BYTES`]; nothing allocated,
    /// body unread.
    Oversized(u64),
}

fn serve_connection(
    mut stream: TcpStream,
    runtime: Arc<Runtime>,
    cache: Option<ResultCache>,
    batcher: Option<Arc<Batcher>>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        let body = match read_frame(&mut stream)? {
            Frame::Body(b) => b,
            Frame::Eof => return Ok(()), // clean EOF
            Frame::Oversized(len) => {
                // Refuse with a protocol error instead of allocating. The
                // stream cannot be resynchronized past an unread body, so
                // reply and close.
                let reply = encode_err(&format!(
                    "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
                ));
                let _ = write_frame(&mut stream, &reply);
                return Ok(());
            }
        };
        let reply = match handle_request(&body, &runtime, &cache, &batcher) {
            Ok(Reply::Scores(scores)) => encode_ok(&scores),
            Ok(Reply::Admin(payload)) => encode_admin(&payload),
            Err(e) => encode_err(&e.to_string()),
        };
        write_frame(&mut stream, &reply)?;
    }
}

/// What a request produced: prediction scores or an admin payload.
enum Reply {
    /// Per-record prediction scores (status 0).
    Scores(Vec<f32>),
    /// Verb-specific admin payload (status 2).
    Admin(Vec<u8>),
}

/// Decoded request header fields.
struct RequestHead {
    plan: PlanId,
    kind: u8,
    flags: u8,
    n: usize,
}

fn handle_request(
    body: &[u8],
    runtime: &Runtime,
    cache: &Option<ResultCache>,
    batcher: &Option<Arc<Batcher>>,
) -> Result<Reply> {
    let mut cur = Cursor::new(body);
    let plan = cur.u32()?;
    let kind_flags = cur.u32()?;
    let head = RequestHead {
        plan,
        kind: (kind_flags & 0xff) as u8,
        flags: ((kind_flags >> 8) & 0xff) as u8,
        n: (kind_flags >> 16) as usize,
    };
    if matches!(
        head.kind,
        ADMIN_DEPLOY | ADMIN_UNDEPLOY | ADMIN_SWAP | ADMIN_LIST
    ) {
        return handle_admin(&head, cur, runtime).map(Reply::Admin);
    }
    if head.flags & FLAG_PLAN_ALIAS != 0 {
        // Alias addressing: resolve per attempt; a request that loses the
        // race with a concurrent undeploy of the swapped-from version
        // re-resolves and lands on the alias's current binding.
        let alias = cur.str()?;
        let records = cur.clone();
        return runtime
            .with_alias(&alias, |id| {
                let head = RequestHead {
                    plan: id,
                    kind: head.kind,
                    flags: head.flags & !FLAG_PLAN_ALIAS,
                    n: head.n,
                };
                serve_records(head, records.clone(), runtime, cache, batcher)
            })
            .map(Reply::Scores);
    }
    serve_records(head, cur, runtime, cache, batcher).map(Reply::Scores)
}

/// Serves a (plan-id-addressed) prediction request through the engine the
/// flags select.
fn serve_records(
    head: RequestHead,
    cur: Cursor<'_>,
    runtime: &Runtime,
    cache: &Option<ResultCache>,
    batcher: &Option<Arc<Batcher>>,
) -> Result<Vec<f32>> {
    if head.n == 0 {
        // An empty batch still validates its plan id (as the pre-assembler
        // path did by reaching the batch engine with zero records).
        let _ = runtime.plan(head.plan)?;
        return Ok(Vec::new());
    }
    if runtime.config().wire_columnar {
        handle_request_columnar(head, cur, runtime, cache, batcher)
    } else {
        handle_request_staged(head, cur, runtime, cache, batcher)
    }
}

/// Executes one admin verb, returning the verb-specific payload.
fn handle_admin(head: &RequestHead, mut cur: Cursor<'_>, runtime: &Runtime) -> Result<Vec<u8>> {
    use pretzel_data::serde_bin::wire;
    let mut payload = Vec::new();
    match head.kind {
        ADMIN_DEPLOY => {
            let alias = cur.str()?;
            let reserved = cur.u32()? != 0;
            let image = cur.bytes()?;
            let id = runtime.deploy(
                image,
                crate::lifecycle::DeployOptions {
                    alias: (!alias.is_empty()).then_some(alias),
                    reserved,
                },
            )?;
            wire::put_u32(&mut payload, id);
        }
        ADMIN_UNDEPLOY => {
            let report = runtime.undeploy(head.plan)?;
            wire::put_u64(&mut payload, report.freed_param_bytes as u64);
            wire::put_u32(&mut payload, report.freed_params as u32);
            wire::put_u32(&mut payload, report.dropped_stages as u32);
            wire::put_u32(&mut payload, report.dropped_aliases as u32);
        }
        ADMIN_SWAP => {
            let alias = cur.str()?;
            let previous = runtime.swap(&alias, head.plan)?;
            wire::put_u32(&mut payload, previous.unwrap_or(u32::MAX));
        }
        ADMIN_LIST => {
            let plans = runtime.list_plans();
            wire::put_u32(&mut payload, plans.len() as u32);
            for info in plans {
                wire::put_u32(&mut payload, info.id);
                wire::put_u32(&mut payload, u32::from(info.retired));
                wire::put_u32(&mut payload, info.in_flight as u32);
                wire::put_u32(&mut payload, info.aliases.len() as u32);
                for alias in &info.aliases {
                    wire::put_str(&mut payload, alias);
                }
            }
        }
        k => return Err(DataError::Runtime(format!("bad admin kind {k:#x}"))),
    }
    Ok(payload)
}

/// The slot-0 batch type a request's records assemble into. Dense and
/// sparse requests carry per-record dimensions; the first record's fixes
/// the batch shape (later records must match it).
///
/// The peeked dimension is untrusted wire input and (for dense rows)
/// drives the batch's capacity hint, so a prefix claiming more floats
/// than the body holds is rejected here — before anything allocates,
/// like every other hostile length prefix.
fn wire_batch_type(kind: u8, cur: &Cursor<'_>) -> Result<ColumnType> {
    match kind {
        KIND_TEXT => Ok(ColumnType::Text),
        KIND_DENSE => {
            let mut peek = cur.clone();
            let len = peek.u32()? as usize;
            if len.saturating_mul(4) > peek.remaining() {
                return Err(DataError::Codec(format!(
                    "dense record claims {len} features, body holds {} bytes",
                    peek.remaining()
                )));
            }
            Ok(ColumnType::F32Dense { len })
        }
        KIND_SPARSE => {
            let mut peek = cur.clone();
            Ok(ColumnType::F32Sparse {
                len: peek.u32()? as usize,
            })
        }
        k => Err(DataError::Runtime(format!("bad record kind {k}"))),
    }
}

/// Rows to size the assembler's batch lease for: enough for the request,
/// but never hinting more storage than the body's bytes could actually
/// fill (`n` itself is wire input; dense hints multiply by the row width).
fn assembler_rows_hint(ty: &ColumnType, n: usize, body_remaining: usize) -> usize {
    match ty {
        ColumnType::F32Dense { len } => n.min(body_remaining / (4 * (*len).max(1))),
        _ => n,
    }
}

/// Wire-to-columnar request handling: decode rows straight into a
/// pool-leased batch, then serve through the engine the flags select.
fn handle_request_columnar(
    head: RequestHead,
    mut cur: Cursor<'_>,
    runtime: &Runtime,
    cache: &Option<ResultCache>,
    batcher: &Option<Arc<Batcher>>,
) -> Result<Vec<f32>> {
    let RequestHead {
        plan,
        kind,
        flags,
        n,
    } = head;
    let pool = Arc::clone(runtime.ingest_pool());
    let ty = wire_batch_type(kind, &cur)?;
    let rows_hint = assembler_rows_hint(&ty, n, cur.remaining());
    // Per-row content hashing is only worth a pass over every record byte
    // when something will consume the hashes: the sub-plan materialization
    // cache, or this request's result-cache lookup (single-record requests
    // against a configured cache — the only shape the result cache
    // serves). Otherwise decode without it — on matching-bound text
    // workloads that pass was the wire-columnar path's measurable
    // overhead vs Record staging.
    let want_hashes = runtime.materialization_cache().is_some()
        || (flags & FLAG_RESULT_CACHE != 0 && n == 1 && cache.is_some());
    let lease = pool.acquire_batch(ty, rows_hint);
    let mut asm = if want_hashes {
        BatchAssembler::new(lease)
    } else {
        BatchAssembler::new_unhashed(lease)
    };
    let release = |asm: BatchAssembler| pool.release_batch(asm.finish().0);
    for _ in 0..n {
        let decoded = match kind {
            KIND_TEXT => asm.decode_text_row(&mut cur),
            KIND_DENSE => asm.decode_dense_row(&mut cur),
            _ => asm.decode_sparse_row(&mut cur),
        };
        if let Err(e) = decoded {
            release(asm);
            return Err(e);
        }
    }

    // Prediction-result cache: single-record requests only (multi-record
    // requests are batch jobs where caching individual rows buys little).
    // `use_cache` implies `want_hashes` above, so `asm.hash(0)` is always
    // populated on this path.
    let use_cache = flags & FLAG_RESULT_CACHE != 0 && n == 1 && cache.is_some();
    if use_cache {
        if let Some(cache) = cache {
            if let Some(&score) = cache.lock().get(&(plan, asm.hash(0))) {
                release(asm);
                return Ok(vec![score]);
            }
        }
    }

    if flags & FLAG_DELAYED_BATCH != 0 && n == 1 {
        let Some(batcher) = batcher else {
            release(asm);
            return Err(DataError::Runtime(
                "delayed batching not enabled on this front end".into(),
            ));
        };
        // Only a result-cache insert reads this, and `use_cache` implies
        // the assembler hashed at decode.
        let row_hash = if use_cache { asm.hash(0) } else { 0 };
        let (tx, rx) = mpsc::channel();
        let appended = {
            let mut pending = batcher.pending.lock();
            let entry = pending.entry(plan).or_insert_with(|| {
                // The per-plan accumulator leases its own batch; rows of
                // the same plan pack together until the next flush. It
                // starts unhashed unless the materialization cache needs
                // hashes; a hashed request appending later upgrades it.
                let lease = pool.acquire_batch(asm.column_type(), 16);
                PendingBatch::Assembled {
                    assembler: if runtime.materialization_cache().is_some() {
                        BatchAssembler::new(lease)
                    } else {
                        BatchAssembler::new_unhashed(lease)
                    },
                    senders: Vec::new(),
                }
            });
            match entry {
                PendingBatch::Assembled { assembler, senders } => {
                    assembler.append_assembled(&asm).map(|()| senders.push(tx))
                }
                PendingBatch::Records(_) => Err(DataError::Runtime(
                    "delayed batcher is accumulating staged records".into(),
                )),
            }
        };
        release(asm);
        appended?;
        let score = rx
            .recv()
            .map_err(|_| DataError::Runtime("batcher dropped request".into()))??;
        // Populate the result cache exactly like the staged path does for
        // delayed requests.
        if use_cache {
            if let Some(cache) = cache {
                cache.lock().insert((plan, row_hash), score, 16);
            }
        }
        return Ok(vec![score]);
    }

    let scores = if n == 1 {
        // Request-response engine, straight off the assembled row.
        let scored = SourceRef::from_row(asm.batch().row(0))
            .and_then(|src| runtime.predict_source(plan, src));
        match scored {
            Ok(score) => {
                if use_cache {
                    if let Some(cache) = cache {
                        cache.lock().insert((plan, asm.hash(0)), score, 16);
                    }
                }
                release(asm);
                vec![score]
            }
            Err(e) => {
                release(asm);
                return Err(e);
            }
        }
    } else {
        // Batch engine: the assembled batch is the submission — the lease
        // returns to the ingest pool when the request completes.
        let (rows, hashes) = asm.finish();
        runtime.predict_batch_assembled_wait(plan, rows, hashes)?
    };
    Ok(scores)
}

/// Record-staged request handling (`wire_columnar = false`): the ablation
/// control, decoding every record into an owned `Record` first.
fn handle_request_staged(
    head: RequestHead,
    mut cur: Cursor<'_>,
    runtime: &Runtime,
    cache: &Option<ResultCache>,
    batcher: &Option<Arc<Batcher>>,
) -> Result<Vec<f32>> {
    let RequestHead {
        plan,
        kind,
        flags,
        n,
    } = head;
    let mut records = Vec::with_capacity(n.min(1 << 16));
    let mut hashes = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        match kind {
            KIND_TEXT => {
                let s = cur.str()?;
                hashes.push(pretzel_data::hash::content_hash_text(&s));
                records.push(Record::Text(s));
            }
            KIND_DENSE => {
                let x = cur.f32s()?;
                hashes.push(pretzel_data::hash::content_hash_dense(&x));
                records.push(Record::Dense(x));
            }
            KIND_SPARSE => {
                let dim = cur.u32()?;
                let indices = cur.u32s()?;
                validate_sparse_indices(&indices, dim)?;
                let mut values = Vec::with_capacity(indices.len());
                for _ in 0..indices.len() {
                    values.push(cur.f32()?);
                }
                hashes.push(content_hash_sparse(&indices, &values, dim));
                records.push(Record::Sparse {
                    indices,
                    values,
                    dim,
                });
            }
            k => return Err(DataError::Runtime(format!("bad record kind {k}"))),
        }
    }

    // Prediction-result cache: single-record requests only.
    let use_cache = flags & FLAG_RESULT_CACHE != 0 && records.len() == 1;
    if use_cache {
        if let Some(cache) = cache {
            if let Some(&score) = cache.lock().get(&(plan, hashes[0])) {
                return Ok(vec![score]);
            }
        }
    }

    let scores = if flags & FLAG_DELAYED_BATCH != 0 && records.len() == 1 {
        match batcher {
            Some(batcher) => {
                let (tx, rx) = mpsc::channel();
                {
                    let mut pending = batcher.pending.lock();
                    let entry = pending
                        .entry(plan)
                        .or_insert_with(|| PendingBatch::Records(Vec::new()));
                    match entry {
                        PendingBatch::Records(entries) => {
                            entries.push((records.pop().expect("one record"), tx));
                        }
                        PendingBatch::Assembled { .. } => {
                            return Err(DataError::Runtime(
                                "delayed batcher is accumulating assembled rows".into(),
                            ))
                        }
                    }
                }
                vec![rx
                    .recv()
                    .map_err(|_| DataError::Runtime("batcher dropped request".into()))??]
            }
            None => {
                return Err(DataError::Runtime(
                    "delayed batching not enabled on this front end".into(),
                ))
            }
        }
    } else if records.len() == 1 {
        // Request-response engine.
        vec![runtime.predict_source(plan, records[0].as_source())?]
    } else {
        runtime.predict_batch_wait(plan, records)?
    };

    if use_cache {
        if let Some(cache) = cache {
            cache.lock().insert((plan, hashes[0]), scores[0], 16);
        }
    }
    Ok(scores)
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Frame> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(Frame::Eof),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Ok(Frame::Oversized(len as u64));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Frame::Body(body))
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)
}

fn encode_ok(scores: &[f32]) -> Vec<u8> {
    let mut body = Vec::with_capacity(5 + scores.len() * 4);
    body.push(0u8);
    body.extend_from_slice(&(scores.len() as u32).to_le_bytes());
    for &s in scores {
        body.extend_from_slice(&s.to_le_bytes());
    }
    body
}

fn encode_err(msg: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(5 + msg.len());
    body.push(1u8);
    body.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    body.extend_from_slice(msg.as_bytes());
    body
}

fn encode_admin(payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + payload.len());
    body.push(2u8);
    body.extend_from_slice(payload);
    body
}

/// A blocking client for the FrontEnd protocol.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a FrontEnd.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn roundtrip_raw(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        let io_err = |e: std::io::Error| DataError::Runtime(format!("frontend io: {e}"));
        write_frame(&mut self.stream, request).map_err(io_err)?;
        match read_frame(&mut self.stream).map_err(io_err)? {
            Frame::Body(body) => Ok(body),
            Frame::Eof => Err(DataError::Runtime("frontend closed connection".into())),
            Frame::Oversized(len) => Err(DataError::Runtime(format!(
                "frontend sent an oversized {len}-byte frame"
            ))),
        }
    }

    fn roundtrip(&mut self, request: &[u8]) -> Result<Vec<f32>> {
        decode_response(&self.roundtrip_raw(request)?)
    }

    fn roundtrip_admin(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        let body = self.roundtrip_raw(request)?;
        match body.split_first() {
            Some((2, payload)) => Ok(payload.to_vec()),
            Some((1, _)) => Err(decode_response(&body).unwrap_err()),
            other => Err(DataError::Runtime(format!(
                "bad admin response status {:?}",
                other.map(|(s, _)| s)
            ))),
        }
    }

    /// Scores one text record; `flags` selects external optimizations.
    pub fn predict_text(&mut self, plan: PlanId, line: &str, flags: u8) -> Result<f32> {
        let req = encode_request_text(plan, std::slice::from_ref(&line), flags);
        let scores = self.roundtrip(&req)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of text records.
    pub fn predict_text_batch(
        &mut self,
        plan: PlanId,
        lines: &[&str],
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&encode_request_text(plan, lines, flags))
    }

    /// Scores one dense record.
    pub fn predict_dense(&mut self, plan: PlanId, x: &[f32], flags: u8) -> Result<f32> {
        let req = encode_request_dense(plan, std::slice::from_ref(&x), flags);
        let scores = self.roundtrip(&req)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of dense records.
    pub fn predict_dense_batch(
        &mut self,
        plan: PlanId,
        records: &[&[f32]],
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&encode_request_dense(plan, records, flags))
    }

    /// Scores one sparse record (sorted unique `indices` parallel to
    /// `values`, logical dimensionality `dim`).
    pub fn predict_sparse(
        &mut self,
        plan: PlanId,
        indices: &[u32],
        values: &[f32],
        dim: u32,
        flags: u8,
    ) -> Result<f32> {
        let rows = [(indices, values)];
        let scores = self.roundtrip(&encode_request_sparse(plan, &rows, dim, flags))?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of sparse records sharing one dimensionality.
    pub fn predict_sparse_batch(
        &mut self,
        plan: PlanId,
        rows: &[(&[u32], &[f32])],
        dim: u32,
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&encode_request_sparse(plan, rows, dim, flags))
    }

    /// Scores one text record addressed by **alias**: the server resolves
    /// the alias's current version per attempt, so requests ride through
    /// concurrent `swap`/`undeploy` without observing a gap.
    pub fn predict_text_alias(&mut self, alias: &str, line: &str, flags: u8) -> Result<f32> {
        let req = encode_request_text_alias(alias, std::slice::from_ref(&line), flags);
        let scores = self.roundtrip(&req)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of text records addressed by alias.
    pub fn predict_text_batch_alias(
        &mut self,
        alias: &str,
        lines: &[&str],
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&encode_request_text_alias(alias, lines, flags))
    }

    /// Deploys a serialized model file on the server; optionally binds an
    /// alias and reserves a dedicated executor. Returns the new plan id.
    pub fn deploy(&mut self, image: &[u8], alias: Option<&str>, reserved: bool) -> Result<PlanId> {
        use pretzel_data::serde_bin::wire;
        let mut req = request_header(0, ADMIN_DEPLOY, 0, 0);
        wire::put_str(&mut req, alias.unwrap_or(""));
        wire::put_u32(&mut req, u32::from(reserved));
        wire::put_u64(&mut req, image.len() as u64);
        req.extend_from_slice(image);
        let payload = self.roundtrip_admin(&req)?;
        Cursor::new(&payload).u32()
    }

    /// Undeploys a plan on the server (retire, drain, reclaim); returns
    /// what was freed.
    pub fn undeploy(&mut self, plan: PlanId) -> Result<UndeployReport> {
        let req = request_header(plan, ADMIN_UNDEPLOY, 0, 0);
        let payload = self.roundtrip_admin(&req)?;
        let mut cur = Cursor::new(&payload);
        Ok(UndeployReport {
            freed_param_bytes: cur.u64()? as usize,
            freed_params: cur.u32()? as usize,
            dropped_stages: cur.u32()? as usize,
            dropped_aliases: cur.u32()? as usize,
        })
    }

    /// Atomically repoints `alias` to `plan` on the server; returns the
    /// previously bound plan, if any.
    pub fn swap(&mut self, alias: &str, plan: PlanId) -> Result<Option<PlanId>> {
        use pretzel_data::serde_bin::wire;
        let mut req = request_header(plan, ADMIN_SWAP, 0, 0);
        wire::put_str(&mut req, alias);
        let payload = self.roundtrip_admin(&req)?;
        let previous = Cursor::new(&payload).u32()?;
        Ok((previous != u32::MAX).then_some(previous))
    }

    /// Lists every plan the server knows (tombstones included) with
    /// lifecycle state and bound aliases.
    pub fn list(&mut self) -> Result<Vec<PlanInfo>> {
        let req = request_header(0, ADMIN_LIST, 0, 0);
        let payload = self.roundtrip_admin(&req)?;
        let mut cur = Cursor::new(&payload);
        let n = cur.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = cur.u32()?;
            let retired = cur.u32()? != 0;
            let in_flight = cur.u32()? as usize;
            let n_aliases = cur.u32()? as usize;
            let mut aliases = Vec::with_capacity(n_aliases.min(64));
            for _ in 0..n_aliases {
                aliases.push(cur.str()?);
            }
            out.push(PlanInfo {
                id,
                retired,
                in_flight,
                aliases,
            });
        }
        Ok(out)
    }
}

fn request_header(plan: PlanId, kind: u8, flags: u8, n: usize) -> Vec<u8> {
    let mut req = Vec::new();
    req.extend_from_slice(&plan.to_le_bytes());
    let kind_flags = u32::from(kind) | (u32::from(flags) << 8) | ((n as u32) << 16);
    req.extend_from_slice(&kind_flags.to_le_bytes());
    req
}

fn encode_request_text(plan: PlanId, lines: &[&str], flags: u8) -> Vec<u8> {
    let mut req = request_header(plan, KIND_TEXT, flags, lines.len());
    for line in lines {
        req.extend_from_slice(&(line.len() as u32).to_le_bytes());
        req.extend_from_slice(line.as_bytes());
    }
    req
}

fn encode_request_text_alias(alias: &str, lines: &[&str], flags: u8) -> Vec<u8> {
    let mut req = request_header(0, KIND_TEXT, flags | FLAG_PLAN_ALIAS, lines.len());
    pretzel_data::serde_bin::wire::put_str(&mut req, alias);
    for line in lines {
        req.extend_from_slice(&(line.len() as u32).to_le_bytes());
        req.extend_from_slice(line.as_bytes());
    }
    req
}

fn encode_request_dense(plan: PlanId, records: &[&[f32]], flags: u8) -> Vec<u8> {
    let mut req = request_header(plan, KIND_DENSE, flags, records.len());
    for x in records {
        req.extend_from_slice(&(x.len() as u32).to_le_bytes());
        for v in *x {
            req.extend_from_slice(&v.to_le_bytes());
        }
    }
    req
}

fn encode_request_sparse(plan: PlanId, rows: &[(&[u32], &[f32])], dim: u32, flags: u8) -> Vec<u8> {
    let mut req = request_header(plan, KIND_SPARSE, flags, rows.len());
    for (indices, values) in rows {
        req.extend_from_slice(&dim.to_le_bytes());
        req.extend_from_slice(&(indices.len() as u32).to_le_bytes());
        for i in *indices {
            req.extend_from_slice(&i.to_le_bytes());
        }
        for v in *values {
            req.extend_from_slice(&v.to_le_bytes());
        }
    }
    req
}

fn decode_response(body: &[u8]) -> Result<Vec<f32>> {
    let (&status, rest) = body
        .split_first()
        .ok_or_else(|| DataError::Runtime("empty frame".into()))?;
    let mut cur = Cursor::new(rest);
    match status {
        0 => cur.f32s(),
        1 => {
            let len = cur.u32()? as usize;
            let msg = String::from_utf8_lossy(&rest[4..(4 + len).min(rest.len())]).into_owned();
            Err(DataError::Runtime(format!("server error: {msg}")))
        }
        s => Err(DataError::Runtime(format!("bad response status {s}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flour::FlourContext;
    use crate::runtime::RuntimeConfig;
    use pretzel_ops::linear::LinearKind;
    use pretzel_ops::synth;
    use std::sync::atomic::AtomicUsize;

    fn serve_sa(config: FrontEndConfig) -> (Arc<Runtime>, FrontEnd, PlanId) {
        serve_sa_with(
            config,
            RuntimeConfig {
                n_executors: 2,
                ..RuntimeConfig::default()
            },
        )
    }

    fn serve_sa_with(
        config: FrontEndConfig,
        rt_config: RuntimeConfig,
    ) -> (Arc<Runtime>, FrontEnd, PlanId) {
        let vocab = synth::vocabulary(0, 64);
        let ctx = FlourContext::new();
        let tokens = ctx.csv(',').select_text(1).tokenize();
        let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 64)));
        let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 64, &vocab)));
        let logical = c
            .concat(&w)
            .classifier_linear(Arc::new(synth::linear(3, 128, LinearKind::Logistic)))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(rt_config));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), config).unwrap();
        (rt, fe, id)
    }

    #[test]
    fn client_server_round_trip_matches_local() {
        let (rt, fe, id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let remote = client.predict_text(id, "5,a nice product", 0).unwrap();
        let local = rt.predict(id, "5,a nice product").unwrap();
        assert!((remote - local).abs() < 1e-6);
        fe.stop();
    }

    #[test]
    fn batch_request_over_the_wire() {
        let (rt, fe, id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let lines = ["1,bad product", "5,wonderful thing", "3,meh"];
        let scores = client.predict_text_batch(id, &lines, 0).unwrap();
        assert_eq!(scores.len(), 3);
        for (line, s) in lines.iter().zip(&scores) {
            assert!((rt.predict(id, line).unwrap() - s).abs() < 1e-6);
        }
        fe.stop();
    }

    #[test]
    fn server_reports_errors_for_unknown_plan() {
        let (_rt, fe, _id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let err = client.predict_text(99, "1,x", 0).unwrap_err();
        assert!(err.to_string().contains("unknown plan"));
        fe.stop();
    }

    #[test]
    fn result_cache_serves_repeats() {
        let (_rt, fe, id) = serve_sa(FrontEndConfig {
            result_cache_bytes: 1 << 16,
            batch_delay: None,
        });
        let mut client = Client::connect(fe.addr()).unwrap();
        let a = client
            .predict_text(id, "5,same line", FLAG_RESULT_CACHE)
            .unwrap();
        let b = client
            .predict_text(id, "5,same line", FLAG_RESULT_CACHE)
            .unwrap();
        assert_eq!(a, b);
        fe.stop();
    }

    #[test]
    fn delayed_batching_returns_correct_scores() {
        let (rt, fe, id) = serve_sa(FrontEndConfig {
            result_cache_bytes: 0,
            batch_delay: Some(Duration::from_millis(2)),
        });
        let addr = fe.addr();
        let local = rt.predict(id, "4,pretty good").unwrap();
        // Several concurrent clients ride the same flush.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.predict_text(id, "4,pretty good", FLAG_DELAYED_BATCH)
                        .unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!((h.join().unwrap() - local).abs() < 1e-6);
        }
        fe.stop();
    }

    #[test]
    fn delayed_batching_staged_ablation_path() {
        let (rt, fe, id) = serve_sa_with(
            FrontEndConfig {
                result_cache_bytes: 0,
                batch_delay: Some(Duration::from_millis(2)),
            },
            RuntimeConfig {
                n_executors: 2,
                wire_columnar: false,
                ..RuntimeConfig::default()
            },
        );
        let local = rt.predict(id, "4,pretty good").unwrap();
        let mut c = Client::connect(fe.addr()).unwrap();
        let remote = c
            .predict_text(id, "4,pretty good", FLAG_DELAYED_BATCH)
            .unwrap();
        assert_eq!(remote.to_bits(), local.to_bits());
        fe.stop();
    }

    #[test]
    fn dense_records_over_the_wire() {
        let dim = 8;
        let ctx = FlourContext::new();
        let logical = ctx
            .dense_source(dim)
            .scale(Arc::new(synth::scaler(1, dim)))
            .regressor_tree(Arc::new(synth::ensemble(
                2,
                dim,
                2,
                2,
                pretzel_ops::tree::EnsembleMode::Sum,
            )))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), FrontEndConfig::default()).unwrap();
        let mut client = Client::connect(fe.addr()).unwrap();
        let x = vec![0.25f32; dim];
        let remote = client.predict_dense(id, &x, 0).unwrap();
        assert!((remote - rt.predict_dense(id, &x).unwrap()).abs() < 1e-6);
        fe.stop();
    }

    #[test]
    fn sparse_records_over_the_wire() {
        let dim = 16u32;
        let ctx = FlourContext::new();
        let logical = ctx
            .sparse_source(dim as usize)
            .classifier_linear(Arc::new(synth::linear(
                5,
                dim as usize,
                LinearKind::Logistic,
            )))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), FrontEndConfig::default()).unwrap();
        let mut client = Client::connect(fe.addr()).unwrap();
        let (indices, values) = (vec![1u32, 7, 12], vec![0.5f32, -2.0, 1.25]);
        let remote = client
            .predict_sparse(id, &indices, &values, dim, 0)
            .unwrap();
        let local = rt.predict_sparse(id, &indices, &values, dim).unwrap();
        assert_eq!(remote.to_bits(), local.to_bits());
        // Batch sparse too.
        let rows: Vec<(&[u32], &[f32])> =
            vec![(&indices, &values), (&[0u32, 3][..], &[1.0f32, 2.0][..])];
        let scores = client.predict_sparse_batch(id, &rows, dim, 0).unwrap();
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].to_bits(), local.to_bits());
        fe.stop();
    }

    #[test]
    fn malformed_sparse_record_is_protocol_error() {
        let dim = 8u32;
        let ctx = FlourContext::new();
        let logical = ctx
            .sparse_source(dim as usize)
            .classifier_linear(Arc::new(synth::linear(
                6,
                dim as usize,
                LinearKind::Regression,
            )))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), FrontEndConfig::default()).unwrap();
        let mut client = Client::connect(fe.addr()).unwrap();
        // Out-of-dim index: rejected, connection stays usable.
        let err = client
            .predict_sparse(id, &[99], &[1.0], dim, 0)
            .unwrap_err();
        assert!(err.to_string().contains("out of dim"));
        let ok = client.predict_sparse(id, &[2], &[1.0], dim, 0);
        assert!(ok.is_ok());
        fe.stop();
    }

    #[test]
    fn lifecycle_admin_verbs_over_the_wire() {
        let (rt, fe, seed_id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();

        // DEPLOY: push two versions of a model file.
        let image_of = |seed: u64| {
            let vocab = synth::vocabulary(0, 64);
            let ctx = FlourContext::new();
            let tokens = ctx.csv(',').select_text(1).tokenize();
            let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 64)));
            let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 64, &vocab)));
            c.concat(&w)
                .classifier_linear(Arc::new(synth::linear(seed, 128, LinearKind::Logistic)))
                .graph()
                .to_model_image()
        };
        let v1 = client.deploy(&image_of(100), Some("sa"), false).unwrap();
        let line = "5,a really nice product";
        let v1_score = client.predict_text_alias("sa", line, 0).unwrap();
        assert_eq!(
            v1_score.to_bits(),
            rt.predict(v1, line).unwrap().to_bits(),
            "alias serves the deployed version"
        );

        // SWAP: deploy v2, repoint, retire v1.
        let v2 = client.deploy(&image_of(101), None, false).unwrap();
        assert_eq!(client.swap("sa", v2).unwrap(), Some(v1));
        let v2_score = client.predict_text_alias("sa", line, 0).unwrap();
        assert_eq!(v2_score.to_bits(), rt.predict(v2, line).unwrap().to_bits());

        // UNDEPLOY v1: frees its unique weights, keeps shared featurizers.
        let report = client.undeploy(v1).unwrap();
        assert!(report.freed_param_bytes > 0, "v1's linear weights freed");
        let err = client.predict_text(v1, line, 0).unwrap_err();
        assert!(err.to_string().contains("retired"), "{err}");
        // The alias still serves v2 without a gap.
        let again = client.predict_text_alias("sa", line, 0).unwrap();
        assert_eq!(again.to_bits(), v2_score.to_bits());

        // LIST reflects the lifecycle state.
        let plans = client.list().unwrap();
        let find = |id| plans.iter().find(|p| p.id == id).unwrap();
        assert!(!find(seed_id).retired);
        assert!(find(v1).retired);
        assert!(find(v1).aliases.is_empty());
        assert_eq!(find(v2).aliases, vec!["sa".to_string()]);
        fe.stop();
    }

    #[test]
    fn alias_requests_survive_swap_and_undeploy_churn() {
        let (rt, fe, v1) = serve_sa(FrontEndConfig::default());
        rt.swap("live", v1).unwrap();
        let line = "4,steady request stream";
        let addr = fe.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let scored = Arc::new(AtomicUsize::new(0));
        let scorers: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let scored = Arc::clone(&scored);
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let mut scores = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        scores.push(c.predict_text_alias("live", line, 0).unwrap());
                        scored.fetch_add(1, Ordering::Relaxed);
                    }
                    scores
                })
            })
            .collect();
        // Churn versions under the scorers: each version is an identical
        // pipeline with fresh weights; every response must match one of
        // the deployed versions bitwise.
        let mut references = vec![rt.predict(v1, line).unwrap()];
        let mut current = v1;
        let mut admin = Client::connect(addr).unwrap();
        for seed in 0..6u64 {
            // Gate each round on scorer progress so churn overlaps traffic.
            let floor = scored.load(Ordering::Relaxed) + 3;
            while scored.load(Ordering::Relaxed) < floor {
                std::thread::yield_now();
            }
            let vocab = synth::vocabulary(0, 64);
            let ctx = FlourContext::new();
            let tokens = ctx.csv(',').select_text(1).tokenize();
            let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 64)));
            let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 64, &vocab)));
            let image = c
                .concat(&w)
                .classifier_linear(Arc::new(synth::linear(
                    500 + seed,
                    128,
                    LinearKind::Logistic,
                )))
                .graph()
                .to_model_image();
            let next = admin.deploy(&image, None, false).unwrap();
            references.push(rt.predict(next, line).unwrap());
            assert_eq!(admin.swap("live", next).unwrap(), Some(current));
            admin.undeploy(current).unwrap();
            current = next;
        }
        stop.store(true, Ordering::Relaxed);
        let mut total = 0usize;
        for s in scorers {
            for score in s.join().unwrap() {
                total += 1;
                assert!(
                    references.iter().any(|r| r.to_bits() == score.to_bits()),
                    "score {score} matches no deployed version"
                );
            }
        }
        assert!(total > 0, "scorers made progress during churn");
        fe.stop();
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let (_rt, fe, _id) = serve_sa(FrontEndConfig::default());
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        // A hostile length prefix: ~4 GiB. The server must answer with a
        // protocol error (not attempt the allocation) and close cleanly.
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).unwrap();
        let len = u32::from_le_bytes(len) as usize;
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        let err = decode_response(&body).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // Connection is closed afterwards.
        let mut probe = [0u8; 1];
        assert_eq!(stream.read(&mut probe).unwrap(), 0);
        fe.stop();
    }
}
