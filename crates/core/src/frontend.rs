//! TCP FrontEnd: remote request submission plus the "external"
//! optimizations.
//!
//! "A FrontEnd is used to submit prediction requests to the system"
//! (paper §4); the end-to-end experiments (Figures 11 and 14) measure a
//! client talking to it over the network. The FrontEnd also implements the
//! two *external*, black-box-compatible optimizations of §4.3 — prediction
//! results caching (LRU) and delayed batching — which are "orthogonal to
//! PRETZEL's techniques, so both are applicable in a complementary manner".
//!
//! The wire protocol is deliberately small: length-prefixed frames, one
//! request → one response, little-endian.
//!
//! ```text
//! request  := u32 body_len · u32 plan_id · u8 kind · u8 flags ·
//!             u16 n_records · record*
//! record   := u32 len · bytes          (kind 0: UTF-8 text)
//!           | u32 n   · f32*           (kind 1: dense)
//! response := u32 body_len · u8 status ·
//!             (status 0: u16 n · f32*) | (status 1: u32 len · bytes)
//! ```

use crate::lru::LruCache;
use crate::runtime::{PlanId, Runtime};
use crate::scheduler::Record;
use parking_lot::Mutex;
use pretzel_data::hash::{fnv1a, Fnv1a};
use pretzel_data::{DataError, Result};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Record kind tag on the wire.
const KIND_TEXT: u8 = 0;
/// Dense record kind tag.
const KIND_DENSE: u8 = 1;
/// Request flag: consult/populate the prediction-result cache.
pub const FLAG_RESULT_CACHE: u8 = 0b01;
/// Request flag: submit through the delayed batcher.
pub const FLAG_DELAYED_BATCH: u8 = 0b10;

/// FrontEnd configuration.
#[derive(Debug, Clone, Default)]
pub struct FrontEndConfig {
    /// Byte budget of the prediction-result cache; 0 disables it.
    pub result_cache_bytes: usize,
    /// Flush interval of the delayed batcher; `None` disables it.
    pub batch_delay: Option<Duration>,
}

type PendingBatch = Vec<(Record, mpsc::Sender<Result<f32>>)>;

#[derive(Default)]
struct Batcher {
    pending: Mutex<HashMap<PlanId, PendingBatch>>,
}

/// A running TCP front end.
pub struct FrontEnd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    flush_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("addr", &self.addr)
            .finish()
    }
}

impl FrontEnd {
    /// Binds a loopback listener and starts serving `runtime`.
    pub fn serve(runtime: Arc<Runtime>, config: FrontEndConfig) -> std::io::Result<FrontEnd> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let cache = (config.result_cache_bytes > 0).then(|| {
            Arc::new(Mutex::new(LruCache::<(PlanId, u64), f32>::new(
                config.result_cache_bytes,
            )))
        });
        let batcher = config.batch_delay.map(|_| Arc::new(Batcher::default()));

        // Delayed-batching flusher: every tick, drain pending requests per
        // plan and submit them as one batch (paper §4.3).
        let flush_thread = match (&batcher, config.batch_delay) {
            (Some(batcher), Some(delay)) => {
                let batcher = Arc::clone(batcher);
                let runtime = Arc::clone(&runtime);
                let stop = Arc::clone(&stop);
                Some(std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(delay);
                        flush_pending(&batcher, &runtime);
                    }
                    flush_pending(&batcher, &runtime);
                }))
            }
            _ => None,
        };

        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let runtime = Arc::clone(&runtime);
                let cache = cache.clone();
                let batcher = batcher.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, runtime, cache, batcher);
                });
            }
        });

        Ok(FrontEnd {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            flush_thread,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the service threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.flush_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FrontEnd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn flush_pending(batcher: &Batcher, runtime: &Runtime) {
    let drained: Vec<(PlanId, PendingBatch)> = {
        let mut pending = batcher.pending.lock();
        pending.drain().collect()
    };
    for (plan, entries) in drained {
        let (records, senders): (Vec<Record>, Vec<mpsc::Sender<Result<f32>>>) =
            entries.into_iter().unzip();
        match runtime.predict_batch_wait(plan, records) {
            Ok(scores) => {
                for (s, tx) in scores.into_iter().zip(senders) {
                    let _ = tx.send(Ok(s));
                }
            }
            Err(e) => {
                for tx in senders {
                    let _ = tx.send(Err(e.clone()));
                }
            }
        }
    }
}

type ResultCache = Arc<Mutex<LruCache<(PlanId, u64), f32>>>;

fn serve_connection(
    mut stream: TcpStream,
    runtime: Arc<Runtime>,
    cache: Option<ResultCache>,
    batcher: Option<Arc<Batcher>>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(b)) => b,
            Ok(None) => return Ok(()), // clean EOF
            Err(e) => return Err(e),
        };
        let reply = match handle_request(&body, &runtime, &cache, &batcher) {
            Ok(scores) => encode_ok(&scores),
            Err(e) => encode_err(&e.to_string()),
        };
        write_frame(&mut stream, &reply)?;
    }
}

fn handle_request(
    body: &[u8],
    runtime: &Runtime,
    cache: &Option<ResultCache>,
    batcher: &Option<Arc<Batcher>>,
) -> Result<Vec<f32>> {
    let mut cur = pretzel_data::serde_bin::Cursor::new(body);
    let plan = cur.u32()?;
    let kind_flags = cur.u32()?;
    let kind = (kind_flags & 0xff) as u8;
    let flags = ((kind_flags >> 8) & 0xff) as u8;
    let n = (kind_flags >> 16) as usize;
    let mut records = Vec::with_capacity(n.min(1 << 16));
    let mut hashes = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        match kind {
            KIND_TEXT => {
                let s = cur.str()?;
                hashes.push(fnv1a(s.as_bytes()));
                records.push(Record::Text(s));
            }
            KIND_DENSE => {
                let x = cur.f32s()?;
                let mut h = Fnv1a::new();
                for &v in &x {
                    h.write_f32(v);
                }
                hashes.push(h.finish());
                records.push(Record::Dense(x));
            }
            k => return Err(DataError::Runtime(format!("bad record kind {k}"))),
        }
    }

    // Prediction-result cache: single-record requests only (multi-record
    // requests are batch jobs where caching individual rows buys little).
    let use_cache = flags & FLAG_RESULT_CACHE != 0 && records.len() == 1;
    if use_cache {
        if let Some(cache) = cache {
            if let Some(&score) = cache.lock().get(&(plan, hashes[0])) {
                return Ok(vec![score]);
            }
        }
    }

    let scores = if flags & FLAG_DELAYED_BATCH != 0 && records.len() == 1 {
        match batcher {
            Some(batcher) => {
                let (tx, rx) = mpsc::channel();
                batcher
                    .pending
                    .lock()
                    .entry(plan)
                    .or_default()
                    .push((records.pop().expect("one record"), tx));
                vec![rx
                    .recv()
                    .map_err(|_| DataError::Runtime("batcher dropped request".into()))??]
            }
            None => {
                return Err(DataError::Runtime(
                    "delayed batching not enabled on this front end".into(),
                ))
            }
        }
    } else if records.len() == 1 {
        // Request-response engine.
        vec![match &records[0] {
            Record::Text(s) => runtime.predict(plan, s)?,
            Record::Dense(x) => runtime.predict_dense(plan, x)?,
        }]
    } else {
        runtime.predict_batch_wait(plan, records)?
    };

    if use_cache {
        if let Some(cache) = cache {
            cache.lock().insert((plan, hashes[0]), scores[0], 16);
        }
    }
    Ok(scores)
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > 64 << 20 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)
}

fn encode_ok(scores: &[f32]) -> Vec<u8> {
    let mut body = Vec::with_capacity(5 + scores.len() * 4);
    body.push(0u8);
    body.extend_from_slice(&(scores.len() as u32).to_le_bytes());
    for &s in scores {
        body.extend_from_slice(&s.to_le_bytes());
    }
    body
}

fn encode_err(msg: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(5 + msg.len());
    body.push(1u8);
    body.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    body.extend_from_slice(msg.as_bytes());
    body
}

/// A blocking client for the FrontEnd protocol.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a FrontEnd.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, request: &[u8]) -> Result<Vec<f32>> {
        let io_err = |e: std::io::Error| DataError::Runtime(format!("frontend io: {e}"));
        write_frame(&mut self.stream, request).map_err(io_err)?;
        let body = read_frame(&mut self.stream)
            .map_err(io_err)?
            .ok_or_else(|| DataError::Runtime("frontend closed connection".into()))?;
        decode_response(&body)
    }

    /// Scores one text record; `flags` selects external optimizations.
    pub fn predict_text(&mut self, plan: PlanId, line: &str, flags: u8) -> Result<f32> {
        let req = encode_request_text(plan, std::slice::from_ref(&line), flags);
        let scores = self.roundtrip(&req)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of text records.
    pub fn predict_text_batch(
        &mut self,
        plan: PlanId,
        lines: &[&str],
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&encode_request_text(plan, lines, flags))
    }

    /// Scores one dense record.
    pub fn predict_dense(&mut self, plan: PlanId, x: &[f32], flags: u8) -> Result<f32> {
        let req = encode_request_dense(plan, std::slice::from_ref(&x), flags);
        let scores = self.roundtrip(&req)?;
        scores
            .first()
            .copied()
            .ok_or_else(|| DataError::Runtime("empty response".into()))
    }

    /// Scores a batch of dense records.
    pub fn predict_dense_batch(
        &mut self,
        plan: PlanId,
        records: &[&[f32]],
        flags: u8,
    ) -> Result<Vec<f32>> {
        self.roundtrip(&encode_request_dense(plan, records, flags))
    }
}

fn request_header(plan: PlanId, kind: u8, flags: u8, n: usize) -> Vec<u8> {
    let mut req = Vec::new();
    req.extend_from_slice(&plan.to_le_bytes());
    let kind_flags = u32::from(kind) | (u32::from(flags) << 8) | ((n as u32) << 16);
    req.extend_from_slice(&kind_flags.to_le_bytes());
    req
}

fn encode_request_text(plan: PlanId, lines: &[&str], flags: u8) -> Vec<u8> {
    let mut req = request_header(plan, KIND_TEXT, flags, lines.len());
    for line in lines {
        req.extend_from_slice(&(line.len() as u32).to_le_bytes());
        req.extend_from_slice(line.as_bytes());
    }
    req
}

fn encode_request_dense(plan: PlanId, records: &[&[f32]], flags: u8) -> Vec<u8> {
    let mut req = request_header(plan, KIND_DENSE, flags, records.len());
    for x in records {
        req.extend_from_slice(&(x.len() as u32).to_le_bytes());
        for v in *x {
            req.extend_from_slice(&v.to_le_bytes());
        }
    }
    req
}

fn decode_response(body: &[u8]) -> Result<Vec<f32>> {
    let (&status, rest) = body
        .split_first()
        .ok_or_else(|| DataError::Runtime("empty frame".into()))?;
    let mut cur = pretzel_data::serde_bin::Cursor::new(rest);
    match status {
        0 => cur.f32s(),
        1 => {
            let len = cur.u32()? as usize;
            let msg = String::from_utf8_lossy(&rest[4..(4 + len).min(rest.len())]).into_owned();
            Err(DataError::Runtime(format!("server error: {msg}")))
        }
        s => Err(DataError::Runtime(format!("bad response status {s}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flour::FlourContext;
    use crate::runtime::RuntimeConfig;
    use pretzel_ops::linear::LinearKind;
    use pretzel_ops::synth;

    fn serve_sa(config: FrontEndConfig) -> (Arc<Runtime>, FrontEnd, PlanId) {
        let vocab = synth::vocabulary(0, 64);
        let ctx = FlourContext::new();
        let tokens = ctx.csv(',').select_text(1).tokenize();
        let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 64)));
        let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 64, &vocab)));
        let logical = c
            .concat(&w)
            .classifier_linear(Arc::new(synth::linear(3, 128, LinearKind::Logistic)))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(RuntimeConfig {
            n_executors: 2,
            ..RuntimeConfig::default()
        }));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), config).unwrap();
        (rt, fe, id)
    }

    #[test]
    fn client_server_round_trip_matches_local() {
        let (rt, fe, id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let remote = client.predict_text(id, "5,a nice product", 0).unwrap();
        let local = rt.predict(id, "5,a nice product").unwrap();
        assert!((remote - local).abs() < 1e-6);
        fe.stop();
    }

    #[test]
    fn batch_request_over_the_wire() {
        let (rt, fe, id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let lines = ["1,bad product", "5,wonderful thing", "3,meh"];
        let scores = client.predict_text_batch(id, &lines, 0).unwrap();
        assert_eq!(scores.len(), 3);
        for (line, s) in lines.iter().zip(&scores) {
            assert!((rt.predict(id, line).unwrap() - s).abs() < 1e-6);
        }
        fe.stop();
    }

    #[test]
    fn server_reports_errors_for_unknown_plan() {
        let (_rt, fe, _id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let err = client.predict_text(99, "1,x", 0).unwrap_err();
        assert!(err.to_string().contains("unknown plan"));
        fe.stop();
    }

    #[test]
    fn result_cache_serves_repeats() {
        let (_rt, fe, id) = serve_sa(FrontEndConfig {
            result_cache_bytes: 1 << 16,
            batch_delay: None,
        });
        let mut client = Client::connect(fe.addr()).unwrap();
        let a = client
            .predict_text(id, "5,same line", FLAG_RESULT_CACHE)
            .unwrap();
        let b = client
            .predict_text(id, "5,same line", FLAG_RESULT_CACHE)
            .unwrap();
        assert_eq!(a, b);
        fe.stop();
    }

    #[test]
    fn delayed_batching_returns_correct_scores() {
        let (rt, fe, id) = serve_sa(FrontEndConfig {
            result_cache_bytes: 0,
            batch_delay: Some(Duration::from_millis(2)),
        });
        let addr = fe.addr();
        let local = rt.predict(id, "4,pretty good").unwrap();
        // Several concurrent clients ride the same flush.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.predict_text(id, "4,pretty good", FLAG_DELAYED_BATCH)
                        .unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!((h.join().unwrap() - local).abs() < 1e-6);
        }
        fe.stop();
    }

    #[test]
    fn dense_records_over_the_wire() {
        let dim = 8;
        let ctx = FlourContext::new();
        let logical = ctx
            .dense_source(dim)
            .scale(Arc::new(synth::scaler(1, dim)))
            .regressor_tree(Arc::new(synth::ensemble(
                2,
                dim,
                2,
                2,
                pretzel_ops::tree::EnsembleMode::Sum,
            )))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), FrontEndConfig::default()).unwrap();
        let mut client = Client::connect(fe.addr()).unwrap();
        let x = vec![0.25f32; dim];
        let remote = client.predict_dense(id, &x, 0).unwrap();
        assert!((remote - rt.predict_dense(id, &x).unwrap()).abs() < 1e-6);
        fe.stop();
    }
}
