//! TCP FrontEnd: remote request submission plus the "external"
//! optimizations.
//!
//! "A FrontEnd is used to submit prediction requests to the system"
//! (paper §4); the end-to-end experiments (Figures 11 and 14) measure a
//! client talking to it over the network. The FrontEnd also implements the
//! two *external*, black-box-compatible optimizations of §4.3 — prediction
//! results caching (LRU) and delayed batching — which are "orthogonal to
//! PRETZEL's techniques, so both are applicable in a complementary manner".
//!
//! **Connection scaling** — serving runs in one of two modes:
//!
//! * **Reactor pool** (the default on linux/x86-64,
//!   [`FrontEndConfig::reactor_threads`] `> 0`): a fixed pool of event-loop
//!   threads drives every connection over non-blocking sockets via epoll.
//!   Per-connection state lives in a lock-free fixed-size slab
//!   ([`ConnSlab`](slab) — pointer-width-CAS free list, per-slot generation
//!   counters), frames assemble incrementally from readiness events, and
//!   batch/delayed completions are *pushed* back to the owning reactor
//!   through a completion queue + eventfd wake instead of parking a thread
//!   per request. Thousands of idle or pipelined connections cost a few
//!   slab slots, not a thread stack each.
//! * **Thread-per-connection** (`reactor_threads = 0`, and the fallback on
//!   targets without the raw-syscall reactor): the classic blocking loop —
//!   one spawned thread per accepted socket. Kept as the ablation control
//!   for the `ablation_frontend` bench.
//!
//! Both modes speak both protocol versions and produce bitwise-identical
//! scores.
//!
//! **Wire protocol v2 (multiplexed)** — frames are self-describing per
//! connection; see [`wire`] for the codecs:
//!
//! ```text
//! v1 frame := u32 body_len · body                    (one request in flight)
//! v2 frame := magic "PZW\xB2" · u8 version · u8 flags · u16 reserved ·
//!             u32 request_id · u32 body_len · body   (pipelined, out of order)
//! ```
//!
//! A v2 connection may pipeline many requests; responses carry the
//! request's `request_id` and may return **out of order** (a delayed-batch
//! request does not block a fast inline request behind it). The v2 magic,
//! read as a little-endian u32, exceeds [`MAX_FRAME_BYTES`], so no valid
//! v1 length prefix can alias it and both versions share one port with no
//! negotiation. Request *bodies* are identical across versions:
//!
//! ```text
//! body     := u32 plan_id · u8 kind · u8 flags · u16 n_records ·
//!             (alias?) · record*                     (kinds 0-2)
//!           | u32 plan_id · u8 kind · u8 flags · u16 0 · admin_body
//!                                                    (kinds 0x10-0x13)
//! alias    := u32 len · bytes              (present iff flags & 0b100)
//! record   := u32 len · bytes            (kind 0: UTF-8 text)
//!           | u32 n   · f32*             (kind 1: dense)
//!           | u32 dim · u32 nnz ·
//!             u32*nnz · f32*nnz          (kind 2: sparse CSR triple)
//! response := u8 status ·
//!             (status 0: u32 n · f32*) | (status 1: u32 len · bytes) |
//!             (status 2: admin payload) |
//!             (status 3: u32 len · bytes, execution fault) |
//!             (status 4: u32 plan_id, plan quarantined)
//! ```
//!
//! **Client surface** — [`PredictRequest`] is the typed request builder
//! ([`Payload`] + [`Target`] + cache/delay toggles); [`Client::predict`] /
//! [`Client::predict_many`] serve it sequentially over v1 or v2, and
//! [`Session::submit`] pipelines it over v2, resolving each
//! [`PendingPredict`] independently of submission order. The old
//! `predict_*` method family survives as thin deprecated wrappers.
//!
//! **Model lifecycle over the wire**: the admin verbs `DEPLOY` /
//! `UNDEPLOY` / `SWAP` / `ROLLBACK` / `LIST` ride the same frame format (distinct
//! `kind` values), so the whole lifecycle — push a serialized model file,
//! flip an alias to the new version, retire the old one — is driveable
//! remotely through [`Client::deploy`], [`Client::undeploy`],
//! [`Client::swap`] and [`Client::list`]. Prediction requests may address
//! a plan **by alias** ([`FLAG_PLAN_ALIAS`]): the server resolves the
//! alias per attempt and transparently retries when the bound version
//! retires mid-request, so `swap` + `undeploy(old)` never loses an
//! alias-addressed request.

pub mod wire;

mod client;
mod reactor;
mod slab;
mod sys;

pub use client::{Client, Payload, PendingPredict, PredictRequest, Session, Target};
pub use wire::{
    FLAG_DELAYED_BATCH, FLAG_PLAN_ALIAS, FLAG_RESULT_CACHE, MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_V2,
};

use crate::lru::LruCache;
use crate::physical::SourceRef;
use crate::runtime::{PlanId, Runtime};
use crate::scheduler::Record;
use parking_lot::Mutex;
use pretzel_data::hash::content_hash_sparse;
use pretzel_data::ingest::validate_sparse_indices;
use pretzel_data::serde_bin::Cursor;
use pretzel_data::{BatchAssembler, ColumnType, DataError, Result};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wire::{
    ADMIN_DEPLOY, ADMIN_LIST, ADMIN_ROLLBACK, ADMIN_STATS, ADMIN_SWAP, ADMIN_UNDEPLOY, KIND_DENSE,
    KIND_SPARSE, KIND_TEXT,
};

/// FrontEnd configuration.
#[derive(Debug, Clone)]
pub struct FrontEndConfig {
    /// Byte budget of the prediction-result cache; 0 disables it.
    pub result_cache_bytes: usize,
    /// Flush interval of the delayed batcher; `None` disables it.
    pub batch_delay: Option<Duration>,
    /// Event-loop reactor threads serving every connection. `0` selects
    /// the thread-per-connection fallback (also used on targets without
    /// the raw-syscall reactor regardless of this knob). The default is
    /// the machine's available parallelism, clamped to `1..=4` — reactors
    /// are I/O-bound; the scheduler's executors own the compute.
    pub reactor_threads: usize,
    /// Connection-slab capacity in reactor mode: the most sockets held
    /// open at once. Accepts beyond it are refused (closed immediately)
    /// rather than queued. Ignored in thread-per-connection mode.
    pub max_connections: usize,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig {
            result_cache_bytes: 0,
            batch_delay: None,
            reactor_threads: default_reactor_threads(),
            max_connections: 4096,
        }
    }
}

fn default_reactor_threads() -> usize {
    if !sys::SUPPORTED {
        return 0;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

/// Connection-plane counters, exposed for tests and the
/// `ablation_frontend` bench. All monotone except `open_connections`.
#[derive(Debug, Default)]
pub struct FrontEndStats {
    open: AtomicUsize,
    accepted: AtomicU64,
    protocol_errors: AtomicU64,
}

impl FrontEndStats {
    /// Sockets currently held open (reactor mode: occupied slab slots).
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::Acquire)
    }

    /// Connections accepted since the front end started.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Acquire)
    }

    /// Framing violations that closed a connection (oversized prefix,
    /// unknown version, duplicate in-flight request id, ...).
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Acquire)
    }

    fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::AcqRel);
    }
}

type ResultCache = Arc<Mutex<LruCache<(PlanId, u64), f32>>>;

/// Everything one request dispatch needs, shared by both serving modes.
struct ServerShared {
    runtime: Arc<Runtime>,
    cache: Option<ResultCache>,
    batcher: Option<Arc<Batcher>>,
    /// Connection counters; the `STATS` verb folds them into its snapshot.
    stats: Arc<FrontEndStats>,
}

/// Where a request's eventual result goes.
///
/// The blocking path computes in place and returns [`Dispatch::Ready`];
/// the reactor path hands asynchronous work a [`reactor::CompletionHandle`]
/// and returns [`Dispatch::Pending`] — the completion re-enters the owning
/// reactor through its queue instead of parking this thread.
#[derive(Clone)]
enum Responder {
    /// Thread-per-connection: block until the result exists.
    Blocking,
    /// Reactor: push the encoded response to the connection's reactor.
    Reactor(reactor::CompletionHandle),
}

/// Outcome of dispatching one request frame.
enum Dispatch {
    /// The encoded response body, ready to write.
    Ready(Vec<u8>),
    /// The response will arrive later through the [`Responder`]'s
    /// completion handle (reactor mode only).
    Pending,
}

/// One plan's accumulated delayed-batch requests between flushes.
enum PendingBatch {
    /// Record-staged accumulation (`wire_columnar = false`).
    Records(Vec<(Record, DelayedWaiter)>),
    /// Wire-assembled accumulation: rows append to one per-plan column
    /// batch as they arrive; the flush submits it without any re-packing.
    Assembled {
        assembler: BatchAssembler,
        waiters: Vec<DelayedWaiter>,
    },
}

/// One delayed-batch requester awaiting the next flush.
struct DelayedWaiter {
    sink: ResultSink,
    /// `(plan, row_hash)` to populate the result cache with on success.
    cache_key: Option<(PlanId, u64)>,
}

/// How a flushed delayed-batch score reaches its requester.
enum ResultSink {
    /// A blocked connection thread waiting on the channel.
    Channel(mpsc::Sender<Result<f32>>),
    /// A reactor connection; the flush pushes the encoded response.
    Reactor(reactor::CompletionHandle),
}

impl ResultSink {
    /// Delivers the result; `false` means the requester is gone.
    fn deliver(self, result: Result<f32>) -> bool {
        match self {
            ResultSink::Channel(tx) => tx.send(result).is_ok(),
            ResultSink::Reactor(handle) => {
                handle.complete_single(result);
                true
            }
        }
    }
}

struct Batcher {
    pending: Mutex<HashMap<PlanId, PendingBatch>>,
    /// The front end's result cache: flush-time inserts for delayed
    /// requests that asked for caching.
    cache: Option<ResultCache>,
}

/// A running TCP front end.
pub struct FrontEnd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    reactor: Option<reactor::ReactorPool>,
    flush_thread: Option<JoinHandle<()>>,
    stats: Arc<FrontEndStats>,
}

impl std::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("addr", &self.addr)
            .field("reactor", &self.reactor.is_some())
            .finish()
    }
}

impl FrontEnd {
    /// Binds a loopback listener and starts serving `runtime`.
    pub fn serve(runtime: Arc<Runtime>, config: FrontEndConfig) -> std::io::Result<FrontEnd> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(FrontEndStats::default());
        let cache = (config.result_cache_bytes > 0).then(|| {
            Arc::new(Mutex::new(LruCache::<(PlanId, u64), f32>::new(
                config.result_cache_bytes,
            )))
        });
        let batcher = config.batch_delay.map(|_| {
            Arc::new(Batcher {
                pending: Mutex::new(HashMap::new()),
                cache: cache.clone(),
            })
        });
        let shared = Arc::new(ServerShared {
            runtime: Arc::clone(&runtime),
            cache,
            batcher: batcher.clone(),
            stats: Arc::clone(&stats),
        });

        // Delayed-batching flusher: every tick, drain pending requests per
        // plan and submit them as one batch (paper §4.3).
        let flush_thread = match (&batcher, config.batch_delay) {
            (Some(batcher), Some(delay)) => {
                let batcher = Arc::clone(batcher);
                let runtime = Arc::clone(&runtime);
                let stop = Arc::clone(&stop);
                Some(std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(delay);
                        flush_pending(&batcher, &runtime);
                    }
                    flush_pending(&batcher, &runtime);
                }))
            }
            _ => None,
        };

        let (accept_thread, reactor) = if config.reactor_threads > 0 && sys::SUPPORTED {
            let pool = reactor::ReactorPool::start(
                listener,
                Arc::clone(&shared),
                Arc::clone(&stats),
                config.reactor_threads,
                config.max_connections,
            )?;
            (None, Some(pool))
        } else {
            let accept_stop = Arc::clone(&stop);
            let accept_stats = Arc::clone(&stats);
            let handle = std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    accept_stats.accepted.fetch_add(1, Ordering::AcqRel);
                    accept_stats.open.fetch_add(1, Ordering::AcqRel);
                    let shared = Arc::clone(&shared);
                    let stats = Arc::clone(&accept_stats);
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &shared, &stats);
                        stats.open.fetch_sub(1, Ordering::AcqRel);
                    });
                }
            });
            (Some(handle), None)
        };

        Ok(FrontEnd {
            addr,
            stop,
            accept_thread,
            reactor,
            flush_thread,
            stats,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connection-plane counters.
    pub fn stats(&self) -> &FrontEndStats {
        &self.stats
    }

    /// Stops accepting and joins the service threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(pool) = self.reactor.take() {
            pool.stop();
        }
        if self.accept_thread.is_some() {
            // Unblock the accept loop.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.flush_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FrontEnd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn flush_pending(batcher: &Batcher, runtime: &Runtime) {
    let drained: Vec<(PlanId, PendingBatch)> = {
        let mut pending = batcher.pending.lock();
        pending.drain().collect()
    };
    for (plan, pending) in drained {
        let (outcome, waiters) = match pending {
            PendingBatch::Records(entries) => {
                let (records, waiters): (Vec<Record>, Vec<_>) = entries.into_iter().unzip();
                (runtime.predict_batch_wait(plan, records), waiters)
            }
            PendingBatch::Assembled { assembler, waiters } => {
                let (rows, hashes) = assembler.finish();
                (
                    runtime.predict_batch_assembled_wait(plan, rows, hashes),
                    waiters,
                )
            }
        };
        // A delivery failure means that client disconnected mid-flush.
        // That is its problem alone: log it and keep delivering to the
        // rest of the flush instead of dropping the error (or the flush)
        // on the floor.
        let mut dropped = 0usize;
        match outcome {
            Ok(scores) => {
                for (s, waiter) in scores.into_iter().zip(waiters) {
                    if let (Some((plan, hash)), Some(cache)) = (waiter.cache_key, &batcher.cache) {
                        cache.lock().insert((plan, hash), s, 16);
                    }
                    if !waiter.sink.deliver(Ok(s)) {
                        dropped += 1;
                    }
                }
            }
            Err(e) => {
                for waiter in waiters {
                    if !waiter.sink.deliver(Err(e.clone())) {
                        dropped += 1;
                    }
                }
            }
        }
        if dropped > 0 {
            if let Some(reg) = runtime.metrics_registry() {
                reg.note_delayed_drops(dropped as u64);
            }
            crate::log_warn!(
                "dropped {dropped} delayed-batch result(s) for plan {plan}: \
                 client(s) disconnected mid-flush"
            );
        }
    }
}

/// The blocking (thread-per-connection) serving loop; speaks v1 and v2.
fn serve_connection(
    mut stream: TcpStream,
    shared: &ServerShared,
    stats: &FrontEndStats,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        match wire::read_frame(&mut stream)? {
            wire::ReadFrame::V1(body) => {
                let reply = serve_frame_blocking(shared, &body);
                wire::write_v1(&mut stream, &reply)?;
            }
            wire::ReadFrame::V2 { request_id, body } => {
                let reply = serve_frame_blocking(shared, &body);
                wire::write_v2(&mut stream, request_id, &reply)?;
            }
            wire::ReadFrame::Eof => return Ok(()),
            wire::ReadFrame::Oversized(len) => {
                // Refuse with a protocol error instead of allocating. The
                // stream cannot be resynchronized past an unread body, so
                // reply and close.
                stats.note_protocol_error();
                let reply = wire::encode_err(&format!(
                    "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
                ));
                let _ = wire::write_v1(&mut stream, &reply);
                return Ok(());
            }
            wire::ReadFrame::BadVersion(v) => {
                stats.note_protocol_error();
                let reply = wire::encode_err(&format!("unsupported wire version {v}"));
                let _ = wire::write_v1(&mut stream, &reply);
                return Ok(());
            }
        }
    }
}

/// Dispatches one frame on the blocking path, where every request
/// resolves in place.
fn serve_frame_blocking(shared: &ServerShared, body: &[u8]) -> Vec<u8> {
    match serve_frame(shared, body, &Responder::Blocking) {
        Dispatch::Ready(reply) => reply,
        Dispatch::Pending => unreachable!("blocking dispatch always resolves in place"),
    }
}

/// Dispatches one request frame: the encoded response, or `Pending` when
/// a reactor responder will receive it asynchronously.
fn serve_frame(shared: &ServerShared, body: &[u8], responder: &Responder) -> Dispatch {
    match handle_request(shared, body, responder) {
        Ok(dispatch) => dispatch,
        Err(e) => Dispatch::Ready(encode_error(&e)),
    }
}

///// Maps a request error onto its wire status: contained operator panics
/// and quarantined plans get their own statuses so clients can react in
/// kind; everything else is the generic status-1 error string.
pub(super) fn encode_error(e: &DataError) -> Vec<u8> {
    match e {
        DataError::ExecutionFault(msg) => wire::encode_fault(msg),
        DataError::PlanQuarantined(id) => wire::encode_quarantined(*id),
        other => wire::encode_err(&other.to_string()),
    }
}

/// Decoded request header fields.
#[derive(Clone, Copy)]
struct RequestHead {
    plan: PlanId,
    kind: u8,
    flags: u8,
    n: usize,
}

fn handle_request(shared: &ServerShared, body: &[u8], responder: &Responder) -> Result<Dispatch> {
    let mut cur = Cursor::new(body);
    let plan = cur.u32()?;
    let kind_flags = cur.u32()?;
    let head = RequestHead {
        plan,
        kind: (kind_flags & 0xff) as u8,
        flags: ((kind_flags >> 8) & 0xff) as u8,
        n: (kind_flags >> 16) as usize,
    };
    if head.kind == ADMIN_STATS {
        // The runtime fills everything it owns; the FrontEnd overlays the
        // connection-plane section only it can see.
        let mut snap = shared.runtime.metrics();
        snap.frontend = Some(crate::telemetry::FrontEndSnapshot {
            open_connections: shared.stats.open_connections() as u64,
            accepted: shared.stats.accepted(),
            protocol_errors: shared.stats.protocol_errors(),
        });
        let mut payload = Vec::new();
        snap.encode(&mut payload);
        return Ok(Dispatch::Ready(wire::encode_admin(&payload)));
    }
    if matches!(
        head.kind,
        ADMIN_DEPLOY | ADMIN_UNDEPLOY | ADMIN_SWAP | ADMIN_LIST | ADMIN_ROLLBACK
    ) {
        return handle_admin(&head, cur, &shared.runtime)
            .map(|payload| Dispatch::Ready(wire::encode_admin(&payload)));
    }
    if head.flags & FLAG_PLAN_ALIAS != 0 {
        // Alias addressing: resolve per attempt; a request that loses the
        // race with a concurrent undeploy of the swapped-from version
        // re-resolves and lands on the alias's current binding. Admission
        // for batch submissions is synchronous, so a `Pending` dispatch is
        // already past the retirement race by the time it returns.
        let alias = cur.str()?;
        let records = cur.clone();
        return shared.runtime.with_alias(&alias, |id| {
            let head = RequestHead {
                plan: id,
                flags: head.flags & !FLAG_PLAN_ALIAS,
                ..head
            };
            serve_records(head, records.clone(), shared, responder)
        });
    }
    serve_records(head, cur, shared, responder)
}

/// Serves a (plan-id-addressed) prediction request through the engine the
/// flags select.
fn serve_records(
    head: RequestHead,
    cur: Cursor<'_>,
    shared: &ServerShared,
    responder: &Responder,
) -> Result<Dispatch> {
    if head.n == 0 {
        // An empty batch still validates its plan id (as the pre-assembler
        // path did by reaching the batch engine with zero records).
        let _ = shared.runtime.plan(head.plan)?;
        return Ok(Dispatch::Ready(wire::encode_ok(&[])));
    }
    if shared.runtime.config().wire_columnar {
        handle_request_columnar(head, cur, shared, responder)
    } else {
        handle_request_staged(head, cur, shared, responder)
    }
}

/// Executes one admin verb, returning the verb-specific payload.
fn handle_admin(head: &RequestHead, mut cur: Cursor<'_>, runtime: &Runtime) -> Result<Vec<u8>> {
    use pretzel_data::serde_bin::wire;
    let mut payload = Vec::new();
    match head.kind {
        ADMIN_DEPLOY => {
            let alias = cur.str()?;
            let reserved = cur.u32()? != 0;
            let image = cur.bytes()?;
            let id = runtime.deploy(
                image,
                crate::lifecycle::DeployOptions {
                    alias: (!alias.is_empty()).then_some(alias),
                    reserved,
                },
            )?;
            wire::put_u32(&mut payload, id);
        }
        ADMIN_UNDEPLOY => {
            let report = runtime.undeploy(head.plan)?;
            wire::put_u64(&mut payload, report.freed_param_bytes as u64);
            wire::put_u32(&mut payload, report.freed_params as u32);
            wire::put_u32(&mut payload, report.dropped_stages as u32);
            wire::put_u32(&mut payload, report.dropped_aliases as u32);
        }
        ADMIN_SWAP => {
            let alias = cur.str()?;
            let previous = runtime.swap(&alias, head.plan)?;
            wire::put_u32(&mut payload, previous.unwrap_or(u32::MAX));
        }
        ADMIN_ROLLBACK => {
            let alias = cur.str()?;
            let now_bound = runtime.rollback(&alias)?;
            wire::put_u32(&mut payload, now_bound.unwrap_or(u32::MAX));
        }
        ADMIN_LIST => {
            let plans = runtime.list_plans();
            wire::put_u32(&mut payload, plans.len() as u32);
            for info in plans {
                wire::put_u32(&mut payload, info.id);
                wire::put_u32(&mut payload, u32::from(info.retired));
                wire::put_u32(&mut payload, u32::from(info.quarantined));
                wire::put_u32(&mut payload, info.in_flight as u32);
                wire::put_u32(&mut payload, info.aliases.len() as u32);
                for alias in &info.aliases {
                    wire::put_str(&mut payload, alias);
                }
            }
        }
        k => return Err(DataError::Runtime(format!("bad admin kind {k:#x}"))),
    }
    Ok(payload)
}

/// The slot-0 batch type a request's records assemble into. Dense and
/// sparse requests carry per-record dimensions; the first record's fixes
/// the batch shape (later records must match it).
///
/// The peeked dimension is untrusted wire input and (for dense rows)
/// drives the batch's capacity hint, so a prefix claiming more floats
/// than the body holds is rejected here — before anything allocates,
/// like every other hostile length prefix.
fn wire_batch_type(kind: u8, cur: &Cursor<'_>) -> Result<ColumnType> {
    match kind {
        KIND_TEXT => Ok(ColumnType::Text),
        KIND_DENSE => {
            let mut peek = cur.clone();
            let len = peek.u32()? as usize;
            if len.saturating_mul(4) > peek.remaining() {
                return Err(DataError::Codec(format!(
                    "dense record claims {len} features, body holds {} bytes",
                    peek.remaining()
                )));
            }
            Ok(ColumnType::F32Dense { len })
        }
        KIND_SPARSE => {
            let mut peek = cur.clone();
            Ok(ColumnType::F32Sparse {
                len: peek.u32()? as usize,
            })
        }
        k => Err(DataError::Runtime(format!("bad record kind {k}"))),
    }
}

/// Rows to size the assembler's batch lease for: enough for the request,
/// but never hinting more storage than the body's bytes could actually
/// fill (`n` itself is wire input; dense hints multiply by the row width).
fn assembler_rows_hint(ty: &ColumnType, n: usize, body_remaining: usize) -> usize {
    match ty {
        ColumnType::F32Dense { len } => n.min(body_remaining / (4 * (*len).max(1))),
        _ => n,
    }
}

/// Wire-to-columnar request handling: decode rows straight into a
/// pool-leased batch, then serve through the engine the flags select.
fn handle_request_columnar(
    head: RequestHead,
    mut cur: Cursor<'_>,
    shared: &ServerShared,
    responder: &Responder,
) -> Result<Dispatch> {
    let RequestHead {
        plan,
        kind,
        flags,
        n,
    } = head;
    let runtime = &*shared.runtime;
    let cache = &shared.cache;
    let pool = Arc::clone(runtime.ingest_pool());
    let ty = wire_batch_type(kind, &cur)?;
    let rows_hint = assembler_rows_hint(&ty, n, cur.remaining());
    // Per-row content hashing is only worth a pass over every record byte
    // when something will consume the hashes: the sub-plan materialization
    // cache, or this request's result-cache lookup (single-record requests
    // against a configured cache — the only shape the result cache
    // serves). Otherwise decode without it — on matching-bound text
    // workloads that pass was the wire-columnar path's measurable
    // overhead vs Record staging.
    let want_hashes = runtime.materialization_cache().is_some()
        || (flags & FLAG_RESULT_CACHE != 0 && n == 1 && cache.is_some());
    let lease = pool.acquire_batch(ty, rows_hint);
    let mut asm = if want_hashes {
        BatchAssembler::new(lease)
    } else {
        BatchAssembler::new_unhashed(lease)
    }
    .reject_non_finite(runtime.config().reject_non_finite);
    let release = |asm: BatchAssembler| pool.release_batch(asm.finish().0);
    let decode_start = runtime.metrics_registry().map(|_| Instant::now());
    for _ in 0..n {
        let decoded = match kind {
            KIND_TEXT => asm.decode_text_row(&mut cur),
            KIND_DENSE => asm.decode_dense_row(&mut cur),
            _ => asm.decode_sparse_row(&mut cur),
        };
        if let Err(e) = decoded {
            release(asm);
            return Err(e);
        }
    }
    if let (Some(reg), Some(t0)) = (runtime.metrics_registry(), decode_start) {
        reg.record_decode(t0.elapsed().as_nanos() as u64);
    }

    // Prediction-result cache: single-record requests only (multi-record
    // requests are batch jobs where caching individual rows buys little).
    // `use_cache` implies `want_hashes` above, so `asm.hash(0)` is always
    // populated on this path.
    let use_cache = flags & FLAG_RESULT_CACHE != 0 && n == 1 && cache.is_some();
    if use_cache {
        if let Some(cache) = cache {
            if let Some(&score) = cache.lock().get(&(plan, asm.hash(0))) {
                release(asm);
                return Ok(Dispatch::Ready(wire::encode_ok(&[score])));
            }
        }
    }

    if flags & FLAG_DELAYED_BATCH != 0 && n == 1 {
        let Some(batcher) = &shared.batcher else {
            release(asm);
            return Err(DataError::Runtime(
                "delayed batching not enabled on this front end".into(),
            ));
        };
        // Only a flush-time result-cache insert reads this, and
        // `use_cache` implies the assembler hashed at decode.
        let cache_key = use_cache.then(|| (plan, asm.hash(0)));
        let (sink, rx) = match responder {
            Responder::Blocking => {
                let (tx, rx) = mpsc::channel();
                (ResultSink::Channel(tx), Some(rx))
            }
            Responder::Reactor(handle) => (ResultSink::Reactor(handle.clone()), None),
        };
        let waiter = DelayedWaiter { sink, cache_key };
        let appended = {
            let mut pending = batcher.pending.lock();
            let entry = pending.entry(plan).or_insert_with(|| {
                // The per-plan accumulator leases its own batch; rows of
                // the same plan pack together until the next flush. It
                // starts unhashed unless the materialization cache needs
                // hashes; a hashed request appending later upgrades it.
                let lease = pool.acquire_batch(asm.column_type(), 16);
                PendingBatch::Assembled {
                    assembler: if runtime.materialization_cache().is_some() {
                        BatchAssembler::new(lease)
                    } else {
                        BatchAssembler::new_unhashed(lease)
                    },
                    waiters: Vec::new(),
                }
            });
            match entry {
                PendingBatch::Assembled { assembler, waiters } => assembler
                    .append_assembled(&asm)
                    .map(|()| waiters.push(waiter)),
                PendingBatch::Records(_) => Err(DataError::Runtime(
                    "delayed batcher is accumulating staged records".into(),
                )),
            }
        };
        release(asm);
        appended?;
        return match rx {
            Some(rx) => {
                let score = rx
                    .recv()
                    .map_err(|_| DataError::Runtime("batcher dropped request".into()))??;
                Ok(Dispatch::Ready(wire::encode_ok(&[score])))
            }
            None => Ok(Dispatch::Pending),
        };
    }

    if n == 1 {
        // Request-response engine, straight off the assembled row.
        let scored = SourceRef::from_row(asm.batch().row(0))
            .and_then(|src| runtime.predict_source(plan, src));
        return match scored {
            Ok(score) => {
                if use_cache {
                    if let Some(cache) = cache {
                        cache.lock().insert((plan, asm.hash(0)), score, 16);
                    }
                }
                release(asm);
                Ok(Dispatch::Ready(wire::encode_ok(&[score])))
            }
            Err(e) => {
                release(asm);
                Err(e)
            }
        };
    }

    // Batch engine: the assembled batch is the submission — the lease
    // returns to the ingest pool when the request completes.
    let (rows, hashes) = asm.finish();
    match responder {
        Responder::Blocking => {
            let scores = runtime.predict_batch_assembled_wait(plan, rows, hashes)?;
            Ok(Dispatch::Ready(wire::encode_ok(&scores)))
        }
        Responder::Reactor(handle) => {
            let handle = handle.clone();
            runtime
                .predict_batch_assembled(plan, rows, hashes)?
                .on_complete(move |result| handle.complete_result(result));
            Ok(Dispatch::Pending)
        }
    }
}

/// Record-staged request handling (`wire_columnar = false`): the ablation
/// control, decoding every record into an owned `Record` first.
fn handle_request_staged(
    head: RequestHead,
    mut cur: Cursor<'_>,
    shared: &ServerShared,
    responder: &Responder,
) -> Result<Dispatch> {
    let RequestHead {
        plan,
        kind,
        flags,
        n,
    } = head;
    let runtime = &*shared.runtime;
    let cache = &shared.cache;
    let mut records = Vec::with_capacity(n.min(1 << 16));
    let mut hashes = Vec::with_capacity(n.min(1 << 16));
    let decode_start = runtime.metrics_registry().map(|_| Instant::now());
    for _ in 0..n {
        match kind {
            KIND_TEXT => {
                let s = cur.str()?;
                hashes.push(pretzel_data::hash::content_hash_text(&s));
                records.push(Record::Text(s));
            }
            KIND_DENSE => {
                let x = cur.f32s()?;
                if runtime.config().reject_non_finite {
                    pretzel_data::ingest::check_finite(&x)?;
                }
                hashes.push(pretzel_data::hash::content_hash_dense(&x));
                records.push(Record::Dense(x));
            }
            KIND_SPARSE => {
                let dim = cur.u32()?;
                let indices = cur.u32s()?;
                validate_sparse_indices(&indices, dim)?;
                let mut values = Vec::with_capacity(indices.len());
                for _ in 0..indices.len() {
                    values.push(cur.f32()?);
                }
                if runtime.config().reject_non_finite {
                    pretzel_data::ingest::check_finite(&values)?;
                }
                hashes.push(content_hash_sparse(&indices, &values, dim));
                records.push(Record::Sparse {
                    indices,
                    values,
                    dim,
                });
            }
            k => return Err(DataError::Runtime(format!("bad record kind {k}"))),
        }
    }
    if let (Some(reg), Some(t0)) = (runtime.metrics_registry(), decode_start) {
        reg.record_decode(t0.elapsed().as_nanos() as u64);
    }

    // Prediction-result cache: single-record requests only.
    let use_cache = flags & FLAG_RESULT_CACHE != 0 && records.len() == 1 && cache.is_some();
    if use_cache {
        if let Some(cache) = cache {
            if let Some(&score) = cache.lock().get(&(plan, hashes[0])) {
                return Ok(Dispatch::Ready(wire::encode_ok(&[score])));
            }
        }
    }

    if flags & FLAG_DELAYED_BATCH != 0 && records.len() == 1 {
        let Some(batcher) = &shared.batcher else {
            return Err(DataError::Runtime(
                "delayed batching not enabled on this front end".into(),
            ));
        };
        let cache_key = use_cache.then(|| (plan, hashes[0]));
        let (sink, rx) = match responder {
            Responder::Blocking => {
                let (tx, rx) = mpsc::channel();
                (ResultSink::Channel(tx), Some(rx))
            }
            Responder::Reactor(handle) => (ResultSink::Reactor(handle.clone()), None),
        };
        {
            let mut pending = batcher.pending.lock();
            let entry = pending
                .entry(plan)
                .or_insert_with(|| PendingBatch::Records(Vec::new()));
            match entry {
                PendingBatch::Records(entries) => {
                    entries.push((
                        records.pop().expect("one record"),
                        DelayedWaiter { sink, cache_key },
                    ));
                }
                PendingBatch::Assembled { .. } => {
                    return Err(DataError::Runtime(
                        "delayed batcher is accumulating assembled rows".into(),
                    ))
                }
            }
        }
        return match rx {
            Some(rx) => {
                let score = rx
                    .recv()
                    .map_err(|_| DataError::Runtime("batcher dropped request".into()))??;
                Ok(Dispatch::Ready(wire::encode_ok(&[score])))
            }
            None => Ok(Dispatch::Pending),
        };
    }

    if records.len() == 1 {
        // Request-response engine.
        let score = runtime.predict_source(plan, records[0].as_source())?;
        if use_cache {
            if let Some(cache) = cache {
                cache.lock().insert((plan, hashes[0]), score, 16);
            }
        }
        return Ok(Dispatch::Ready(wire::encode_ok(&[score])));
    }

    match responder {
        Responder::Blocking => {
            let scores = runtime.predict_batch_wait(plan, records)?;
            Ok(Dispatch::Ready(wire::encode_ok(&scores)))
        }
        Responder::Reactor(handle) => {
            let handle = handle.clone();
            runtime
                .predict_batch(plan, records)?
                .on_complete(move |result| handle.complete_result(result));
            Ok(Dispatch::Pending)
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::flour::FlourContext;
    use crate::runtime::RuntimeConfig;
    use pretzel_ops::linear::LinearKind;
    use pretzel_ops::synth;
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicUsize;

    fn serve_sa(config: FrontEndConfig) -> (Arc<Runtime>, FrontEnd, PlanId) {
        serve_sa_with(
            config,
            RuntimeConfig {
                n_executors: 2,
                ..RuntimeConfig::default()
            },
        )
    }

    fn serve_sa_with(
        config: FrontEndConfig,
        rt_config: RuntimeConfig,
    ) -> (Arc<Runtime>, FrontEnd, PlanId) {
        let vocab = synth::vocabulary(0, 64);
        let ctx = FlourContext::new();
        let tokens = ctx.csv(',').select_text(1).tokenize();
        let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 64)));
        let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 64, &vocab)));
        let logical = c
            .concat(&w)
            .classifier_linear(Arc::new(synth::linear(3, 128, LinearKind::Logistic)))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(rt_config));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), config).unwrap();
        (rt, fe, id)
    }

    #[test]
    fn client_server_round_trip_matches_local() {
        let (rt, fe, id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let remote = client.predict_text(id, "5,a nice product", 0).unwrap();
        let local = rt.predict(id, "5,a nice product").unwrap();
        assert!((remote - local).abs() < 1e-6);
        fe.stop();
    }

    #[test]
    fn thread_per_connection_ablation_still_serves() {
        let (rt, fe, id) = serve_sa(FrontEndConfig {
            reactor_threads: 0,
            ..FrontEndConfig::default()
        });
        let mut client = Client::connect(fe.addr()).unwrap();
        let remote = client.predict_text(id, "5,a nice product", 0).unwrap();
        let local = rt.predict(id, "5,a nice product").unwrap();
        assert_eq!(remote.to_bits(), local.to_bits());
        fe.stop();
    }

    #[test]
    fn batch_request_over_the_wire() {
        let (rt, fe, id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let lines = ["1,bad product", "5,wonderful thing", "3,meh"];
        let scores = client.predict_text_batch(id, &lines, 0).unwrap();
        assert_eq!(scores.len(), 3);
        for (line, s) in lines.iter().zip(&scores) {
            assert!((rt.predict(id, line).unwrap() - s).abs() < 1e-6);
        }
        fe.stop();
    }

    #[test]
    fn server_reports_errors_for_unknown_plan() {
        let (_rt, fe, _id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();
        let err = client.predict_text(99, "1,x", 0).unwrap_err();
        assert!(err.to_string().contains("unknown plan"));
        fe.stop();
    }

    #[test]
    fn result_cache_serves_repeats() {
        let (_rt, fe, id) = serve_sa(FrontEndConfig {
            result_cache_bytes: 1 << 16,
            ..FrontEndConfig::default()
        });
        let mut client = Client::connect(fe.addr()).unwrap();
        let a = client
            .predict_text(id, "5,same line", FLAG_RESULT_CACHE)
            .unwrap();
        let b = client
            .predict_text(id, "5,same line", FLAG_RESULT_CACHE)
            .unwrap();
        assert_eq!(a, b);
        fe.stop();
    }

    #[test]
    fn delayed_batching_returns_correct_scores() {
        let (rt, fe, id) = serve_sa(FrontEndConfig {
            batch_delay: Some(Duration::from_millis(2)),
            ..FrontEndConfig::default()
        });
        let addr = fe.addr();
        let local = rt.predict(id, "4,pretty good").unwrap();
        // Several concurrent clients ride the same flush.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.predict_text(id, "4,pretty good", FLAG_DELAYED_BATCH)
                        .unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!((h.join().unwrap() - local).abs() < 1e-6);
        }
        fe.stop();
    }

    #[test]
    fn delayed_batching_staged_ablation_path() {
        let (rt, fe, id) = serve_sa_with(
            FrontEndConfig {
                batch_delay: Some(Duration::from_millis(2)),
                ..FrontEndConfig::default()
            },
            RuntimeConfig {
                n_executors: 2,
                wire_columnar: false,
                ..RuntimeConfig::default()
            },
        );
        let local = rt.predict(id, "4,pretty good").unwrap();
        let mut c = Client::connect(fe.addr()).unwrap();
        let remote = c
            .predict_text(id, "4,pretty good", FLAG_DELAYED_BATCH)
            .unwrap();
        assert_eq!(remote.to_bits(), local.to_bits());
        fe.stop();
    }

    #[test]
    fn dense_records_over_the_wire() {
        let dim = 8;
        let ctx = FlourContext::new();
        let logical = ctx
            .dense_source(dim)
            .scale(Arc::new(synth::scaler(1, dim)))
            .regressor_tree(Arc::new(synth::ensemble(
                2,
                dim,
                2,
                2,
                pretzel_ops::tree::EnsembleMode::Sum,
            )))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), FrontEndConfig::default()).unwrap();
        let mut client = Client::connect(fe.addr()).unwrap();
        let x = vec![0.25f32; dim];
        let remote = client.predict_dense(id, &x, 0).unwrap();
        assert!((remote - rt.predict_dense(id, &x).unwrap()).abs() < 1e-6);
        fe.stop();
    }

    #[test]
    fn sparse_records_over_the_wire() {
        let dim = 16u32;
        let ctx = FlourContext::new();
        let logical = ctx
            .sparse_source(dim as usize)
            .classifier_linear(Arc::new(synth::linear(
                5,
                dim as usize,
                LinearKind::Logistic,
            )))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), FrontEndConfig::default()).unwrap();
        let mut client = Client::connect(fe.addr()).unwrap();
        let (indices, values) = (vec![1u32, 7, 12], vec![0.5f32, -2.0, 1.25]);
        let remote = client
            .predict_sparse(id, &indices, &values, dim, 0)
            .unwrap();
        let local = rt.predict_sparse(id, &indices, &values, dim).unwrap();
        assert_eq!(remote.to_bits(), local.to_bits());
        // Batch sparse too.
        let rows: Vec<(&[u32], &[f32])> =
            vec![(&indices, &values), (&[0u32, 3][..], &[1.0f32, 2.0][..])];
        let scores = client.predict_sparse_batch(id, &rows, dim, 0).unwrap();
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].to_bits(), local.to_bits());
        fe.stop();
    }

    #[test]
    fn malformed_sparse_record_is_protocol_error() {
        let dim = 8u32;
        let ctx = FlourContext::new();
        let logical = ctx
            .sparse_source(dim as usize)
            .classifier_linear(Arc::new(synth::linear(
                6,
                dim as usize,
                LinearKind::Regression,
            )))
            .plan()
            .unwrap();
        let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
        let id = rt.register(logical).unwrap();
        let fe = FrontEnd::serve(Arc::clone(&rt), FrontEndConfig::default()).unwrap();
        let mut client = Client::connect(fe.addr()).unwrap();
        // Out-of-dim index: rejected, connection stays usable.
        let err = client
            .predict_sparse(id, &[99], &[1.0], dim, 0)
            .unwrap_err();
        assert!(err.to_string().contains("out of dim"));
        let ok = client.predict_sparse(id, &[2], &[1.0], dim, 0);
        assert!(ok.is_ok());
        fe.stop();
    }

    #[test]
    fn lifecycle_admin_verbs_over_the_wire() {
        let (rt, fe, seed_id) = serve_sa(FrontEndConfig::default());
        let mut client = Client::connect(fe.addr()).unwrap();

        // DEPLOY: push two versions of a model file.
        let image_of = |seed: u64| {
            let vocab = synth::vocabulary(0, 64);
            let ctx = FlourContext::new();
            let tokens = ctx.csv(',').select_text(1).tokenize();
            let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 64)));
            let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 64, &vocab)));
            c.concat(&w)
                .classifier_linear(Arc::new(synth::linear(seed, 128, LinearKind::Logistic)))
                .graph()
                .to_model_image()
        };
        let v1 = client.deploy(&image_of(100), Some("sa"), false).unwrap();
        let line = "5,a really nice product";
        let v1_score = client.predict_text_alias("sa", line, 0).unwrap();
        assert_eq!(
            v1_score.to_bits(),
            rt.predict(v1, line).unwrap().to_bits(),
            "alias serves the deployed version"
        );

        // SWAP: deploy v2, repoint, retire v1.
        let v2 = client.deploy(&image_of(101), None, false).unwrap();
        assert_eq!(client.swap("sa", v2).unwrap(), Some(v1));
        let v2_score = client.predict_text_alias("sa", line, 0).unwrap();
        assert_eq!(v2_score.to_bits(), rt.predict(v2, line).unwrap().to_bits());

        // UNDEPLOY v1: frees its unique weights, keeps shared featurizers.
        let report = client.undeploy(v1).unwrap();
        assert!(report.freed_param_bytes > 0, "v1's linear weights freed");
        let err = client.predict_text(v1, line, 0).unwrap_err();
        assert!(err.to_string().contains("retired"), "{err}");
        // The alias still serves v2 without a gap.
        let again = client.predict_text_alias("sa", line, 0).unwrap();
        assert_eq!(again.to_bits(), v2_score.to_bits());

        // LIST reflects the lifecycle state.
        let plans = client.list().unwrap();
        let find = |id| plans.iter().find(|p| p.id == id).unwrap();
        assert!(!find(seed_id).retired);
        assert!(find(v1).retired);
        assert!(find(v1).aliases.is_empty());
        assert_eq!(find(v2).aliases, vec!["sa".to_string()]);
        fe.stop();
    }

    #[test]
    fn alias_requests_survive_swap_and_undeploy_churn() {
        let (rt, fe, v1) = serve_sa(FrontEndConfig::default());
        rt.swap("live", v1).unwrap();
        let line = "4,steady request stream";
        let addr = fe.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let scored = Arc::new(AtomicUsize::new(0));
        let scorers: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let scored = Arc::clone(&scored);
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let mut scores = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        scores.push(c.predict_text_alias("live", line, 0).unwrap());
                        scored.fetch_add(1, Ordering::Relaxed);
                    }
                    scores
                })
            })
            .collect();
        // Churn versions under the scorers: each version is an identical
        // pipeline with fresh weights; every response must match one of
        // the deployed versions bitwise.
        let mut references = vec![rt.predict(v1, line).unwrap()];
        let mut current = v1;
        let mut admin = Client::connect(addr).unwrap();
        for seed in 0..6u64 {
            // Gate each round on scorer progress so churn overlaps traffic.
            let floor = scored.load(Ordering::Relaxed) + 3;
            while scored.load(Ordering::Relaxed) < floor {
                std::thread::yield_now();
            }
            let vocab = synth::vocabulary(0, 64);
            let ctx = FlourContext::new();
            let tokens = ctx.csv(',').select_text(1).tokenize();
            let c = tokens.char_ngram(Arc::new(synth::char_ngram(1, 3, 64)));
            let w = tokens.word_ngram(Arc::new(synth::word_ngram(2, 2, 64, &vocab)));
            let image = c
                .concat(&w)
                .classifier_linear(Arc::new(synth::linear(
                    500 + seed,
                    128,
                    LinearKind::Logistic,
                )))
                .graph()
                .to_model_image();
            let next = admin.deploy(&image, None, false).unwrap();
            references.push(rt.predict(next, line).unwrap());
            assert_eq!(admin.swap("live", next).unwrap(), Some(current));
            admin.undeploy(current).unwrap();
            current = next;
        }
        stop.store(true, Ordering::Relaxed);
        let mut total = 0usize;
        for s in scorers {
            for score in s.join().unwrap() {
                total += 1;
                assert!(
                    references.iter().any(|r| r.to_bits() == score.to_bits()),
                    "score {score} matches no deployed version"
                );
            }
        }
        assert!(total > 0, "scorers made progress during churn");
        fe.stop();
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let (_rt, fe, _id) = serve_sa(FrontEndConfig::default());
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        // A hostile length prefix: ~4 GiB. The server must answer with a
        // protocol error (not attempt the allocation) and close cleanly.
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).unwrap();
        let len = u32::from_le_bytes(len) as usize;
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        let err = wire::decode_response(&body).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // Connection is closed afterwards.
        let mut probe = [0u8; 1];
        assert_eq!(stream.read(&mut probe).unwrap(), 0);
        assert_eq!(fe.stats().protocol_errors(), 1);
        fe.stop();
    }
}
